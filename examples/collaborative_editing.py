#!/usr/bin/env python3
"""Collaborative editing on a causally consistent DSM.

Three editors share a document of named sections.  Each editor writes
its own section and reacts to what it *reads* from the others:

- Alice drafts the intro, then revises it;
- Bob waits until he has seen Alice's intro, then writes the body
  (his body causally depends on the intro -- every replica must apply
  the intro first);
- Carol waits for Bob's body and appends the conclusion.

Causal consistency is exactly the guarantee collaborative editing
needs: nobody ever observes a reply before the text it replies to,
while concurrent edits to different sections flow with no coordination.
The run is simulated with randomized latencies and then machine-checked.

Run:  python examples/collaborative_editing.py [seed]
"""

import sys

from repro import check_run, run_programs
from repro.sim import SeededLatency
from repro.workloads import Program, WaitReadStep, WriteStep


def editors() -> list:
    alice = Program.of(
        WriteStep("intro", "draft-intro"),
        WriteStep("intro", "intro-v2", delay=2.0),
    )
    bob = Program.of(
        WaitReadStep("intro", "draft-intro", poll=0.4),
        WriteStep("body", "body-after-intro"),
    )
    carol = Program.of(
        WaitReadStep("body", "body-after-intro", poll=0.4),
        WriteStep("conclusion", "the-end"),
    )
    return [alice, bob, carol]


def main(seed: int = 7) -> None:
    result = run_programs(
        "optp", 3, editors(),
        latency=SeededLatency(seed, dist="exponential", mean=1.5),
    )
    report = check_run(result)
    print("final document at each replica:")
    for i, store in enumerate(result.stores):
        doc = {var: value for var, (value, _) in sorted(store.items())}
        print(f"  editor {i}: {doc}")
    print(f"\nrun verdict: {report.summary()}")
    assert report.ok

    # The causal chain intro -> body -> conclusion is enforced at
    # every replica: check the apply orders directly.
    h = result.history
    writes = {w.variable: w for w in h.writes() if w.value != "draft-intro"}
    co = h.causal_order
    intro = next(w for w in h.writes() if w.value == "draft-intro")
    assert co.precedes(intro, writes["body"])
    assert co.precedes(writes["body"], writes["conclusion"])
    for k in range(3):
        order = result.trace.apply_order(k)
        assert order.index(intro.wid) < order.index(writes["body"].wid)
        assert order.index(writes["body"].wid) < order.index(
            writes["conclusion"].wid
        )
    print("causal chain intro -> body -> conclusion respected at every replica.")
    print(f"write delays incurred: {report.total_delays} "
          f"(unnecessary: {len(report.unnecessary_delays)})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
