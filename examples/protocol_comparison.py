#!/usr/bin/env python3
"""The evaluation the paper never ran: delay sweeps across protocols.

Sweeps process count, write fraction, latency spread and variable skew,
running all four protocols on byte-identical message schedules, and
prints paper-style tables.  Expected shape:

- OptP never delays more than ANBKH, and its delays are all necessary;
- the gap (ANBKH's false causality + cascades) grows with concurrency;
- writing-semantics variants trade delays for never-applied writes.

Run:  python examples/protocol_comparison.py [--quick]
"""

import sys

from repro.paperfigs import (
    render_sweep,
    sweep_latency_spread,
    sweep_processes,
    sweep_write_fraction,
    sweep_zipf,
)


def main(quick: bool = False) -> None:
    seeds = (0, 1) if quick else (0, 1, 2, 3)
    ops = 10 if quick else 20

    sweeps = [
        (
            "Q1a. write delays vs process count",
            sweep_processes(
                n_values=(3, 5, 8) if quick else (3, 5, 8, 12),
                ops_per_process=ops, seeds=seeds,
            ),
        ),
        (
            "Q1b. write delays vs write fraction (n=5)",
            sweep_write_fraction(
                fractions=(0.2, 0.6, 1.0), ops_per_process=ops, seeds=seeds,
            ),
        ),
        (
            "Q1c. write delays vs latency spread (exponential mean)",
            sweep_latency_spread(
                means=(0.5, 2.0, 4.0), ops_per_process=ops, seeds=seeds,
            ),
        ),
        (
            "Q3. writing semantics vs variable-popularity skew",
            sweep_zipf(skews=(0.0, 1.0, 2.0), ops_per_process=ops, seeds=seeds),
        ),
    ]
    for title, rows in sweeps:
        print(render_sweep(rows, title=title))
        # the paper's claims, asserted on the measured rows:
        by_point = {}
        for r in rows:
            by_point.setdefault(r.value, {})[r.protocol] = r
        for value, protos in by_point.items():
            if "optp" in protos and "anbkh" in protos:
                assert protos["optp"].mean_delays <= protos["anbkh"].mean_delays, (
                    title, value
                )
            if "optp" in protos:
                assert protos["optp"].mean_unnecessary == 0.0
        print()
    print("all sweep points satisfy: optp.delays <= anbkh.delays and "
          "optp.unnecessary == 0")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
