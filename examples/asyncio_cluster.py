#!/usr/bin/env python3
"""Run the DSM on real concurrency: asyncio tasks instead of the
deterministic simulator.

The same protocol objects, nodes and checkers as the simulated runs,
but message interleavings come from a live event loop -- a sanity check
that nothing depends on simulator determinism.  The script runs H1
several times; different runs may realize different (all causally
consistent) interleavings.

Run:  python examples/asyncio_cluster.py [rounds]
"""

import sys

from repro import check_run, run_programs_async
from repro.sim import UniformLatency
from repro.workloads import Program, WaitReadStep, WriteStep


def h1_programs_race_tolerant() -> list:
    """H1's shape, tolerant of live-concurrency races: p1 proceeds on
    whichever of p0's x1 writes it observes first (a or c) -- under
    random latencies c can land before any poll sees a."""
    return [
        Program.of(WriteStep("x1", "a"), WriteStep("x1", "c", delay=0.5)),
        Program.of(
            WaitReadStep("x1", "a", poll=0.2, accept=("a", "c")),
            WriteStep("x2", "b"),
        ),
        Program.of(WaitReadStep("x2", "b", poll=0.2), WriteStep("x2", "d")),
    ]


def main(rounds: int = 3) -> None:
    delay_counts = []
    for k in range(rounds):
        result = run_programs_async(
            "optp", 3, h1_programs_race_tolerant(),
            latency=UniformLatency(0.2, 2.0, seed=k),
            time_scale=0.003,
        )
        report = check_run(result)
        assert report.ok, report.summary()
        assert not report.unnecessary_delays
        delay_counts.append(report.total_delays)
        print(f"round {k}: {report.summary()}")
        print(f"  history:\n{_indent(str(result.history))}")
    print(
        f"\n{rounds} live-concurrency rounds: all causally consistent, "
        f"all OptP delays necessary; delay counts per round: {delay_counts}"
    )


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
