#!/usr/bin/env python3
"""The classic causal-consistency motivator: posts and replies.

A user posts, another replies after reading the post, a third reacts to
the reply.  Under causal memory no replica can ever show the reply
without the post it answers.  We run the same feed under OptP and under
the token-based writing-semantics protocol and contrast what readers
see: the token protocol *loses* rapidly-edited posts (sender-side
overwriting), which is exactly the class-𝒫 departure the paper
describes for [7].

Run:  python examples/social_feed.py
"""

from repro import check_run, run_programs
from repro.sim import SeededLatency
from repro.workloads import Program, ReadStep, WaitReadStep, WriteStep


def feed_programs() -> list:
    # p0 posts, edits the post twice in quick succession, then posts a
    # final correction (4 writes to the same key).
    poster = Program.of(
        WriteStep("post:1", "hello wrold"),
        WriteStep("post:1", "hello world", delay=0.1),     # typo fix
        WriteStep("post:1", "hello world!", delay=0.1),    # emphasis
    )
    # p1 waits for the (final) post and replies.
    replier = Program.of(
        WaitReadStep("post:1", "hello world!", poll=0.5),
        WriteStep("reply:1", "nice post"),
    )
    # p2 waits for the reply, reads the post it answers, reacts.
    reactor = Program.of(
        WaitReadStep("reply:1", "nice post", poll=0.5),
        ReadStep("post:1"),
        WriteStep("react:1", "+1"),
    )
    return [poster, replier, reactor]


def run(protocol: str):
    result = run_programs(
        protocol, 3, feed_programs(),
        latency=SeededLatency(3, dist="exponential", mean=1.0),
    )
    report = check_run(result)
    assert report.ok, report.summary()
    return result, report


def main() -> None:
    print("== OptP (class 𝒫: every edit reaches every replica) ==")
    r_optp, rep_optp = run("optp")
    print(f"verdict: {rep_optp.summary()}")
    # the reactor's read of the post must be causally consistent: it
    # saw the reply, so it can never read a pre-reply overwritten post.
    reads = [op for op in r_optp.history.local(2) if op.kind.value == "read"]
    post_read = next(op for op in reads if op.variable == "post:1")
    print(f"reactor read post:1 = {post_read.value!r} "
          "(never older than what the reply answered)")

    print("\n== Jimenez token protocol (sender-side writing semantics) ==")
    r_tok, rep_tok = run("jimenez-token")
    print(f"verdict: {rep_tok.summary()}")
    suppressed = r_tok.stat_total("suppressed")
    print(
        f"suppressed edits: {suppressed} -- intermediate versions of "
        "post:1 were never propagated; replicas only ever saw the last "
        "pre-token-arrival version (the paper: \"the other processes "
        "only see the last write of x done by p\")."
    )
    assert suppressed >= 1
    # Both protocols converge on the final values:
    for store in r_optp.stores + r_tok.stores:
        assert store["post:1"][0] == "hello world!"
    print("\nboth protocols converge to the final post text at all replicas.")


if __name__ == "__main__":
    main()
