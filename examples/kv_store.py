#!/usr/bin/env python3
"""Using the library as an embeddable causal KV store.

``CausalKV`` runs N in-process replicas under any of the shipped
protocols and gives application code a plain put/get API with causal
guarantees -- while recording a full trace so the session can be
audited with the paper's checkers afterwards.

The scenario: a tiny task board.  A manager creates a task, a worker
picks it up only after seeing it, the manager then reads the claim --
no replica ever shows a claim for a task it has not seen created.

Run:  python examples/kv_store.py
"""

import asyncio

from repro.runtime import CausalKV
from repro.sim.latency import UniformLatency


async def task_board() -> CausalKV:
    async with CausalKV.open(
        3,
        protocol="optp",
        latency=UniformLatency(0.3, 2.0, seed=8),
        time_scale=0.002,
    ) as kv:
        manager, worker, observer = 0, 1, 2

        # manager posts a task
        await kv.put(manager, "task:42", "fix the login page")
        print("manager posted task:42")

        # worker waits until the task is visible, then claims it
        task = await kv.wait_visible(worker, "task:42")
        print(f"worker sees: {task!r}")
        await kv.put(worker, "claim:42", "worker-1")

        # the observer who sees the claim is guaranteed to see the task
        claim = await kv.wait_visible(observer, "claim:42")
        task_at_observer = await kv.get(observer, "task:42")
        print(f"observer sees claim {claim!r} and task {task_at_observer!r}")
        assert task_at_observer == "fix the login page", (
            "causality violated: claim visible before its task!"
        )
    return kv


def main() -> None:
    kv = asyncio.run(task_board())
    report = kv.report()
    print(f"\nsession verdict: {report.summary()}")
    assert report.ok and not report.unnecessary_delays
    print(f"messages exchanged: {kv.result.messages_sent}; "
          f"writes: {kv.result.writes_issued}; "
          f"events traced: {len(kv.trace)}")
    print("the full session trace is auditable (and serializable via "
          "repro.sim.serialize).")


if __name__ == "__main__":
    main()
