#!/usr/bin/env python3
"""Quickstart: run the paper's Example 1 under OptP and verify it.

Reproduces the paper end to end in ~40 lines:

1. simulate the history H1 (Example 1) under OptP;
2. check causal consistency, safety, liveness and delay optimality;
3. show the false-causality contrast with ANBKH (Figure 3).

Run:  python examples/quickstart.py
"""

from repro import check_run, run_schedule
from repro.workloads import fig3


def main() -> None:
    scenario = fig3()  # H1's schedule + the Figure 3 arrival pattern

    print("== OptP on the paper's Example 1 (Figure 3 arrival order) ==")
    optp = run_schedule("optp", 3, scenario.schedule,
                        latency=scenario.latency, record_state=True)
    report = check_run(optp)
    print(f"observed history:\n{optp.history}")
    print(f"verdict: {report.summary()}")
    assert report.ok
    assert not report.unnecessary_delays  # Theorem 4, on this run

    print("\n== Same message schedule under ANBKH ==")
    anbkh = run_schedule("anbkh", 3, scenario.schedule,
                         latency=scenario.latency)
    report_a = check_run(anbkh)
    print(f"verdict: {report_a.summary()}")
    assert report_a.ok  # safe and live...
    print(
        f"\nANBKH delayed {report_a.total_delays} write(s), of which "
        f"{len(report_a.unnecessary_delays)} unnecessarily "
        "(false causality: the delayed write w2(x2)b is concurrent with "
        "w1(x1)c w.r.t. ->co, yet ANBKH waits for c)."
    )
    print(f"OptP delayed {report.total_delays} write(s) on the same schedule.")


if __name__ == "__main__":
    main()
