#!/usr/bin/env python3
"""Partial replication: regional edge caches with causal consistency.

A small content platform keeps per-region data only where it is served:

- ``eu:catalog``   held by {0, 1}          (EU edges)
- ``us:catalog``   held by {2, 3}          (US edges)
- ``global:promo`` held by {0, 1, 2, 3}    (everywhere)
- ``audit:log``    held by {1, 2}          (the two compliance nodes)

Causal consistency must survive *cross-region* dependency chains: an
EU catalog update triggers a global promo, which triggers a US catalog
change -- the US edges never see the EU write, yet the protocol still
orders everything its holders share.  This is the setting of the
paper's reference [14] (Raynal-Singhal, partially replicated causal
objects); `docs/theory.md` maps the mechanism.

Run:  python examples/edge_replication.py
"""

from repro.analysis import check_run
from repro.protocols.partial import ReplicationMap, partial_factory
from repro.sim import ConstantLatency, SimCluster
from repro.workloads import Program, ReadStep, WaitReadStep, WriteStep


def replication_map() -> ReplicationMap:
    return ReplicationMap(
        {
            "eu:catalog": [0, 1],
            "us:catalog": [2, 3],
            "global:promo": [0, 1, 2, 3],
            "audit:log": [1, 2],
        },
        n_processes=4,
    )


def programs():
    # edge 0 (EU): update the EU catalog, then announce the promo that
    # depends on it.
    eu_editor = Program.of(
        WriteStep("eu:catalog", "eu-v2"),
        WriteStep("global:promo", "promo-for-eu-v2", delay=0.5),
    )
    # edge 1 (EU + audit): wait for the promo, log it.
    eu_audit = Program.of(
        WaitReadStep("global:promo", "promo-for-eu-v2", poll=0.4),
        WriteStep("audit:log", "promo-recorded"),
    )
    # edge 2 (US + audit): wait for the audit record, then adapt the US
    # catalog -- a chain through audit:log, which edge 3 does not hold.
    us_editor = Program.of(
        WaitReadStep("audit:log", "promo-recorded", poll=0.4),
        WriteStep("us:catalog", "us-v2-matching-promo"),
    )
    # edge 3 (US): just serves; reads the promo and the US catalog.
    us_reader = Program.of(
        WaitReadStep("us:catalog", "us-v2-matching-promo", poll=0.4),
        ReadStep("global:promo"),
    )
    return [eu_editor, eu_audit, us_editor, us_reader]


def main() -> None:
    rmap = replication_map()
    cluster = SimCluster(partial_factory(rmap), 4,
                         latency=ConstantLatency(1.0))
    result = cluster.run_programs(programs())
    report = check_run(result)
    print(f"run verdict: {report.summary()}")
    assert report.ok and not report.unnecessary_delays

    print("\nfinal state per edge (only held variables exist locally):")
    for p in range(4):
        held = {var: val for var, (val, _) in sorted(result.stores[p].items())}
        print(f"  edge {p} holds {sorted(map(str, rmap.held_by(p)))}: {held}")

    # the US reader saw the matching catalog only causally after the
    # promo existed: check the chain survived partial replication
    h = result.history
    co = h.causal_order
    writes = {w.value: w for w in h.writes()}
    chain = ["eu-v2", "promo-for-eu-v2", "promo-recorded",
             "us-v2-matching-promo"]
    for a, b in zip(chain, chain[1:]):
        assert co.precedes(writes[a], writes[b]), (a, b)
    print("\ncausal chain eu-catalog -> promo -> audit -> us-catalog intact,")
    print("even though no single edge holds all four variables.")
    print(f"messages sent: {result.messages_sent} "
          f"(full replication would need {result.writes_issued * 3}).")


if __name__ == "__main__":
    main()
