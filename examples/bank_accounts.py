#!/usr/bin/env python3
"""What causal consistency does and does not give you: bank branches.

Two branches concurrently update the same account limit while auditors
read at different replicas.  Under causal memory the two *concurrent*
updates may be observed in different orders at different branches — the
anomaly the paper's Example 1 legitimizes ("concurrent writes can be
viewed in different orders by different processes").  Under the
totally-ordered sequencer baseline every replica agrees on one order —
at roughly double the write-delay cost (see
benchmarks/test_bench_consistency_spectrum.py).

This example constructs a latency pattern where the divergence actually
shows, prints both observations, and verifies both runs.

Run:  python examples/bank_accounts.py
"""

from repro import check_run, run_schedule
from repro.model.operations import WriteId
from repro.sim import ScriptedLatency
from repro.workloads import ReadOp, Schedule, ScheduledOp, WriteOp


def schedule():
    """Branch 0 and branch 1 concurrently set the limit; auditors at
    branches 2 and 3 read twice each."""
    return Schedule.of(
        [
            ScheduledOp(0.0, 0, WriteOp("limit", 500)),
            ScheduledOp(0.0, 1, WriteOp("limit", 900)),
            # auditor at branch 2 reads early and late
            ScheduledOp(2.0, 2, ReadOp("limit")),
            ScheduledOp(8.0, 2, ReadOp("limit")),
            # auditor at branch 3 likewise
            ScheduledOp(2.0, 3, ReadOp("limit")),
            ScheduledOp(8.0, 3, ReadOp("limit")),
        ]
    )


def latencies():
    """Branch 2 hears branch 0 first; branch 3 hears branch 1 first."""
    w0, w1 = WriteId(0, 1), WriteId(1, 1)
    return ScriptedLatency(
        {
            (("update", w0), 2): 1.0,
            (("update", w1), 2): 5.0,
            (("update", w0), 3): 5.0,
            (("update", w1), 3): 1.0,
        },
        default=1.0,
    )


def observations(result):
    out = {}
    for auditor in (2, 3):
        reads = [
            op.value for op in result.history.local(auditor).operations
        ]
        out[auditor] = reads
    return out


def main() -> None:
    print("== causal memory (OptP): concurrent writes, per-replica order ==")
    r = run_schedule("optp", 4, schedule(), latency=latencies())
    rep = check_run(r)
    assert rep.ok and not rep.unnecessary_delays
    obs = observations(r)
    for auditor, reads in obs.items():
        print(f"  auditor at branch {auditor} read: {reads}")
    print(f"  verdict: {rep.summary()}")
    assert obs[2][0] != obs[3][0], "latency script should split first reads"
    print(
        "  -> the auditors' FIRST reads disagree (500 vs 900): legal under "
        "causal consistency, the writes are ->co-concurrent."
    )

    print("\n== totally ordered (sequencer): one global order ==")
    r2 = run_schedule("sequencer", 4, schedule(), latency=latencies())
    rep2 = check_run(r2)
    assert rep2.ok
    # all replicas converge on the sequencer's order; final values agree
    finals = {store["limit"][0] for store in r2.stores}
    assert len(finals) == 1
    print(f"  every branch converges to limit={finals.pop()} "
          f"(delays: {rep2.total_delays} vs OptP's {rep.total_delays})")
    print("  -> agreement bought with extra write delays: the paper's "
          "low-latency argument for causal memory, quantified.")


if __name__ == "__main__":
    main()
