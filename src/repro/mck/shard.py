"""Sharded exhaustive checking: one state space, many workers.

:mod:`repro.mck.parallel` parallelises *across* check configs; a single
big exhaustive check still runs on one core.  This module splits one
check's DFS across a process pool while keeping the verdict --
state/transition/terminal/prune/unnecessary-delay counts and the
recorded violations, in order -- **exactly equal** to the serial
:func:`~repro.mck.explorer.check` (pinned by
``tests/mck/test_shard.py``).

How the split stays exact
-------------------------

The coordinator runs a depth-limited *expansion* of the DFS that
mirrors :meth:`_Search.dfs` bookkeeping line for line (states counted
at entry, sleep/cycle prunes, last-candidate-consumes-parent, the
sleep-set and chain-key propagation rules).  Nodes at the expansion
horizon are **not** counted; each becomes a shard: the choice path from
the root plus the sleep set, chain keys and depth the serial DFS would
carry into that node.  A worker replays the path on a fresh root and
resumes ``dfs`` with exactly that carried state, so

``serial counters == interior counters + sum(shard counters)``

holds term by term -- the shards partition the serial recursion tree.
Violation *order* is preserved by an event log: the expansion records
interior violations and shard positions in DFS order, and the merge
splices each shard's (DFS-ordered) violations back into its slot
before re-applying the ``MAX_RECORDED_VIOLATIONS`` cap.

Shards ride the generalized :class:`~repro.sweep.runner.SweepRunner`
substrate -- same pool, same by-index merge, same content-addressed
cache -- with a shard-specific digest (config + path + carried state +
the ``mck`` code fingerprint).

Caveats (documented, not silent):

- ``max_states`` is enforced per shard rather than globally, so runs
  that *hit* the limit explore a different (larger) portion of the
  space than serial; ``state_limit_hit`` is the OR across interior and
  shards.  Runs under the limit are exactly equal.
- Only ``mode="exhaustive"`` without ``stop_on_violation`` shards
  (random walks are seed-driven and cheap; early-stop is inherently
  order-dependent).  Ineligible configs fall back to the serial,
  cached single-config path transparently.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.obs.spans import NULL_OBS, Obs
from repro.sweep.cache import RunCache
from repro.sweep.runner import SweepRunner, SweepStats

from repro.mck.cluster import ControlledCluster, Transition, independent
from repro.mck.explorer import (
    MAX_RECORDED_VIOLATIONS,
    CheckConfig,
    CheckResult,
    StateLimitError,
    Violation,
    _make_root,
    _Search,
)
from repro.mck.parallel import (
    MCK_FINGERPRINT_PACKAGES,
    run_checks,
    verdict_from_dict,
)
from repro.mck.witness import config_from_dict, config_to_dict

__all__ = [
    "SHARD_SPEC_VERSION",
    "check_sharded",
    "execute_shard_spec",
    "shard_digest",
    "shardable",
]

#: Bumped whenever the shard spec form changes incompatibly.
SHARD_SPEC_VERSION = 1

#: Target shards per worker: enough slack that one heavy subtree does
#: not serialize the pool, few enough that replay overhead stays small.
FRONTIER_PER_JOB = 4


def shardable(config: CheckConfig, jobs: int) -> bool:
    """True when ``config`` is eligible for sharded checking."""
    return (
        jobs > 1
        and config.mode == "exhaustive"
        and not config.stop_on_violation
        and isinstance(config.protocol, str)  # shards must pickle
    )


# -- coordinator-side expansion ---------------------------------------------


class _Expansion(_Search):
    """Depth-limited DFS that emits horizon nodes as shards.

    Bookkeeping must mirror :meth:`_Search.dfs` exactly; every
    divergence would show up as a count mismatch in the parity suite.
    The one deliberate difference: recorded violations go to the
    ordered event log instead of ``result.violations`` directly (the
    merge rebuilds the list so shard violations land in DFS order).
    """

    def __init__(self, config: CheckConfig, result: CheckResult):
        super().__init__(config, result)
        #: DFS-ordered interleave of ("v", Violation) and ("f", index
        #: into :attr:`frontier`).
        self.events: List[Tuple] = []
        #: shard payloads (path / sleep / chain_keys / depth).
        self.frontier: List[Dict] = []

    def record(self, finding) -> None:  # overrides _Search.record
        self.result.violations_seen += 1
        self.events.append(
            ("v", Violation(finding=finding, choices=tuple(self.path))))

    def _emit_shard(self, sleep: Set[Transition], chain_keys: Set[str],
                    depth: int) -> None:
        # Canonical JSON form: transitions as 2-lists, sets sorted.
        self.events.append(("f", len(self.frontier)))
        self.frontier.append({
            "path": [[t[0], t[1]] for t in self.path],
            "sleep": sorted([t[0], t[1]] for t in sleep),
            "chain_keys": sorted(chain_keys),
            "depth": depth,
        })

    def expand(self, cluster: ControlledCluster, sleep: Set[Transition],
               chain_keys: Set[str], depth: int, budget: int) -> None:
        if budget == 0:
            # Horizon: hand the node to a worker *uncounted* -- the
            # worker's dfs counts it at entry, exactly once.
            self._emit_shard(sleep, chain_keys, depth)
            return
        self._count_state()
        status = cluster.status()
        if status != "running":
            self._terminal(cluster, status)
            return
        if depth >= self.config.max_depth:
            self.result.terminals["truncated"] += 1
            return
        done: List[Transition] = []
        candidates = []
        for t in cluster.enabled():
            if t in sleep:
                self.result.prunes["sleep"] += 1
            else:
                candidates.append(t)
        for i, t in enumerate(candidates):
            child = (cluster if i == len(candidates) - 1
                     else cluster.clone())
            findings = self._step(child, t)
            self.path.append(t)
            try:
                if findings:
                    for finding in findings:
                        self.record(finding)
                else:
                    child_sleep = {
                        s for s in sleep if independent(s, t)
                    } | {d for d in done if independent(d, t)}
                    if child.last_trace_grew:
                        self.expand(child, child_sleep, set(),
                                    depth + 1, budget - 1)
                    else:
                        key = child.state_key()
                        if key in chain_keys:
                            self.result.prunes["cycle"] += 1
                        else:
                            self.expand(child, child_sleep,
                                        chain_keys | {key},
                                        depth + 1, budget - 1)
            finally:
                self.path.pop()
            done.append(t)


def _expand_frontier(config: CheckConfig,
                     target: int) -> Optional[_Expansion]:
    """Iteratively deepen until the horizon holds >= ``target`` shards.

    Each attempt restarts from a fresh root (state counts must reflect
    only the final expansion).  Returns None when the interior alone
    exhausts ``max_states`` -- serial would too, so the caller falls
    back to the serial path for identical limit semantics.
    """
    budget = 1
    while True:
        root = _make_root(config)
        result = CheckResult(
            protocol_name=root.protocol_name,
            workload_name=config.workload.name,
            faults=config.faults,
            mode=config.mode,
            expect_optimal=root.tracker.expect_optimal,
        )
        exp = _Expansion(config, result)
        try:
            for finding in root.bootstrap_findings:
                exp.record(finding)
            exp.expand(root, set(), set(), 0, budget)
        except StateLimitError:
            return None
        if not exp.frontier or len(exp.frontier) >= target:
            return exp
        if budget > config.max_depth:
            # Unreachable in practice: at budget == max_depth + 1 every
            # path has terminated or truncated inside the interior, so
            # the frontier is empty and the branch above returned.
            return exp
        budget += 1


# -- worker side -------------------------------------------------------------


def shard_digest(spec: Dict, fingerprint: Optional[str] = None) -> str:
    """Content address of one shard (the cache key form)."""
    doc: Dict = {"version": SHARD_SPEC_VERSION, "shard": spec}
    if fingerprint is not None:
        doc = {"fingerprint": fingerprint, "spec": doc}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_shard_spec(spec: Dict) -> Tuple[Dict, float]:
    """Worker entry point: replay the shard's path, resume the DFS.

    The replayed prefix is *not* counted (the coordinator's expansion
    already counted those states and transitions); counting starts at
    the horizon node, inside ``dfs``.  The search path is pre-seeded
    with the replay path so recorded violation choices are full paths
    from the root, byte-identical to serial ones.
    """
    config = config_from_dict(spec["config"])
    path = [(t[0], t[1]) for t in spec["path"]]
    root = _make_root(config)
    for t in path:
        root.execute(t)
    result = CheckResult(
        protocol_name=root.protocol_name,
        workload_name=config.workload.name,
        faults=config.faults,
        mode=config.mode,
        expect_optimal=root.tracker.expect_optimal,
    )
    search = _Search(config, result)
    search.path = list(path)
    start = time.perf_counter()
    try:
        search.dfs(
            root,
            {(t[0], t[1]) for t in spec["sleep"]},
            set(spec["chain_keys"]),
            spec["depth"],
        )
    except StateLimitError:
        result.state_limit_hit = True
    result.wall = time.perf_counter() - start
    return result.verdict_dict(), result.wall


# -- orchestration -----------------------------------------------------------


def _merge(exp: _Expansion, shards: Sequence[CheckResult]) -> CheckResult:
    """Fold shard verdicts into the interior result, in DFS order."""
    final = exp.result
    for r in shards:
        final.states += r.states
        final.transitions += r.transitions
        final.violations_seen += r.violations_seen
        final.unnecessary_delays += r.unnecessary_delays
        for k in final.terminals:
            final.terminals[k] += r.terminals[k]
        for k in final.prunes:
            final.prunes[k] += r.prunes[k]
        final.state_limit_hit = final.state_limit_hit or r.state_limit_hit
    merged: List[Violation] = []
    for ev in exp.events:
        if len(merged) >= MAX_RECORDED_VIOLATIONS:
            break
        if ev[0] == "v":
            merged.append(ev[1])
        else:
            # Each shard records its first MAX_RECORDED_VIOLATIONS in
            # DFS order -- always enough to fill the merged cap.
            merged.extend(shards[ev[1]].violations)
    final.violations = merged[:MAX_RECORDED_VIOLATIONS]
    return final


def check_sharded(
    config: CheckConfig,
    *,
    jobs: int,
    cache: Optional[RunCache] = None,
    obs: Obs = NULL_OBS,
    progress=None,
) -> Tuple[CheckResult, SweepStats]:
    """Run one check sharded over ``jobs`` workers.

    Ineligible configs (see :func:`shardable`) and interiors that hit
    ``max_states`` during expansion fall back to the serial cached
    path; either way the returned verdict matches serial ``check``.
    ``progress`` receives a tick per completed shard (telemetry only).
    """
    if not shardable(config, jobs):
        results, stats = run_checks([config], jobs=1, cache=cache, obs=obs,
                                    progress=progress)
        return results[0], stats
    start = time.perf_counter()
    exp = _expand_frontier(config, target=jobs * FRONTIER_PER_JOB)
    if exp is None:
        results, stats = run_checks([config], jobs=1, cache=cache, obs=obs,
                                    progress=progress)
        return results[0], stats
    if exp.frontier:
        config_doc = config_to_dict(config)
        specs = [dict(shard, version=SHARD_SPEC_VERSION, config=config_doc)
                 for shard in exp.frontier]
        if progress is not None:
            progress.update(shards=len(specs),
                            interior_states=exp.result.states)
        runner = SweepRunner(
            jobs=jobs,
            cache=cache,
            obs=obs,
            progress=progress,
            worker=execute_shard_spec,
            digest_fn=shard_digest,
            decode=verdict_from_dict,
            fingerprint_packages=MCK_FINGERPRINT_PACKAGES,
        )
        shards = runner.run(specs)
        stats = runner.stats
    else:
        # The expansion exhausted the whole space: the interior result
        # *is* the verdict and no pool is needed.
        shards = []
        stats = SweepStats(jobs=jobs)
    result = _merge(exp, shards)
    result.wall = time.perf_counter() - start
    if obs.enabled:
        reg = obs.registry
        labels = {"protocol": result.protocol_name,
                  "workload": result.workload_name}
        reg.counter("mck.states", **labels).inc(result.states)
        reg.counter("mck.transitions", **labels).inc(result.transitions)
        reg.counter("mck.violations", **labels).inc(result.violations_seen)
        for kind, n in result.prunes.items():
            reg.counter("mck.prunes", kind=kind, **labels).inc(n)
        for status, n in result.terminals.items():
            reg.counter("mck.terminals", status=status, **labels).inc(n)
        reg.histogram("mck.states_per_sec").observe(result.states_per_sec)
    journal = obs.journal
    if journal is not None and result.violations_seen > 0:
        journal.note(
            "mck-violations",
            protocol=result.protocol_name,
            workload=result.workload_name,
            violations_seen=result.violations_seen,
            states=result.states,
        )
        journal.maybe_dump("mck-violations")
    return result, stats
