"""Fault adapters for the model checker (network-level adversary).

The paper's system model (Section 2) assumes reliable, non-FIFO,
exactly-once channels.  The checker's *baseline* transition system
already realizes the non-FIFO part adversarially -- every pending
message can be delivered at every step, so arbitrary reorderings are
explored without any adapter.  A :class:`FaultSpec` widens the
adversary beyond the paper's model with bounded budgets (bounds keep
the state space finite):

- ``duplicate``: up to N pending update messages may be cloned once
  each (at-least-once channels).  Delivering the clone exercises the
  receiver's dedup guard; with ``dedup=False`` the guard is removed
  and the checker demonstrates *why* the model needs exactly-once
  channels (the duplicate wedges in the buffer -- a liveness finding).
- ``drop``: up to N pending update messages may be dropped.  With
  ``retransmit=True`` (the default) a fresh copy is re-queued, which
  preserves every reachable outcome (the pool is unordered, so
  "dropped then retransmitted" is delivery-equivalent to "delivered
  later") while exercising message accounting; with
  ``retransmit=False`` the message is lost for good and the checker
  must report the resulting liveness violation.
- ``crash``: up to N processes may crash (once each).  A crashed
  process loses its volatile state -- including its buffer of
  received-but-blocked messages -- and stops taking transitions.  With
  ``recover=True`` (the default, the crash-*recovery* model) a
  ``("recover", p)`` transition rebuilds the process from its durable
  snapshot + write-ahead log (:mod:`repro.durability`) and the usual
  safety/liveness/convergence invariants must hold on every path;
  with ``recover=False`` (crash-*stop*) the process stays down and
  the terminal conditions are judged over the survivors only.
  ``snap_every`` sets the simulated snapshot cadence (records between
  snapshots; 0 = replay the whole log from the initial state) and
  ``wal_lose_tail`` injects the ``BrokenRecovery`` mutation -- the
  recovery replay silently forgets the last N logged records, which a
  sound checker must reject.

Channel faults only target *update* messages: control traffic (token,
batches, digests, write requests) carries protocol-internal sequencing
whose loss models process failure, not channel failure.  Process
failure proper is what the ``crash`` budget models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FaultSpec", "NO_FAULTS", "parse_faults"]


@dataclass(frozen=True)
class FaultSpec:
    """Bounded fault budgets injected as extra checker transitions."""

    #: total update messages that may be duplicated (once each).
    duplicate: int = 0
    #: total update messages that may be dropped.
    drop: int = 0
    #: re-queue a fresh copy of every dropped message.
    retransmit: bool = True
    #: receiver-side at-least-once guard; ``None`` = auto (enabled
    #: exactly when ``duplicate > 0``, the paper's exactly-once model
    #: otherwise needs no guard).
    dedup: Optional[bool] = None
    #: total processes that may crash (once each).
    crash: int = 0
    #: crash-recovery (True) vs crash-stop (False).
    recover: bool = True
    #: records between simulated snapshots (0 = never snapshot).
    snap_every: int = 2
    #: BrokenRecovery mutation: recovery forgets the last N WAL records.
    wal_lose_tail: int = 0

    def __post_init__(self) -> None:
        if self.duplicate < 0 or self.drop < 0 or self.crash < 0:
            raise ValueError("fault budgets must be >= 0")
        if self.snap_every < 0 or self.wal_lose_tail < 0:
            raise ValueError("snap_every and wal_lose_tail must be >= 0")

    @property
    def dedup_effective(self) -> bool:
        if self.dedup is not None:
            return self.dedup
        return self.duplicate > 0

    @property
    def any(self) -> bool:
        return self.duplicate > 0 or self.drop > 0 or self.crash > 0

    def to_dict(self) -> Dict:
        """Canonical JSON form (witness + cache key material)."""
        return {
            "duplicate": self.duplicate,
            "drop": self.drop,
            "retransmit": self.retransmit,
            "dedup": self.dedup,
            "crash": self.crash,
            "recover": self.recover,
            "snap_every": self.snap_every,
            "wal_lose_tail": self.wal_lose_tail,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultSpec":
        extra = set(doc) - {"duplicate", "drop", "retransmit", "dedup",
                            "crash", "recover", "snap_every",
                            "wal_lose_tail"}
        if extra:
            raise ValueError(f"unknown fault fields {sorted(extra)}")
        return cls(
            duplicate=int(doc.get("duplicate", 0)),
            drop=int(doc.get("drop", 0)),
            retransmit=bool(doc.get("retransmit", True)),
            dedup=doc.get("dedup"),
            crash=int(doc.get("crash", 0)),
            recover=bool(doc.get("recover", True)),
            snap_every=int(doc.get("snap_every", 2)),
            wal_lose_tail=int(doc.get("wal_lose_tail", 0)),
        )


NO_FAULTS = FaultSpec()


def parse_faults(text: str) -> FaultSpec:
    """Parse the CLI grammar: ``none`` or a comma-separated list of
    ``dup:N``, ``drop:N``, ``noretransmit``, ``dedup``, ``nodedup``,
    ``crash[:N]``, ``norecover``, ``snap:N``, ``losetail:N``.

    Examples: ``dup:1``; ``drop:1,noretransmit``; ``crash``;
    ``crash:1,norecover``; ``crash,losetail:1``.
    """
    text = text.strip().lower()
    if text in ("", "none"):
        return NO_FAULTS
    duplicate = drop = crash = wal_lose_tail = 0
    retransmit = True
    recover = True
    snap_every = 2
    dedup: Optional[bool] = None
    for part in text.split(","):
        part = part.strip()
        if part.startswith("dup:"):
            duplicate = int(part[4:])
        elif part.startswith("drop:"):
            drop = int(part[5:])
        elif part == "noretransmit":
            retransmit = False
        elif part == "dedup":
            dedup = True
        elif part == "nodedup":
            dedup = False
        elif part == "crash":
            crash = 1
        elif part.startswith("crash:"):
            crash = int(part[6:])
        elif part == "norecover":
            recover = False
        elif part.startswith("snap:"):
            snap_every = int(part[5:])
        elif part.startswith("losetail:"):
            wal_lose_tail = int(part[9:])
        else:
            raise ValueError(
                f"unknown fault token {part!r} (want dup:N, drop:N, "
                "noretransmit, dedup, nodedup, crash[:N], norecover, "
                "snap:N, losetail:N, or none)"
            )
    return FaultSpec(duplicate=duplicate, drop=drop,
                     retransmit=retransmit, dedup=dedup,
                     crash=crash, recover=recover, snap_every=snap_every,
                     wal_lose_tail=wal_lose_tail)
