"""Fault adapters for the model checker (network-level adversary).

The paper's system model (Section 2) assumes reliable, non-FIFO,
exactly-once channels.  The checker's *baseline* transition system
already realizes the non-FIFO part adversarially -- every pending
message can be delivered at every step, so arbitrary reorderings are
explored without any adapter.  A :class:`FaultSpec` widens the
adversary beyond the paper's model with bounded budgets (bounds keep
the state space finite):

- ``duplicate``: up to N pending update messages may be cloned once
  each (at-least-once channels).  Delivering the clone exercises the
  receiver's dedup guard; with ``dedup=False`` the guard is removed
  and the checker demonstrates *why* the model needs exactly-once
  channels (the duplicate wedges in the buffer -- a liveness finding).
- ``drop``: up to N pending update messages may be dropped.  With
  ``retransmit=True`` (the default) a fresh copy is re-queued, which
  preserves every reachable outcome (the pool is unordered, so
  "dropped then retransmitted" is delivery-equivalent to "delivered
  later") while exercising message accounting; with
  ``retransmit=False`` the message is lost for good and the checker
  must report the resulting liveness violation.

Faults only target *update* messages: control traffic (token, batches,
digests, write requests) carries protocol-internal sequencing whose
loss models process failure, not channel failure -- out of scope for
the failure-free model being checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FaultSpec", "NO_FAULTS", "parse_faults"]


@dataclass(frozen=True)
class FaultSpec:
    """Bounded fault budgets injected as extra checker transitions."""

    #: total update messages that may be duplicated (once each).
    duplicate: int = 0
    #: total update messages that may be dropped.
    drop: int = 0
    #: re-queue a fresh copy of every dropped message.
    retransmit: bool = True
    #: receiver-side at-least-once guard; ``None`` = auto (enabled
    #: exactly when ``duplicate > 0``, the paper's exactly-once model
    #: otherwise needs no guard).
    dedup: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.duplicate < 0 or self.drop < 0:
            raise ValueError("fault budgets must be >= 0")

    @property
    def dedup_effective(self) -> bool:
        if self.dedup is not None:
            return self.dedup
        return self.duplicate > 0

    @property
    def any(self) -> bool:
        return self.duplicate > 0 or self.drop > 0

    def to_dict(self) -> Dict:
        """Canonical JSON form (witness + cache key material)."""
        return {
            "duplicate": self.duplicate,
            "drop": self.drop,
            "retransmit": self.retransmit,
            "dedup": self.dedup,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "FaultSpec":
        extra = set(doc) - {"duplicate", "drop", "retransmit", "dedup"}
        if extra:
            raise ValueError(f"unknown fault fields {sorted(extra)}")
        return cls(
            duplicate=int(doc.get("duplicate", 0)),
            drop=int(doc.get("drop", 0)),
            retransmit=bool(doc.get("retransmit", True)),
            dedup=doc.get("dedup"),
        )


NO_FAULTS = FaultSpec()


def parse_faults(text: str) -> FaultSpec:
    """Parse the CLI grammar: ``none`` or a comma-separated list of
    ``dup:N``, ``drop:N``, ``noretransmit``, ``dedup``, ``nodedup``.

    Examples: ``dup:1``; ``drop:1,noretransmit``; ``dup:2,nodedup``.
    """
    text = text.strip().lower()
    if text in ("", "none"):
        return NO_FAULTS
    duplicate = drop = 0
    retransmit = True
    dedup: Optional[bool] = None
    for part in text.split(","):
        part = part.strip()
        if part.startswith("dup:"):
            duplicate = int(part[4:])
        elif part.startswith("drop:"):
            drop = int(part[5:])
        elif part == "noretransmit":
            retransmit = False
        elif part == "dedup":
            dedup = True
        elif part == "nodedup":
            dedup = False
        else:
            raise ValueError(
                f"unknown fault token {part!r} (want dup:N, drop:N, "
                "noretransmit, dedup, nodedup, or none)"
            )
    return FaultSpec(duplicate=duplicate, drop=drop,
                     retransmit=retransmit, dedup=dedup)
