"""A cluster whose scheduler and network are the model checker.

:class:`ControlledCluster` hosts real :class:`repro.sim.node.Node`
instances (the production protocol + buffering + tracing stack), but
replaces the discrete-event engine and latency network with an
explicit *transition system*: every send lands in an unordered pending
pool, and the explorer decides -- one transition at a time -- which
operation issues, which message delivers, which timer fires, and which
fault strikes.  Exploring all choices covers every non-FIFO delivery
order of the paper's system model (Section 2.1).

Transition vocabulary (all JSON-serializable 2-tuples):

- ``("op", p)``       -- process ``p`` issues its next scripted operation
- ``("deliver", mid)``-- deliver pending message ``mid`` to its target
- ``("timer", p)``    -- fire ``p``'s periodic hook (budgeted)
- ``("dup", mid)``    -- clone a pending update (fault, budgeted)
- ``("drop", mid)``   -- drop a pending update (fault, budgeted)
- ``("crash", p)``    -- crash process ``p`` (fault, budgeted): volatile
  state -- including the buffer of blocked messages -- is lost; while
  down, ``p`` takes no ops/timers and receives no deliveries (the
  unordered pool holds its traffic, modelling connected channels)
- ``("recover", p)``  -- rebuild ``p`` from its durable snapshot + WAL
  (:mod:`repro.durability`) and resume

Crash/recover are semantic no-ops on the *trace*: recovery replays the
journaled inputs through a :class:`~repro.sim.trace.NullTrace`, so a
recovered process carries exactly its pre-crash protocol state and the
ordinary invariants (legality, Theorem 3 safety, causal convergence,
class-𝒫 liveness) are required to hold on every crash path unchanged.
Under ``recover=False`` (crash-stop) the terminal conditions are judged
over the surviving processes instead.

Message ids are *interleaving-independent*: ``u:{origin}.{seq}>{dest}``
with a per-origin emission counter, so two independent transitions
produce the same ids in either execution order -- a requirement for
both sleep-set soundness and witness replay.  Fault copies stack a
prefix (``d:``/``r:``) on the id they were derived from.

Cross-node isolation is checked here: every enqueued message's payload
is scanned for deep immutability (messages are shared objects -- one
broadcast object reaches n-1 receivers and every clone of this
cluster), and a content fingerprint taken at enqueue is re-verified at
delivery and, for still-pending messages, at terminal states.  A
mutation by the last receiver of a message that nothing later delivers
escapes the fingerprint net, but the immutability scan already flags
the mutable container such a mutation would need.

Cloning: the explorer snapshots a state with :meth:`clone`, a
``copy.deepcopy`` whose memo is pre-seeded with the immutable shared
objects (trace events, messages, write ids, past-sets) so branching
cost stays proportional to the *mutable* state.  Everything handed to
``Node`` is a bound method -- never a lambda -- because deepcopy
rebinds bound methods to the copied cluster, while a lambda's closure
would keep pointing at the original (silent cross-branch corruption).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.base import (
    BROADCAST,
    ControlMessage,
    Message,
    Outgoing,
    UpdateMessage,
)
from repro.model.operations import WriteId
from repro.obs.spans import NULL_OBS
from repro.sim.cluster import ProtocolFactory, _resolve_factory
from repro.sim.node import Node
from repro.sim.trace import EventKind, Trace
from repro.workloads.ops import ReadOp, WriteOp

from repro.mck.faults import NO_FAULTS, FaultSpec
from repro.mck.invariants import Finding, InvariantTracker
from repro.mck.workloads import MckWorkload

#: A checker transition: ``(kind, process-or-mid)``.
Transition = Tuple[str, Union[int, str]]

__all__ = ["ControlledCluster", "Transition", "independent",
           "transition_actor"]

#: Types that are deeply immutable by construction (payload scan).
_ATOMS = (type(None), bool, int, float, str, bytes, WriteId)


def _find_mutable(value: Any) -> Optional[str]:
    """Return a description of the first mutable object inside
    ``value`` (tuples/frozensets recursed), or None if deeply
    immutable."""
    if isinstance(value, _ATOMS):
        return None
    if isinstance(value, (tuple, frozenset)):
        for item in value:
            problem = _find_mutable(item)
            if problem is not None:
                return problem
        return None
    return f"{type(value).__name__} ({value!r})"


def _fingerprint(message: Message) -> str:
    """Deterministic content digest of a message (payload order-free)."""
    items = sorted(message.payload.items())
    if isinstance(message, UpdateMessage):
        return repr((message.sender, message.wid, message.variable,
                     message.value, items))
    return repr((message.sender, message.kind, items))


def _core(mid: str) -> str:
    """Strip fault prefixes: the identity of the underlying send."""
    while mid.startswith(("d:", "r:")):
        mid = mid[2:]
    return mid


def _dest(mid: str) -> int:
    return int(mid.rsplit(">", 1)[1])


def transition_actor(t: Transition) -> Optional[int]:
    """The process whose local state a transition touches (None for
    channel-fault transitions, which only touch the pool + budgets)."""
    if t[0] in ("op", "timer", "crash", "recover"):
        return t[1]  # type: ignore[return-value]
    if t[0] == "deliver":
        return _dest(t[1])  # type: ignore[arg-type]
    return None


def independent(a: Transition, b: Transition) -> bool:
    """True when ``a`` and ``b`` commute (same successor state either
    order) -- the sleep-set relation.  Sound because:

    - op/timer/deliver transitions mutate exactly one node's state plus
      that node's emission counter; different actors touch disjoint
      state (the pool is a dict keyed by ids that embed the origin).
    - channel-fault transitions (dup/drop) touch only the pool entry
      for their ``mid`` and the fault budgets, so they commute with
      anything that neither consumes the same ``mid`` nor spends a
      budget.  Fault-vs-fault is conservatively declared dependent
      (shared budgets).
    - crash/recover touch one node plus the crash budget: two crashes
      contend for the budget (dependent -- spending it may disable the
      other), while crash/recover on *different* processes neither
      share mutable state nor affect each other's enabledness.
      Same-process pairs fall out of the actor comparison, including
      crash-vs-deliver-to-p (a crash disables the delivery).
    """
    a_fault = a[0] in ("dup", "drop")
    b_fault = b[0] in ("dup", "drop")
    if a_fault or b_fault:
        if a_fault and b_fault:
            return False
        fault, other = (a, b) if a_fault else (b, a)
        if other[0] == "deliver" and other[1] == fault[1]:
            return False
        return True
    if a[0] == "crash" and b[0] == "crash":
        return False
    return transition_actor(a) != transition_actor(b)


@dataclass(frozen=True)
class _Pending:
    """A pool entry.  Frozen so clones can share entries outright."""

    mid: str
    sender: int
    dest: int
    message: Message
    fingerprint: str
    is_update: bool


class ControlledCluster:
    """``n`` protocol instances + pending pool, stepped by transitions."""

    def __init__(
        self,
        protocol: ProtocolFactory,
        workload: MckWorkload,
        *,
        faults: FaultSpec = NO_FAULTS,
        expect_optimal: bool = False,
        check_convergence: bool = True,
        timer_budget: int = 3,
    ):
        factory = _resolve_factory(protocol)
        n = workload.n_processes
        self.n_processes = n
        self.workload = workload
        self.faults = faults
        #: kept for crash recovery: rebuilding a node needs a fresh
        #: protocol instance of the same kind.
        self._factory = factory
        self._now = 0
        self.trace = Trace(n)
        self._seen_events = 0
        self._pool: Dict[str, _Pending] = {}
        #: every message object ever enqueued on this path -- protocols
        #: may retain references (logs, buffers), and clone() pins them
        #: in the deepcopy memo so all branches share one object.
        self._msgs: List[Message] = []
        self._emit_seq = [0] * n
        self._pending_findings: List[Finding] = []
        self._writes_issued = 0
        self._deferred_local_applies = 0
        self._remote_applies = 0
        self.writes: List[WriteId] = []
        self.pc = [0] * n
        self._dup_budget = faults.duplicate
        self._drop_budget = faults.drop
        self._duped: Set[str] = set()
        self._lost: List[_Pending] = []
        self._crash_budget = faults.crash
        self._crashed = [False] * n
        #: per-process remote-apply counts (trace APPLY events), needed
        #: for survivor-only quiescence accounting under crash-stop.
        self._remote_applies_by = [0] * n
        #: simulated snapshot + WAL pair per process (crash mode only).
        self._durable: Optional[List[Any]] = None
        if faults.crash > 0:
            from repro.durability.recovery import DurableLog
            self._durable = [DurableLog(snap_every=faults.snap_every)
                             for _ in range(n)]
        self.check_convergence = check_convergence
        self.tracker = InvariantTracker(n, expect_optimal=expect_optimal)
        #: whether the last executed transition recorded trace events
        #: (cycle pruning only tracks no-growth chains).
        self.last_trace_grew = False
        self.nodes: List[Node] = [
            Node(
                factory(i, n),
                self.trace,
                clock=self._clock,          # bound methods: deepcopy-safe
                dispatch=self._dispatch,
                on_remote_apply=self._count_remote_apply,
                on_write=self._count_write,
                dedup=faults.dedup_effective,
                obs=NULL_OBS,
            )
            for i in range(n)
        ]
        self.protocol_name = self.nodes[0].protocol.name
        self.in_class_p = type(self.nodes[0].protocol).in_class_p
        if faults.crash > 0:
            if not type(self.nodes[0].protocol).supports_snapshot:
                raise ValueError(
                    f"protocol {self.protocol_name!r} does not support "
                    "snapshots; crash faults need snapshot_state/"
                    "restore_state"
                )
            if self.nodes[0].protocol.timer_interval is not None:
                raise ValueError(
                    f"protocol {self.protocol_name!r} uses timers, which "
                    "the WAL does not journal; crash faults are limited "
                    "to timer-free protocols"
                )
        self._timer_budget = [
            timer_budget if node.protocol.timer_interval is not None else 0
            for node in self.nodes
        ]
        self._has_timers = any(self._timer_budget)
        for node in self.nodes:
            node.start()
        #: findings raised by bootstrap traffic (e.g. token injection);
        #: the explorer reports these against the empty choice path.
        self.bootstrap_findings = self._absorb()

    # -- node plumbing (bound methods; see module docstring) ----------------

    def _clock(self) -> float:
        return float(self._now)

    def _count_remote_apply(self) -> None:
        self._remote_applies += 1

    def _count_write(self, local_apply: bool) -> None:
        self._writes_issued += 1
        if not local_apply:
            self._deferred_local_applies += 1

    def _dispatch(self, sender: int, outgoing: Sequence[Outgoing]) -> None:
        for out in outgoing:
            if out.dest == BROADCAST:
                dests = [d for d in range(self.n_processes) if d != sender]
            else:
                dests = [out.dest]
            for dest in dests:
                self._enqueue(sender, dest, out.message)

    def _enqueue(self, sender: int, dest: int, message: Message) -> None:
        is_update = isinstance(message, UpdateMessage)
        prefix = "u" if is_update else "c"
        seq = self._emit_seq[sender]
        self._emit_seq[sender] = seq + 1
        mid = f"{prefix}:{sender}.{seq}>{dest}"
        problem = _find_mutable(message.value) if is_update else None
        if problem is None:
            for key in sorted(message.payload):
                problem = _find_mutable(message.payload[key])
                if problem is not None:
                    problem = f"payload[{key!r}] holds {problem}"
                    break
        if problem is not None:
            self._pending_findings.append(Finding(
                kind="isolation", process=sender,
                wid=getattr(message, "wid", None),
                detail=f"message {mid} carries mutable state shared "
                       f"across nodes/clones: {problem}",
            ))
        self._msgs.append(message)
        self._pool[mid] = _Pending(
            mid=mid, sender=sender, dest=dest, message=message,
            fingerprint=_fingerprint(message), is_update=is_update,
        )

    # -- transition system --------------------------------------------------

    def enabled(self) -> List[Transition]:
        """All enabled transitions, in a deterministic order."""
        ts: List[Transition] = []
        crashed = self._crashed
        for p in range(self.n_processes):
            if crashed[p]:
                continue
            if self.pc[p] < len(self.workload.scripts[p]):
                ts.append(("op", p))
        for p in range(self.n_processes):
            if self._timer_budget[p] > 0 and not crashed[p]:
                ts.append(("timer", p))
        mids = sorted(self._pool)
        for mid in mids:
            if not crashed[_dest(mid)]:
                ts.append(("deliver", mid))
        if self._crash_budget > 0:
            for p in range(self.n_processes):
                if not crashed[p]:
                    ts.append(("crash", p))
        if self.faults.recover:
            for p in range(self.n_processes):
                if crashed[p]:
                    ts.append(("recover", p))
        if self._dup_budget > 0:
            for mid in mids:
                entry = self._pool[mid]
                if entry.is_update and _core(mid) not in self._duped:
                    ts.append(("dup", mid))
        if self._drop_budget > 0:
            for mid in mids:
                if self._pool[mid].is_update:
                    ts.append(("drop", mid))
        return ts

    def execute(self, t: Transition) -> List[Finding]:
        """Apply one transition; return invariant findings it caused."""
        self._now += 1
        kind, arg = t
        if kind == "op":
            self._exec_op(arg)
        elif kind == "deliver":
            self._exec_deliver(arg)
        elif kind == "timer":
            self._timer_budget[arg] -= 1
            self.nodes[arg].fire_timer()
        elif kind == "crash":
            self._crash_budget -= 1
            self._crashed[arg] = True
            self.nodes[arg].crash()
        elif kind == "recover":
            self._exec_recover(arg)
        elif kind == "dup":
            entry = self._pool[arg]
            self._dup_budget -= 1
            self._duped.add(_core(arg))
            self._pool["d:" + arg] = _Pending(
                mid="d:" + arg, sender=entry.sender, dest=entry.dest,
                message=entry.message, fingerprint=entry.fingerprint,
                is_update=True,
            )
        elif kind == "drop":
            entry = self._pool.pop(arg)
            self._drop_budget -= 1
            if self.faults.retransmit:
                self._pool["r:" + arg] = _Pending(
                    mid="r:" + arg, sender=entry.sender, dest=entry.dest,
                    message=entry.message, fingerprint=entry.fingerprint,
                    is_update=True,
                )
            else:
                self._lost.append(entry)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown transition {t!r}")
        return self._absorb()

    def _exec_op(self, p: int) -> None:
        op = self.workload.scripts[p][self.pc[p]]
        self.pc[p] += 1
        node = self.nodes[p]
        if isinstance(op, WriteOp):
            wid = node.do_write(op.variable, op.value)
            if wid is not None:
                self.writes.append(wid)
        elif isinstance(op, ReadOp):
            node.do_read(op.variable)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")
        if self._durable is not None:
            # Journal the *scripted* value: value=None replays as the
            # same deterministic fresh_value the original produced.
            from repro.durability.wal import (
                encode_read_record, encode_write_record,
            )
            t = float(self._now)
            if isinstance(op, WriteOp):
                body = encode_write_record(t, op.variable, op.value)
            else:
                body = encode_read_record(t, op.variable)
            self._durable[p].append(body, node)

    def _exec_deliver(self, mid: str) -> None:
        entry = self._pool.pop(mid)
        if _fingerprint(entry.message) != entry.fingerprint:
            self._pending_findings.append(Finding(
                kind="isolation", process=entry.dest,
                wid=getattr(entry.message, "wid", None),
                detail=f"message {mid} mutated between send and delivery",
            ))
        self.nodes[entry.dest].receive(entry.message)
        if self._durable is not None:
            from repro.durability.wal import encode_recv_record
            self._durable[entry.dest].append(
                encode_recv_record(float(self._now), entry.message),
                self.nodes[entry.dest],
            )

    def _exec_recover(self, p: int) -> None:
        """Rebuild ``p`` from its snapshot + WAL and wire it back in.

        The rebuilt node replayed against a null trace, a zero clock
        and a sink dispatch (its pre-crash effects are already on the
        trace and in the pool); here the live callbacks are rebound --
        bound methods, so subsequent clones rebind them again."""
        from repro.durability.recovery import rebuild_node
        log = self._durable[p]
        doc = None
        if log.snapshot is not None:
            from repro.durability.wal import decode_snapshot
            doc = decode_snapshot(log.snapshot)
        node = rebuild_node(
            self._factory, p, self.n_processes, doc, log.bodies,
            dedup=self.faults.dedup_effective,
            lose_tail=self.faults.wal_lose_tail,
        )
        node.trace = self.trace
        node.clock = self._clock
        node.dispatch = self._dispatch
        node._on_remote_apply = self._count_remote_apply
        node._on_write = self._count_write
        node.scheduler._clock = self._clock
        self.nodes[p] = node
        self._crashed[p] = False

    def _absorb(self) -> List[Finding]:
        """Feed newly recorded trace events to the invariant tracker."""
        events = self.trace.events[self._seen_events:]
        self._seen_events += len(events)
        self.last_trace_grew = bool(events)
        for event in events:
            if event.kind is EventKind.APPLY:
                self._remote_applies_by[event.process] += 1
        findings = self._pending_findings
        self._pending_findings = []
        findings.extend(self.tracker.observe(self.trace, events))
        return findings

    # -- terminal conditions ------------------------------------------------

    @property
    def quiescent(self) -> bool:
        """Mirror of ``SimCluster._quiescent``: workload done, no update
        in flight, apply accounting satisfied (skips credited via
        ``missing_applies``).

        A crashed process under crash-*recovery* blocks quiescence (its
        recover transition is always enabled, so such paths keep
        running); under crash-*stop* the accounting is judged over the
        survivors only -- see :meth:`_quiescent_crash_stop`.
        """
        if any(self._crashed):
            if self.faults.recover:
                return False
            return self._quiescent_crash_stop()
        for p in range(self.n_processes):
            if self.pc[p] < len(self.workload.scripts[p]):
                return False
        if any(e.is_update for e in self._pool.values()):
            return False
        expected = (self._writes_issued * (self.n_processes - 1)
                    + self._deferred_local_applies)
        missing = sum(n.protocol.missing_applies() for n in self.nodes)
        return self._remote_applies + missing >= expected

    def _quiescent_crash_stop(self) -> bool:
        """Survivor-only quiescence: live scripts done, no update in
        flight *to a live process*, and every scripted write has reached
        every live process other than its (live) writer.

        Writes issued by a now-crashed process still count: their
        broadcasts sit in the pool (connected channels) and the
        survivors must apply them -- paper liveness (Theorem 5)
        restricted to the correct processes.
        """
        live = [p for p in range(self.n_processes) if not self._crashed[p]]
        for p in live:
            if self.pc[p] < len(self.workload.scripts[p]):
                return False
        if any(e.is_update and not self._crashed[e.dest]
               for e in self._pool.values()):
            return False
        n_live = len(live)
        expected = sum(
            n_live if self._crashed[wid.process] else n_live - 1
            for wid in self.writes
        )
        got = sum(self._remote_applies_by[p] for p in live)
        missing = sum(self.nodes[p].protocol.missing_applies() for p in live)
        return got + missing >= expected

    def status(self) -> str:
        """``running`` | ``quiescent`` | ``stuck`` | ``truncated``.

        ``stuck`` is a liveness violation (nothing enabled, yet not
        quiescent); ``truncated`` is "out of timer budget" -- the
        checker cannot conclude anything about liveness there.
        """
        if self.quiescent:
            return "quiescent"
        if not self.enabled():
            if self._lost or any(n.buffered_count for n in self.nodes):
                return "stuck"
            return "truncated" if self._has_timers else "stuck"
        return "running"

    def terminal_findings(self, status: str) -> List[Finding]:
        """Invariants judged only at path end (liveness, convergence,
        leftover isolation fingerprints)."""
        findings: List[Finding] = []
        for entry in self._pool.values():
            if _fingerprint(entry.message) != entry.fingerprint:
                findings.append(Finding(
                    kind="isolation", process=entry.sender,
                    wid=getattr(entry.message, "wid", None),
                    detail=f"pending message {entry.mid} mutated after send",
                ))
        if status == "quiescent":
            if self.in_class_p:
                findings.extend(
                    f for f in self.tracker.liveness_findings(self.writes)
                    if not self._crashed[f.process]
                )
            if self.check_convergence:
                findings.extend(self._convergence_findings())
            # Quiescence is judged by apply accounting; a message still
            # buffered here is wedged junk (e.g. a duplicate admitted
            # without the dedup guard) that no future apply can free.
            # Crashed processes (crash-stop) are exempt throughout:
            # liveness only binds the correct processes.
            for p, node in enumerate(self.nodes):
                if self._crashed[p]:
                    continue
                for msg in node.pending:
                    findings.append(Finding(
                        kind="stuck_message", process=p, wid=msg.wid,
                        detail=f"{msg.wid} still buffered at p{p} at "
                               "quiescence (undeliverable forever)",
                    ))
        elif status == "stuck":
            for entry in self._lost:
                findings.append(Finding(
                    kind="liveness", process=entry.dest,
                    wid=getattr(entry.message, "wid", None),
                    detail=f"update {entry.mid} dropped without retransmit "
                           f"and never delivered to p{entry.dest}",
                ))
            for p, node in enumerate(self.nodes):
                for msg in node.pending:
                    findings.append(Finding(
                        kind="stuck_message", process=p, wid=msg.wid,
                        detail=f"{msg.wid} buffered forever at p{p} "
                               "(activation condition never satisfied)",
                    ))
            if not findings:
                findings.append(Finding(
                    kind="liveness", process=-1,
                    detail="no enabled transitions before quiescence",
                ))
        return findings

    def _convergence_findings(self) -> List[Finding]:
        """Causal convergence: replicas may legitimately disagree on
        the final value of a variable written *concurrently* (the paper
        imposes no total order on ``||co`` writes), but never when one
        final write is in the causal past of another -- the replica
        holding the causally older write either missed an apply
        (liveness) or applied out of order (safety), and this check is
        the store-level witness of that.  Crash-stop terminals compare
        the surviving replicas only."""
        stores = [node.protocol.store_snapshot()
                  for p, node in enumerate(self.nodes)
                  if not self._crashed[p]]
        variables = sorted({v for s in stores for v in s}, key=repr)
        past = self.tracker.past
        findings = []
        for var in variables:
            wids = {store.get(var, (None, None))[1] for store in stores}
            if len(wids) <= 1:
                continue
            finals = sorted(wids, key=repr)
            for i, w1 in enumerate(finals):
                for w2 in finals[i + 1:]:
                    ordered = (w1 in past.get(w2, ()) or
                               w2 in past.get(w1, ()))
                    if ordered:
                        findings.append(Finding(
                            kind="convergence", process=-1,
                            detail=f"stores settle {var!r} on causally "
                                   f"ordered writes {w1} vs {w2} at "
                                   "quiescence",
                        ))
        return findings

    # -- exploration support ------------------------------------------------

    def state_key(self) -> str:
        """Fingerprint for cycle pruning (only consulted along chains of
        transitions that record no trace events, where protocol control
        loops -- token hops, dedup'd duplicates -- could revisit a
        state)."""
        parts: List[Any] = [
            tuple(self.pc),
            tuple(self._emit_seq),
            tuple(self._timer_budget),
            self._dup_budget,
            self._drop_budget,
            tuple(sorted(self._pool)),
            tuple(self._crashed),
            self._crash_budget,
        ]
        if self._durable is not None:
            parts.append(tuple((log.snap_seq, len(log.bodies))
                               for log in self._durable))
        for node in self.nodes:
            store = node.protocol.store_snapshot()
            parts.append((
                repr(sorted(store.items(), key=repr)),
                repr(node.protocol.debug_state()),
                node.duplicates_dropped,
                repr([(m.wid, m.variable) for m in node.pending]),
            ))
        return repr(parts)

    def clone(self) -> "ControlledCluster":
        """Branch-point snapshot; shares immutable objects with the
        parent (see module docstring).

        Everything outside the nodes is copied by hand (container
        copies of shared immutable values -- this runs once per
        explored transition and dominates exploration cost).  The nodes
        (protocol + scheduler state, arbitrary per-protocol structure)
        go through ``copy.deepcopy`` with a memo pre-seeded so that the
        trace, every message ever sent, and the cluster itself resolve
        to their new-branch counterparts -- the last entry is what
        rebinds the nodes' bound-method clock/dispatch callbacks to the
        clone."""
        new = ControlledCluster.__new__(ControlledCluster)
        new.n_processes = self.n_processes
        new.workload = self.workload          # frozen
        new.faults = self.faults              # frozen
        new._now = self._now
        new.trace = self.trace.clone_shared()
        new._seen_events = self._seen_events
        new._pool = dict(self._pool)          # entries frozen
        new._msgs = list(self._msgs)
        new._emit_seq = list(self._emit_seq)
        new._pending_findings = list(self._pending_findings)
        new._writes_issued = self._writes_issued
        new._deferred_local_applies = self._deferred_local_applies
        new._remote_applies = self._remote_applies
        new.writes = list(self.writes)
        new.pc = list(self.pc)
        new._dup_budget = self._dup_budget
        new._drop_budget = self._drop_budget
        new._duped = set(self._duped)
        new._lost = list(self._lost)          # entries frozen
        new._factory = self._factory          # shared callable
        new._crash_budget = self._crash_budget
        new._crashed = list(self._crashed)
        new._remote_applies_by = list(self._remote_applies_by)
        new._durable = (None if self._durable is None
                        else [log.clone() for log in self._durable])
        new.check_convergence = self.check_convergence
        new.tracker = self.tracker.clone()
        new.last_trace_grew = self.last_trace_grew
        new.protocol_name = self.protocol_name
        new.in_class_p = self.in_class_p
        new._timer_budget = list(self._timer_budget)
        new._has_timers = self._has_timers
        new.bootstrap_findings = self.bootstrap_findings  # frozen entries
        memo: Dict[int, Any] = {
            id(self): new,
            id(self.trace): new.trace,
            id(NULL_OBS): NULL_OBS,
        }
        for msg in self._msgs:
            memo[id(msg)] = msg
        new.nodes = copy.deepcopy(self.nodes, memo)
        return new
