"""Exhaustive and randomized exploration of protocol interleavings.

``check(config)`` drives a :class:`~repro.mck.cluster.ControlledCluster`
through the delivery/operation/fault choices of a small workload and
judges every reachable state with the incremental invariants of
:mod:`repro.mck.invariants`:

- **exhaustive** mode is a DFS over all interleavings with two sound
  prunes (docs/model-checking.md has the full argument):

  * *sleep sets* -- after exploring transition ``t`` from a state, the
    commuting reorderings of ``t`` with its independent siblings are
    suppressed in the sibling subtrees.  Sound because the checked
    invariants are functions of per-process event sequences and the
    read-from/apply relations, which Mazurkiewicz-equivalent
    interleavings share.
  * *cycle pruning* -- along chains of transitions that record no trace
    events (control-message hops, dedup'd duplicates: the only
    transitions that can revisit a state), a repeated state fingerprint
    aborts the chain.  Sound because a repeated state adds no new
    reachable behaviour.

- **walk** mode replays ``walks`` independent seeded random
  interleavings to a depth bound -- the fallback for configurations
  whose full interleaving space is out of reach (timer-driven
  protocols, larger workloads).

A state whose incoming transition raised a finding is recorded as a
:class:`Violation` (with the full choice path for replay -- see
:mod:`repro.mck.witness`) and its subtree is not expanded: every
extension of a bad prefix is bad.  Exploration continues through the
siblings so one run can report distinct violations.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Union

from repro.obs.spans import NULL_OBS, Obs
from repro.sim.cluster import ProtocolFactory

from repro.mck.cluster import ControlledCluster, Transition, independent
from repro.mck.faults import NO_FAULTS, FaultSpec
from repro.mck.invariants import Finding
from repro.mck.workloads import MCK_WORKLOADS, MckWorkload
from repro.obs.progress import STATES_PER_TICK

__all__ = [
    "OPTIMAL_PROTOCOLS",
    "CheckConfig",
    "CheckResult",
    "StateLimitError",
    "Violation",
    "check",
    "minimize_witness",
]

#: Protocols that claim Theorem 4 optimality (minimal enabling sets);
#: for these, an unnecessary delay is a violation, not a statistic.
OPTIMAL_PROTOCOLS = frozenset({"optp", "gossip-optp"})

#: Cap on fully recorded violations (each carries a whole choice path;
#: a broken protocol violates on nearly every branch).
MAX_RECORDED_VIOLATIONS = 25


class StateLimitError(RuntimeError):
    """Raised internally when ``max_states`` is exhausted; surfaced to
    callers as ``CheckResult.state_limit_hit`` rather than an error."""


class _StopSearch(Exception):
    """Internal: ``stop_on_violation`` fired."""


@dataclass(frozen=True)
class CheckConfig:
    """One model-checking task (hashable modulo the factory callable)."""

    protocol: ProtocolFactory
    workload: MckWorkload
    faults: FaultSpec = NO_FAULTS
    #: None = auto: protocols in :data:`OPTIMAL_PROTOCOLS` must show
    #: minimal enabling sets, others merely have delays counted.
    expect_optimal: Optional[bool] = None
    mode: str = "exhaustive"  # or "walk"
    max_states: int = 200_000
    max_depth: int = 80
    walks: int = 64
    seed: int = 0
    timer_budget: int = 3
    stop_on_violation: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("exhaustive", "walk"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def resolved_name(self) -> str:
        if isinstance(self.protocol, str):
            return self.protocol
        probe = self.protocol(0, max(self.workload.n_processes, 2))
        return probe.name


@dataclass(frozen=True)
class Violation:
    """A finding plus the choice path that reaches it from the initial
    state (executing ``choices`` in order reproduces the finding)."""

    finding: Finding
    choices: tuple

    def to_dict(self) -> Dict:
        return {"finding": self.finding.to_dict(),
                "choices": [list(t) for t in self.choices]}

    @classmethod
    def from_dict(cls, doc: Dict) -> "Violation":
        return cls(
            finding=Finding.from_dict(doc["finding"]),
            choices=tuple((t[0], t[1]) for t in doc["choices"]),
        )


@dataclass
class CheckResult:
    """Outcome of one ``check`` run.  ``verdict_dict`` is the
    deterministic slice (cache payload, replay comparison); timing
    lives outside it."""

    protocol_name: str
    workload_name: str
    faults: FaultSpec
    mode: str
    expect_optimal: bool
    states: int = 0
    transitions: int = 0
    terminals: Dict[str, int] = field(
        default_factory=lambda: {"quiescent": 0, "stuck": 0, "truncated": 0})
    prunes: Dict[str, int] = field(
        default_factory=lambda: {"sleep": 0, "cycle": 0})
    violations: List[Violation] = field(default_factory=list)
    #: total violations seen (>= len(violations); recording is capped).
    violations_seen: int = 0
    #: executed transitions that buffered a write whose causal past was
    #: already applied (Definition 5; ANBKH's false causality).
    unnecessary_delays: int = 0
    state_limit_hit: bool = False
    wall: float = 0.0

    @property
    def ok(self) -> bool:
        return self.violations_seen == 0

    @property
    def states_per_sec(self) -> float:
        return self.states / self.wall if self.wall > 0 else 0.0

    def verdict_dict(self) -> Dict:
        return {
            "protocol": self.protocol_name,
            "workload": self.workload_name,
            "faults": self.faults.to_dict(),
            "mode": self.mode,
            "expect_optimal": self.expect_optimal,
            "ok": self.ok,
            "states": self.states,
            "transitions": self.transitions,
            "terminals": dict(self.terminals),
            "prunes": dict(self.prunes),
            "violations": [v.to_dict() for v in self.violations],
            "violations_seen": self.violations_seen,
            "unnecessary_delays": self.unnecessary_delays,
            "state_limit_hit": self.state_limit_hit,
        }


def _make_root(config: CheckConfig) -> ControlledCluster:
    name = config.resolved_name()
    expect_optimal = (name in OPTIMAL_PROTOCOLS
                      if config.expect_optimal is None
                      else config.expect_optimal)
    return ControlledCluster(
        config.protocol,
        config.workload,
        faults=config.faults,
        expect_optimal=expect_optimal,
        # partial replication keeps per-variable subsets by design;
        # whole-store convergence is not part of its contract.
        check_convergence=not name.startswith("partial"),
        timer_budget=config.timer_budget,
    )


class _Search:
    """Mutable exploration state shared across the recursion."""

    def __init__(self, config: CheckConfig, result: CheckResult,
                 progress=None):
        self.config = config
        self.result = result
        self.path: List[Transition] = []
        #: optional live telemetry (:class:`repro.obs.progress.ProgressSink`);
        #: ticked every :data:`STATES_PER_TICK` counted states so the
        #: per-state overhead is one modulo when a sink is attached and
        #: zero branches-in-the-loop restructuring when it is not.
        self.progress = progress

    # -- bookkeeping --------------------------------------------------------

    def record(self, finding: Finding) -> None:
        r = self.result
        r.violations_seen += 1
        if len(r.violations) < MAX_RECORDED_VIOLATIONS:
            r.violations.append(
                Violation(finding=finding, choices=tuple(self.path)))
        if self.config.stop_on_violation:
            raise _StopSearch

    def _count_state(self) -> None:
        r = self.result
        r.states += 1
        if r.states > self.config.max_states:
            raise StateLimitError(
                f"max_states={self.config.max_states} exhausted")
        if self.progress is not None and r.states % STATES_PER_TICK == 0:
            prunes = r.prunes["sleep"] + r.prunes["cycle"]
            self.progress.update(
                states=r.states,
                transitions=r.transitions,
                violations=r.violations_seen,
                prune_ratio=round(prunes / max(1, prunes + r.transitions), 4),
                frontier_depth=len(self.path),
            )

    def _step(self, cluster: ControlledCluster,
              t: Transition) -> List[Finding]:
        before = len(cluster.tracker.unnecessary)
        findings = cluster.execute(t)
        self.result.transitions += 1
        self.result.unnecessary_delays += (
            len(cluster.tracker.unnecessary) - before)
        return findings

    def _terminal(self, cluster: ControlledCluster, status: str) -> None:
        self.result.terminals[status] += 1
        for finding in cluster.terminal_findings(status):
            self.record(finding)

    # -- exhaustive ---------------------------------------------------------

    def dfs(self, cluster: ControlledCluster, sleep: Set[Transition],
            chain_keys: Set[str], depth: int) -> None:
        self._count_state()
        status = cluster.status()
        if status != "running":
            self._terminal(cluster, status)
            return
        if depth >= self.config.max_depth:
            self.result.terminals["truncated"] += 1
            return
        done: List[Transition] = []
        candidates = []
        for t in cluster.enabled():
            if t in sleep:
                self.result.prunes["sleep"] += 1
            else:
                candidates.append(t)
        for i, t in enumerate(candidates):
            # The last candidate consumes the parent in place: nothing
            # reads `cluster` after the loop, and clones dominate cost.
            child = (cluster if i == len(candidates) - 1
                     else cluster.clone())
            findings = self._step(child, t)
            self.path.append(t)
            try:
                if findings:
                    for finding in findings:
                        self.record(finding)
                    # every extension of a bad prefix is bad: record
                    # once, skip the subtree.
                else:
                    child_sleep = {
                        s for s in sleep if independent(s, t)
                    } | {d for d in done if independent(d, t)}
                    if child.last_trace_grew:
                        self.dfs(child, child_sleep, set(), depth + 1)
                    else:
                        key = child.state_key()
                        if key in chain_keys:
                            self.result.prunes["cycle"] += 1
                        else:
                            self.dfs(child, child_sleep,
                                     chain_keys | {key}, depth + 1)
            finally:
                self.path.pop()
            done.append(t)

    # -- random walks -------------------------------------------------------

    def walk(self, root: ControlledCluster) -> None:
        rng = random.Random(self.config.seed)
        for _ in range(self.config.walks):
            cluster = root.clone()
            self.path.clear()
            for depth in range(self.config.max_depth + 1):
                self._count_state()
                status = cluster.status()
                if status != "running":
                    self._terminal(cluster, status)
                    break
                if depth == self.config.max_depth:
                    self.result.terminals["truncated"] += 1
                    break
                enabled = cluster.enabled()
                t = enabled[rng.randrange(len(enabled))]
                findings = self._step(cluster, t)
                self.path.append(t)
                if findings:
                    for finding in findings:
                        self.record(finding)
                    break  # abandon the walk: the prefix is already bad
        self.path.clear()


def check(config: CheckConfig, *, obs: Obs = NULL_OBS,
          progress=None) -> CheckResult:
    """Explore ``config`` and return the verdict.

    ``progress`` (a :class:`repro.obs.progress.ProgressSink`) receives a
    snapshot every :data:`~repro.obs.progress.STATES_PER_TICK` states --
    live telemetry only; the verdict is unaffected.
    """
    root = _make_root(config)
    result = CheckResult(
        protocol_name=root.protocol_name,
        workload_name=config.workload.name,
        faults=config.faults,
        mode=config.mode,
        expect_optimal=root.tracker.expect_optimal,
    )
    search = _Search(config, result, progress)
    start = time.perf_counter()
    try:
        for finding in root.bootstrap_findings:
            search.record(finding)
        if config.mode == "exhaustive":
            search.dfs(root, set(), set(), 0)
        else:
            search.walk(root)
    except StateLimitError:
        result.state_limit_hit = True
    except _StopSearch:
        pass
    result.wall = time.perf_counter() - start
    if obs.enabled:
        reg = obs.registry
        labels = {"protocol": result.protocol_name,
                  "workload": result.workload_name}
        reg.counter("mck.states", **labels).inc(result.states)
        reg.counter("mck.transitions", **labels).inc(result.transitions)
        reg.counter("mck.violations", **labels).inc(result.violations_seen)
        for kind, n in result.prunes.items():
            reg.counter("mck.prunes", kind=kind, **labels).inc(n)
        for status, n in result.terminals.items():
            reg.counter("mck.terminals", status=status, **labels).inc(n)
        reg.histogram("mck.states_per_sec").observe(result.states_per_sec)
    journal = obs.journal
    if journal is not None and result.violations_seen > 0:
        journal.note(
            "mck-violations",
            protocol=result.protocol_name,
            workload=result.workload_name,
            violations_seen=result.violations_seen,
            states=result.states,
        )
        journal.maybe_dump("mck-violations")
    if progress is not None:
        progress.update(
            states=result.states,
            transitions=result.transitions,
            violations=result.violations_seen,
        )
    return result


def _bounded_dfs(search: "_Search", cluster: ControlledCluster,
                 sleep: Set[Transition], chain_keys: Set[str],
                 limit: int) -> Optional[List[Transition]]:
    """Depth-limited DFS returning the first violating choice path."""
    search._count_state()
    status = cluster.status()
    if status != "running":
        if cluster.terminal_findings(status):
            return list(search.path)
        return None
    if limit == 0:
        return None
    done: List[Transition] = []
    candidates = [t for t in cluster.enabled() if t not in sleep]
    for i, t in enumerate(candidates):
        child = cluster if i == len(candidates) - 1 else cluster.clone()
        findings = child.execute(t)
        search.result.transitions += 1
        search.path.append(t)
        try:
            if findings:
                return list(search.path)
            child_sleep = {s for s in sleep if independent(s, t)} | {
                d for d in done if independent(d, t)}
            if child.last_trace_grew:
                found = _bounded_dfs(search, child, child_sleep, set(),
                                     limit - 1)
            else:
                key = child.state_key()
                if key in chain_keys:
                    found = None
                else:
                    found = _bounded_dfs(search, child, child_sleep,
                                         chain_keys | {key}, limit - 1)
            if found is not None:
                return found
        finally:
            search.path.pop()
        done.append(t)
    return None


def minimize_witness(
    config: CheckConfig,
    fallback: List[Transition],
    *,
    max_states: int = 200_000,
) -> List[Transition]:
    """Shortest violating choice path, by iterative deepening up to
    ``len(fallback)`` (the path a prior search found).  Minimal up to
    commutation equivalence -- sleep sets stay on, and equivalent
    interleavings all have the same length.  Falls back to the known
    path if the budget runs out."""
    probe = replace(config, max_states=max_states,
                    stop_on_violation=False)
    result = CheckResult(
        protocol_name="", workload_name=config.workload.name,
        faults=config.faults, mode="exhaustive", expect_optimal=False)
    for limit in range(1, len(fallback) + 1):
        root = _make_root(config)
        search = _Search(probe, result)
        if root.bootstrap_findings:
            return []
        try:
            found = _bounded_dfs(search, root, set(), set(), limit)
        except StateLimitError:
            return list(fallback)
        if found is not None:
            return found
    return list(fallback)


def workload_by_name(name: str) -> MckWorkload:
    """CLI helper: resolve a canned workload, with a clear error."""
    try:
        return MCK_WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(MCK_WORKLOADS)}"
        ) from None
