"""Replayable witness traces for model-checker violations.

A witness is a self-contained JSON document: the check configuration,
the (minimized) choice path that reaches a violation, the finding it
produces, and the full event trace the path generates.  Because the
:class:`~repro.mck.cluster.ControlledCluster` is deterministic given a
choice sequence, replaying the path regenerates the trace **byte for
byte** (`repro-dsm check --replay` asserts exactly that), so a witness
shipped in a bug report or pinned as a regression fixture keeps
meaning the same run.

Document layout (version 1)::

    {
      "mck_witness": 1,
      "config":  {...},                  # CheckConfig, protocol by name
      "choices": [["op", 0], ["deliver", "u:0.0>1"], ...],
      "finding": {...},                  # the headline Finding
      "verdict": {"status": ..., "findings": [...]},
      "trace":   "<JSON-lines text, sim/serialize format>"
    }

Loading is strict -- wrong version, missing or extra keys raise
``ValueError`` -- so a damaged fixture fails loudly instead of silently
vacuously passing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.sim.serialize import trace_to_jsonl

from repro.mck.cluster import Transition
from repro.mck.explorer import (
    CheckConfig,
    Violation,
    _make_root,
    minimize_witness,
)
from repro.mck.faults import FaultSpec
from repro.mck.invariants import Finding
from repro.mck.workloads import workload_from_dict

__all__ = [
    "WITNESS_VERSION",
    "ReplayOutcome",
    "build_witness",
    "config_from_dict",
    "config_to_dict",
    "load_witness",
    "replay_path",
    "replay_witness",
    "save_witness",
]

WITNESS_VERSION = 1

_CONFIG_KEYS = (
    "protocol", "workload", "faults", "expect_optimal", "mode",
    "max_states", "max_depth", "walks", "seed", "timer_budget",
    "stop_on_violation",
)
_DOC_KEYS = ("mck_witness", "config", "choices", "finding", "verdict",
             "trace")


def config_to_dict(config: CheckConfig) -> Dict:
    """Canonical JSON form of a check configuration.

    Requires a *named* protocol: a factory callable has no stable
    serial form, so witnesses (and cache keys) only support registry
    protocols.
    """
    if not isinstance(config.protocol, str):
        raise ValueError(
            "only registry protocols (by name) can be serialized; got a "
            f"factory {config.protocol!r}"
        )
    return {
        "protocol": config.protocol,
        "workload": config.workload.to_dict(),
        "faults": config.faults.to_dict(),
        "expect_optimal": config.expect_optimal,
        "mode": config.mode,
        "max_states": config.max_states,
        "max_depth": config.max_depth,
        "walks": config.walks,
        "seed": config.seed,
        "timer_budget": config.timer_budget,
        "stop_on_violation": config.stop_on_violation,
    }


def config_from_dict(doc: Dict) -> CheckConfig:
    """Inverse of :func:`config_to_dict` (strict)."""
    if not isinstance(doc, dict) or set(doc) != set(_CONFIG_KEYS):
        raise ValueError(
            f"malformed check config: keys {sorted(doc) if isinstance(doc, dict) else doc!r}"
        )
    return CheckConfig(
        protocol=doc["protocol"],
        workload=workload_from_dict(doc["workload"]),
        faults=FaultSpec.from_dict(doc["faults"]),
        expect_optimal=doc["expect_optimal"],
        mode=doc["mode"],
        max_states=doc["max_states"],
        max_depth=doc["max_depth"],
        walks=doc["walks"],
        seed=doc["seed"],
        timer_budget=doc["timer_budget"],
        stop_on_violation=doc["stop_on_violation"],
    )


@dataclass
class ReplayOutcome:
    """What executing a choice path produces: the cluster status after
    the last choice, every finding along the way (bootstrap + per-step
    + terminal), and the full regenerated trace."""

    status: str
    findings: List[Finding]
    trace_jsonl: str


def replay_path(config: CheckConfig,
                choices: Sequence[Transition]) -> ReplayOutcome:
    """Deterministically re-execute ``choices`` from the initial state."""
    cluster = _make_root(config)
    findings: List[Finding] = list(cluster.bootstrap_findings)
    for step, t in enumerate(choices):
        t = (t[0], t[1])
        if t not in cluster.enabled():
            raise ValueError(
                f"choice #{step} {t!r} is not enabled -- the witness does "
                "not match this code/config (stale fixture?)"
            )
        findings += cluster.execute(t)
    status = cluster.status()
    if status != "running":
        findings += cluster.terminal_findings(status)
    return ReplayOutcome(
        status=status,
        findings=findings,
        trace_jsonl=trace_to_jsonl(cluster.trace),
    )


def build_witness(config: CheckConfig, violation: Violation, *,
                  minimize: bool = True,
                  minimize_states: int = 200_000) -> Dict:
    """A witness document for ``violation``.

    With ``minimize`` (the default) the choice path is first shortened
    by iterative deepening (:func:`~repro.mck.explorer.minimize_witness`);
    the headline finding is re-derived from the replay of the final
    path, since a shorter path may surface an equivalent-but-distinct
    finding first.
    """
    choices = list(violation.choices)
    if minimize:
        choices = minimize_witness(config, choices,
                                   max_states=minimize_states)
    outcome = replay_path(config, choices)
    if not outcome.findings:
        raise ValueError(
            "witness path produced no finding on replay -- refusing to "
            "write a vacuous witness"
        )
    return {
        "mck_witness": WITNESS_VERSION,
        "config": config_to_dict(config),
        "choices": [list(t) for t in choices],
        "finding": outcome.findings[0].to_dict(),
        "verdict": {
            "status": outcome.status,
            "findings": [f.to_dict() for f in outcome.findings],
        },
        "trace": outcome.trace_jsonl,
    }


def save_witness(doc: Dict, path) -> None:
    Path(path).write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")


def load_witness(path) -> Dict:
    """Load and validate a witness document (strict)."""
    try:
        doc = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise ValueError(f"witness {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or set(doc) != set(_DOC_KEYS):
        raise ValueError(
            f"witness {path}: keys "
            f"{sorted(doc) if isinstance(doc, dict) else doc!r} != "
            f"{sorted(_DOC_KEYS)}"
        )
    if doc["mck_witness"] != WITNESS_VERSION:
        raise ValueError(
            f"witness {path}: unsupported version {doc['mck_witness']!r}"
        )
    return doc


def replay_witness(doc: Dict) -> Tuple[ReplayOutcome, List[str]]:
    """Replay a loaded witness; return the outcome plus any mismatches.

    An empty mismatch list means the stored run was reproduced
    byte-identically: same trace text, same findings, same terminal
    status.
    """
    config = config_from_dict(doc["config"])
    choices = [(t[0], t[1]) for t in doc["choices"]]
    outcome = replay_path(config, choices)
    problems: List[str] = []
    if outcome.status != doc["verdict"]["status"]:
        problems.append(
            f"status {outcome.status!r} != recorded "
            f"{doc['verdict']['status']!r}"
        )
    got = [f.to_dict() for f in outcome.findings]
    if got != doc["verdict"]["findings"]:
        problems.append(
            f"findings differ: replay produced {len(got)}, recorded "
            f"{len(doc['verdict']['findings'])} (or contents changed)"
        )
    if outcome.trace_jsonl != doc["trace"]:
        problems.append("regenerated trace is not byte-identical to the "
                        "recorded trace")
    return outcome, problems
