"""Per-state invariants, checked incrementally along every explored path.

The checker cannot afford the full analyzers of :mod:`repro.analysis`
at every one of ~10^5 states, so this module maintains the same
quantities *online*, O(small set) per event:

- ``context[i]`` -- the set of writes in the causal past of process
  ``p_i``'s next operation.  Maintained exactly like the paper's
  ``->co`` (Section 2.2): a write folds into its issuer's context; a
  read folds in its read-from write and that write's own causal past.
  By construction ``past(w) == X_co-safe(apply(w))`` for every ``w``
  (the differential test in ``tests/mck/test_checker.py`` pins this
  against :func:`repro.analysis.enabling.x_co_safe`).
- **Legality** (Definitions 1-2): checked per RETURN event against the
  reader's context -- the same three cases as
  :func:`repro.model.legality.is_legal_read` (differentially tested
  against it).
- **Safety** (Theorem 3): the apply order at each process must embed
  ``->co``.  Checked per APPLY: applying ``w`` after some already
  applied ``w''`` with ``w ∈ past(w'')`` is exactly an embedding
  violation (attributed at the later apply, which also keeps the check
  correct for writing-semantics protocols that legitimately *skip*
  applies).
- **Optimality** (Definition 5 / Theorem 4): a BUFFER event whose
  write's causal past is already fully applied locally is an
  *unnecessary* delay.  For protocols claiming optimality it is a
  violation; otherwise it is counted (ANBKH's false causality shows up
  here, Figure 3).

Liveness, convergence and isolation are terminal/transition-level
checks owned by :class:`repro.mck.cluster.ControlledCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.model.operations import WriteId
from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = ["Finding", "InvariantTracker", "UnnecessaryDelay"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation, located at a process and (usually) a
    write.  ``kind`` is one of ``legality``, ``safety``, ``optimality``,
    ``liveness``, ``convergence``, ``isolation``, ``stuck_message``."""

    kind: str
    process: int
    detail: str
    wid: Optional[WriteId] = None

    def __str__(self) -> str:
        where = f" {self.wid}" if self.wid is not None else ""
        return f"{self.kind} at p{self.process}{where}: {self.detail}"

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "process": self.process,
            "wid": None if self.wid is None else [self.wid.process,
                                                  self.wid.seq],
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, doc: Dict) -> "Finding":
        wid = doc.get("wid")
        return cls(
            kind=doc["kind"],
            process=doc["process"],
            detail=doc["detail"],
            wid=None if wid is None else WriteId(wid[0], wid[1]),
        )


@dataclass(frozen=True)
class UnnecessaryDelay:
    """A buffered message whose causal past was already applied --
    Definition 5's unnecessary write delay (a non-minimal enabling
    set at work)."""

    process: int
    wid: WriteId

    def to_dict(self) -> Dict:
        return {"process": self.process,
                "wid": [self.wid.process, self.wid.seq]}


class InvariantTracker:
    """Online legality/safety/optimality state for one explored path.

    Deep-copied along with the cluster at every DFS branch point, so
    all structures are plain sets/dicts of (mostly shared, immutable)
    values.
    """

    def __init__(self, n_processes: int, *, expect_optimal: bool):
        self.n = n_processes
        self.expect_optimal = expect_optimal
        #: writes in the causal past of p_i's next operation.
        self.context: List[Set[WriteId]] = [set() for _ in range(n_processes)]
        #: write -> its (frozen) write causal past, fixed at issue time.
        self.past: Dict[WriteId, FrozenSet[WriteId]] = {}
        #: writes applied at each process so far.
        self.applied: List[Set[WriteId]] = [set() for _ in range(n_processes)]
        self.var_of: Dict[WriteId, Hashable] = {}
        self.value_of: Dict[WriteId, Any] = {}
        #: every unnecessary delay observed (violations only when
        #: ``expect_optimal``; otherwise evidence of non-minimality).
        self.unnecessary: List[UnnecessaryDelay] = []

    def clone(self) -> "InvariantTracker":
        """Branch-point snapshot.  All contained objects (write ids,
        past frozensets, variables, values) are immutable and shared;
        only the containers are copied -- this runs on every explored
        transition, so it must stay allocation-light."""
        new = InvariantTracker.__new__(InvariantTracker)
        new.n = self.n
        new.expect_optimal = self.expect_optimal
        new.context = [set(c) for c in self.context]
        new.past = dict(self.past)
        new.applied = [set(a) for a in self.applied]
        new.var_of = dict(self.var_of)
        new.value_of = dict(self.value_of)
        new.unnecessary = list(self.unnecessary)
        return new

    # -- event feed ---------------------------------------------------------

    def observe(self, trace: Trace, events: List[TraceEvent]) -> List[Finding]:
        """Fold newly recorded trace events; return any violations."""
        findings: List[Finding] = []
        for ev in events:
            if ev.kind is EventKind.WRITE:
                findings += self._on_write(trace, ev)
            elif ev.kind is EventKind.RETURN:
                findings += self._on_return(ev)
            elif ev.kind is EventKind.APPLY:
                findings += self._on_apply(ev.process, ev.wid)
            elif ev.kind is EventKind.BUFFER:
                findings += self._on_buffer(ev)
        return findings

    # -- per-kind handlers --------------------------------------------------

    def _on_write(self, trace: Trace, ev: TraceEvent) -> List[Finding]:
        p, wid = ev.process, ev.wid
        self.past[wid] = frozenset(self.context[p])
        self.var_of[wid] = ev.variable
        self.value_of[wid] = ev.value
        self.context[p].add(wid)
        # The WRITE event doubles as the local apply unless the
        # protocol deferred it (then a later APPLY event registers).
        if trace.apply_event(p, wid) is ev:
            return self._on_apply(p, wid)
        return []

    def _on_return(self, ev: TraceEvent) -> List[Finding]:
        p = ev.process
        ctx = self.context[p]
        findings: List[Finding] = []
        if ev.read_from is None:
            for w in ctx:
                if self.var_of[w] == ev.variable:
                    findings.append(Finding(
                        kind="legality", process=p, wid=w,
                        detail=f"read of {ev.variable!r} returned BOTTOM "
                               f"although {w} is in its causal past",
                    ))
                    break
            return findings
        writer = ev.read_from
        for w in ctx:
            if (w != writer and self.var_of[w] == ev.variable
                    and writer in self.past[w]):
                findings.append(Finding(
                    kind="legality", process=p, wid=writer,
                    detail=f"read of {ev.variable!r} returned {writer} but "
                           f"the causally newer {w} is interposed",
                ))
                break
        # ->ro: the writer and its causal past join the reader's context.
        if writer in self.past:
            ctx.update(self.past[writer])
            ctx.add(writer)
        return findings

    def _on_apply(self, p: int, wid: WriteId) -> List[Finding]:
        findings: List[Finding] = []
        for prior in self.applied[p]:
            if wid in self.past[prior]:
                findings.append(Finding(
                    kind="safety", process=p, wid=wid,
                    detail=f"{wid} applied after its causal successor "
                           f"{prior} (apply order does not embed ->co)",
                ))
                break
        self.applied[p].add(wid)
        return findings

    def _on_buffer(self, ev: TraceEvent) -> List[Finding]:
        p, wid = ev.process, ev.wid
        if self.past[wid] <= self.applied[p]:
            self.unnecessary.append(UnnecessaryDelay(process=p, wid=wid))
            if self.expect_optimal:
                return [Finding(
                    kind="optimality", process=p, wid=wid,
                    detail=f"delay of {wid} is unnecessary: its whole "
                           f"causal past ({len(self.past[wid])} writes) "
                           f"was already applied at p{p} "
                           "(enabling set exceeds X_co-safe)",
                )]
        return []

    # -- terminal-state helpers --------------------------------------------

    def liveness_findings(self, writes: List[WriteId]) -> List[Finding]:
        """Theorem 5 for class-𝒫 runs: every write applied everywhere.
        Only meaningful at quiescent terminals of class-𝒫 protocols."""
        findings = []
        for wid in writes:
            for k in range(self.n):
                if wid not in self.applied[k]:
                    findings.append(Finding(
                        kind="liveness", process=k, wid=wid,
                        detail=f"{wid} never applied at p{k}",
                    ))
        return findings
