"""Canned small workloads for exhaustive checking.

A checker workload is one straight-line operation script per process
-- the :class:`~repro.workloads.ops.Schedule` vocabulary stripped of
issue times, because the checker *is* the scheduler: it explores every
interleaving of the scripts with each other and with message
deliveries, so pinned times would only restrict coverage.

Sizes are chosen so exhaustive DFS stays in the 10^3..10^5 state range
(see docs/model-checking.md, "State-space budget"); ``h1`` is the
paper's Example 1 / Figure 3 history and the workload on which ANBKH's
false causality must surface in some interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.ops import Op, ReadOp, Schedule, WriteOp

__all__ = ["MCK_WORKLOADS", "MckWorkload", "workload_from_dict",
           "workload_from_schedule"]


@dataclass(frozen=True)
class MckWorkload:
    """Per-process operation scripts (untimed open-loop workload)."""

    name: str
    scripts: Tuple[Tuple[Op, ...], ...]

    @property
    def n_processes(self) -> int:
        return len(self.scripts)

    @property
    def n_ops(self) -> int:
        return sum(len(s) for s in self.scripts)

    @property
    def n_writes(self) -> int:
        return sum(
            1 for s in self.scripts for op in s if isinstance(op, WriteOp)
        )

    def to_dict(self) -> Dict:
        """Canonical JSON form (witness + cache key material)."""
        return {
            "name": self.name,
            "scripts": [
                [["w", op.variable, op.value] if isinstance(op, WriteOp)
                 else ["r", op.variable] for op in script]
                for script in self.scripts
            ],
        }


def workload_from_dict(doc: Dict) -> MckWorkload:
    """Inverse of :meth:`MckWorkload.to_dict` (strict)."""
    scripts: List[Tuple[Op, ...]] = []
    for script in doc["scripts"]:
        ops: List[Op] = []
        for item in script:
            if item[0] == "w":
                ops.append(WriteOp(item[1], item[2]))
            elif item[0] == "r":
                ops.append(ReadOp(item[1]))
            else:
                raise ValueError(f"unknown op kind {item[0]!r}")
        scripts.append(tuple(ops))
    return MckWorkload(name=doc["name"], scripts=tuple(scripts))


def workload_from_schedule(
    name: str, n_processes: int, schedule: Schedule
) -> MckWorkload:
    """Strip a timed Schedule down to per-process scripts (issue order
    preserved; times discarded -- the checker explores all of them)."""
    return MckWorkload(
        name=name,
        scripts=tuple(
            tuple(s.op for s in schedule.for_process(p))
            for p in range(n_processes)
        ),
    )


def _h1() -> MckWorkload:
    """Example 1 / Figures 1-3: the history whose interleavings contain
    both the necessary-delay run (Figure 1, run 2) and ANBKH's false
    causality (Figure 3)."""
    return MckWorkload(
        name="h1",
        scripts=(
            (WriteOp("x1", "a"), WriteOp("x1", "c")),
            (ReadOp("x1"), WriteOp("x2", "b")),
            (ReadOp("x2"), WriteOp("x2", "d")),
        ),
    )


def _pair() -> MckWorkload:
    """Two writers, crossing variables: the classic store-buffer-shaped
    interleaving square, plus trailing reads."""
    return MckWorkload(
        name="pair",
        scripts=(
            (WriteOp("x", "a"), ReadOp("y"), ReadOp("x")),
            (WriteOp("y", "b"), ReadOp("x"), ReadOp("y")),
        ),
    )


def _chain() -> MckWorkload:
    """A causal chain across three processes: p1 reads p0's write and
    writes; p2 reads both ends of the chain."""
    return MckWorkload(
        name="chain",
        scripts=(
            (WriteOp("x", "a"),),
            (ReadOp("x"), WriteOp("y", "b")),
            (ReadOp("y"), ReadOp("x")),
        ),
    )


def _braid() -> MckWorkload:
    """Two processes, interleaved writes to shared variables -- dense
    in concurrent same-variable writes (convergence stress)."""
    return MckWorkload(
        name="braid",
        scripts=(
            (WriteOp("x", "a"), WriteOp("y", "b"), ReadOp("x")),
            (WriteOp("x", "c"), ReadOp("y"), WriteOp("y", "d"),
             ReadOp("x")),
        ),
    )


def _triangle() -> MckWorkload:
    """Three processes, one write each, everyone reads someone else --
    the smallest all-to-all causal-visibility pattern."""
    return MckWorkload(
        name="triangle",
        scripts=(
            (WriteOp("x", "a"), ReadOp("z")),
            (ReadOp("x"), WriteOp("y", "b")),
            (WriteOp("z", "c"), ReadOp("y")),
        ),
    )


#: Registry of canned workloads, keyed by name.  ``fig3`` aliases
#: ``h1``: the Figure 3 run is one interleaving of the H1 scripts.
MCK_WORKLOADS: Dict[str, MckWorkload] = {
    w.name: w
    for w in (_h1(), _pair(), _chain(), _braid(), _triangle())
}
MCK_WORKLOADS["fig3"] = MckWorkload(name="fig3", scripts=_h1().scripts)
