"""Parallel model checking on the sweep substrate.

A check over one ``(protocol, workload, faults, mode)`` point is CPU
bound and independent of every other point, so a conformance matrix is
embarrassingly parallel.  Rather than grow a second orchestrator, this
module plugs the checker into :class:`~repro.sweep.runner.SweepRunner`:
same process pool, same by-index deterministic merge, same
content-addressed result cache -- only the three pluggable pieces
change:

- :func:`execute_check_spec` is the worker (module-level, picklable);
- :func:`check_digest` is the content address: sha256 over the
  canonical config dict plus a code fingerprint that *includes the
  ``mck`` package itself* (a checker bug fix must invalidate cached
  verdicts, not just protocol changes);
- :func:`verdict_from_dict` rebuilds a :class:`CheckResult` from the
  cached JSON verdict, strictly (schema drift -> ``ValueError`` ->
  cache miss).

Cached verdicts drop wall-clock timing (``wall = 0``): the verdict
slice is deterministic by construction, timing is not.
"""

from __future__ import annotations

import hashlib
import json
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import NULL_OBS, Obs
from repro.sweep.cache import FINGERPRINT_PACKAGES, RunCache
from repro.sweep.runner import SweepRunner, SweepStats

from repro.mck.explorer import CheckConfig, CheckResult, Violation, check
from repro.mck.faults import FaultSpec
from repro.mck.witness import config_to_dict

__all__ = [
    "MCK_FINGERPRINT_PACKAGES",
    "MCK_SPEC_VERSION",
    "check_digest",
    "execute_check_spec",
    "run_checks",
    "verdict_from_dict",
]

#: Bumped whenever the canonical config form or verdict schema changes
#: incompatibly; old cache entries then simply stop matching.
MCK_SPEC_VERSION = 1

#: The sweep fingerprint floor plus the checker itself.
MCK_FINGERPRINT_PACKAGES = tuple(FINGERPRINT_PACKAGES) + ("mck",)

_VERDICT_KEYS = (
    "protocol", "workload", "faults", "mode", "expect_optimal", "ok",
    "states", "transitions", "terminals", "prunes", "violations",
    "violations_seen", "unnecessary_delays", "state_limit_hit",
)


def check_digest(config: CheckConfig,
                 fingerprint: Optional[str] = None) -> str:
    """Content address of a check (the cache key form)."""
    doc: Dict = {"version": MCK_SPEC_VERSION,
                 "check": config_to_dict(config)}
    if fingerprint is not None:
        doc = {"fingerprint": fingerprint, "spec": doc}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def execute_check_spec(config: CheckConfig,
                       progress=None) -> Tuple[Dict, float]:
    """Worker entry point: run one check, return (verdict, wall).

    ``progress`` is only ever bound on the inline (jobs <= 1) path --
    pool workers cannot tick the parent's sink.
    """
    result = check(config, progress=progress)
    return result.verdict_dict(), result.wall


def verdict_from_dict(doc: Dict) -> CheckResult:
    """Rebuild a :class:`CheckResult` from a verdict dict (strict)."""
    if not isinstance(doc, dict) or set(doc) != set(_VERDICT_KEYS):
        raise ValueError(
            f"verdict fields {sorted(doc) if isinstance(doc, dict) else doc!r}"
            f" != {sorted(_VERDICT_KEYS)}"
        )
    terminals = doc["terminals"]
    prunes = doc["prunes"]
    if (not isinstance(terminals, dict)
            or set(terminals) != {"quiescent", "stuck", "truncated"}):
        raise ValueError(f"malformed terminals {terminals!r}")
    if not isinstance(prunes, dict) or set(prunes) != {"sleep", "cycle"}:
        raise ValueError(f"malformed prunes {prunes!r}")
    result = CheckResult(
        protocol_name=doc["protocol"],
        workload_name=doc["workload"],
        faults=FaultSpec.from_dict(doc["faults"]),
        mode=doc["mode"],
        expect_optimal=doc["expect_optimal"],
        states=doc["states"],
        transitions=doc["transitions"],
        terminals=dict(terminals),
        prunes=dict(prunes),
        violations=[Violation.from_dict(v) for v in doc["violations"]],
        violations_seen=doc["violations_seen"],
        unnecessary_delays=doc["unnecessary_delays"],
        state_limit_hit=doc["state_limit_hit"],
        wall=0.0,
    )
    if result.ok != doc["ok"]:
        raise ValueError("inconsistent verdict: ok flag does not match "
                         "violations_seen")
    return result


def make_check_runner(*, jobs: int = 1, cache: Optional[RunCache] = None,
                      obs: Obs = NULL_OBS, progress=None,
                      fingerprint: Optional[str] = None) -> SweepRunner:
    """A :class:`SweepRunner` wired for check configs."""
    worker = execute_check_spec
    if progress is not None and jobs <= 1:
        # Inline execution: bind the sink so the explorer streams
        # per-state ticks.  Pool workers stay with the bare module-level
        # callable (it must pickle by name).
        worker = partial(execute_check_spec, progress=progress)
    return SweepRunner(
        jobs=jobs,
        cache=cache,
        obs=obs,
        progress=progress,
        fingerprint=fingerprint,
        worker=worker,
        digest_fn=check_digest,
        decode=verdict_from_dict,
        fingerprint_packages=MCK_FINGERPRINT_PACKAGES,
    )


def run_checks(
    configs: Sequence[CheckConfig],
    *,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    obs: Obs = NULL_OBS,
    progress=None,
) -> Tuple[List[CheckResult], SweepStats]:
    """Check every config (parallel, cached), in config order.

    ``progress`` (a :class:`repro.obs.progress.ProgressSink`) receives a
    tick per completed config -- telemetry only, results unaffected.
    """
    runner = make_check_runner(jobs=jobs, cache=cache, obs=obs,
                               progress=progress)
    return runner.run(configs), runner.stats
