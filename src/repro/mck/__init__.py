"""Exhaustive interleaving model checker for the protocol zoo.

``repro.mck`` drives the *real* protocol implementations (the same
``Node``/``Protocol`` objects the simulator runs) through every
message-delivery interleaving of small workloads, checking causal
legality, Theorem 3 safety, Theorem 4 optimality, Theorem 5 liveness,
convergence, and cross-node isolation at every reachable state --
with bounded fault injection (duplication, drops) layered on top.
See docs/model-checking.md for the state space, the pruning soundness
argument, and the witness/replay format.
"""

from repro.mck.cluster import ControlledCluster, Transition, independent
from repro.mck.explorer import (
    OPTIMAL_PROTOCOLS,
    CheckConfig,
    CheckResult,
    StateLimitError,
    Violation,
    check,
    minimize_witness,
    workload_by_name,
)
from repro.mck.faults import NO_FAULTS, FaultSpec, parse_faults
from repro.mck.invariants import Finding, InvariantTracker, UnnecessaryDelay
from repro.mck.parallel import run_checks
from repro.mck.shard import check_sharded, shardable
from repro.mck.witness import (
    build_witness,
    load_witness,
    replay_path,
    replay_witness,
    save_witness,
)
from repro.mck.workloads import (
    MCK_WORKLOADS,
    MckWorkload,
    workload_from_dict,
    workload_from_schedule,
)

__all__ = [
    "MCK_WORKLOADS",
    "NO_FAULTS",
    "OPTIMAL_PROTOCOLS",
    "CheckConfig",
    "CheckResult",
    "ControlledCluster",
    "FaultSpec",
    "Finding",
    "InvariantTracker",
    "MckWorkload",
    "StateLimitError",
    "Transition",
    "UnnecessaryDelay",
    "Violation",
    "build_witness",
    "check",
    "check_sharded",
    "independent",
    "load_witness",
    "minimize_witness",
    "parse_faults",
    "replay_path",
    "replay_witness",
    "run_checks",
    "save_witness",
    "shardable",
    "workload_by_name",
    "workload_from_dict",
    "workload_from_schedule",
]
