"""Live instrumentation: metrics, message-lifecycle spans, trace export.

The subsystem the simulator threads through its hot paths behind a
single :class:`Obs` handle (see docs/observability.md for the metric
catalog and span semantics):

- :mod:`repro.obs.metrics` -- labeled counters / gauges / histograms;
- :mod:`repro.obs.spans` -- ``send -> receipt -> [buffer] -> apply``
  lifecycle spans with per-wait blocking-dependency attribution, plus
  the :class:`Obs` handle and its sinks;
- :mod:`repro.obs.export` -- Perfetto / Chrome ``trace_event`` JSON
  rendering and validation, and metrics-file summarization.

Quick use::

    from repro.obs import Obs
    from repro.sim import run_schedule

    obs = Obs.recording()
    result = run_schedule("optp", 4, schedule, obs=obs)
    result.spans        # lifecycle spans, blocking deps annotated
    result.metrics      # registry snapshot (JSON-ready)
"""

from repro.obs.benchcmp import (
    BenchComparison,
    compare_benchmarks,
    load_baseline,
    update_baseline,
)
from repro.obs.critpath import (
    Attribution,
    CritPathReport,
    DelayChain,
    analyze_critical_paths,
)
from repro.obs.export import (
    chrome_trace,
    summarize_metrics,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.journal import (
    FlightRecorder,
    JournalEvent,
    JournalSink,
    events_from_jsonl,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import ProgressSink
from repro.obs.spans import (
    InMemorySink,
    MessageSpan,
    NullSink,
    NULL_OBS,
    Obs,
    WaitInterval,
)

__all__ = [
    "Attribution",
    "BenchComparison",
    "Counter",
    "CritPathReport",
    "DelayChain",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JournalEvent",
    "JournalSink",
    "MessageSpan",
    "MetricsRegistry",
    "NULL_OBS",
    "NullSink",
    "Obs",
    "ProgressSink",
    "WaitInterval",
    "analyze_critical_paths",
    "chrome_trace",
    "events_from_jsonl",
    "compare_benchmarks",
    "load_baseline",
    "summarize_metrics",
    "update_baseline",
    "validate_chrome_trace",
    "write_chrome_trace",
]
