"""Live instrumentation: metrics, message-lifecycle spans, trace export.

The subsystem the simulator threads through its hot paths behind a
single :class:`Obs` handle (see docs/observability.md for the metric
catalog and span semantics):

- :mod:`repro.obs.metrics` -- labeled counters / gauges / histograms;
- :mod:`repro.obs.spans` -- ``send -> receipt -> [buffer] -> apply``
  lifecycle spans with per-wait blocking-dependency attribution, plus
  the :class:`Obs` handle and its sinks;
- :mod:`repro.obs.export` -- Perfetto / Chrome ``trace_event`` JSON
  rendering and validation, and metrics-file summarization.

Quick use::

    from repro.obs import Obs
    from repro.sim import run_schedule

    obs = Obs.recording()
    result = run_schedule("optp", 4, schedule, obs=obs)
    result.spans        # lifecycle spans, blocking deps annotated
    result.metrics      # registry snapshot (JSON-ready)
"""

from repro.obs.export import (
    chrome_trace,
    summarize_metrics,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    InMemorySink,
    MessageSpan,
    NullSink,
    NULL_OBS,
    Obs,
    WaitInterval,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "MessageSpan",
    "MetricsRegistry",
    "NULL_OBS",
    "NullSink",
    "Obs",
    "WaitInterval",
    "chrome_trace",
    "summarize_metrics",
    "validate_chrome_trace",
    "write_chrome_trace",
]
