"""Perf-regression sentinel: diff ``BENCH_*.json`` against a baseline.

Every benchmark suite in ``benchmarks/`` writes a ``BENCH_<name>.json``
report, but until now nothing compared consecutive reports -- the perf
trajectory never accumulated.  ``repro-dsm bench compare`` reads the
committed baseline (``artifacts/bench_baseline.json``), re-reads the
current reports, and applies a per-metric rule:

- ``exact``  -- deterministic quantities (state counts, delay counts)
  must equal the baseline bit-for-bit;
- ``max`` / ``min`` -- absolute bars (the 1.05x obs-overhead ceiling,
  speedup floors) that must hold regardless of the baseline value;
- ``ratio`` -- wall-clock-derived quantities compared against the
  recorded baseline value within ``tolerance`` (generous, because CI
  hosts are noisy: the sentinel catches collapses, not jitter).

A metric whose source file or JSON path is missing is a *failure* when
marked ``required``, otherwise a skip (cpu-gated benchmarks legally
omit sections on small hosts).  ``--update`` rewrites the recorded
baseline values from the current reports (review the diff before
committing).  See docs/observability.md, "Bench-compare sentinel".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "BenchComparison",
    "MetricCheck",
    "compare_benchmarks",
    "load_baseline",
    "update_baseline",
]

BASELINE_VERSION = 1

#: repo-relative default baseline location.
DEFAULT_BASELINE = "artifacts/bench_baseline.json"

_KINDS = ("exact", "max", "min", "ratio")


@dataclass(frozen=True)
class MetricCheck:
    """One metric's verdict."""

    id: str
    kind: str
    status: str  # "ok" | "fail" | "skip"
    baseline: Optional[float]
    current: Optional[float]
    detail: str

    @property
    def ok(self) -> bool:
        return self.status != "fail"


@dataclass
class BenchComparison:
    """All verdicts of one compare run."""

    checks: List[MetricCheck]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.status == "fail"]

    @property
    def skips(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.status == "skip"]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": [
                {
                    "id": c.id, "kind": c.kind, "status": c.status,
                    "baseline": c.baseline, "current": c.current,
                    "detail": c.detail,
                }
                for c in self.checks
            ],
        }

    def render(self) -> str:
        lines = []
        width = max((len(c.id) for c in self.checks), default=0)
        for c in self.checks:
            mark = {"ok": "ok  ", "fail": "FAIL", "skip": "skip"}[c.status]
            lines.append(f"  {mark}  {c.id:<{width}}  {c.detail}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"bench compare: {verdict} "
            f"({len(self.checks)} metrics, {len(self.failures)} failed, "
            f"{len(self.skips)} skipped)"
        )
        return "\n".join(lines)


def load_baseline(path: Path) -> Dict[str, Any]:
    """Read + validate a baseline document (strict, like the caches)."""
    doc = json.loads(Path(path).read_text())
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        raise ValueError(f"baseline {path} has no metrics")
    for m in metrics:
        missing = {"id", "file", "path", "kind"} - set(m)
        if missing:
            raise ValueError(f"baseline metric {m!r} missing {sorted(missing)}")
        if m["kind"] not in _KINDS:
            raise ValueError(
                f"metric {m['id']}: unknown kind {m['kind']!r}; "
                f"expected one of {_KINDS}"
            )
    return doc


def _resolve(doc: Any, dotted: str) -> Optional[float]:
    """Walk ``a.b.c`` through nested dicts; None when absent or
    non-numeric (bool excluded: JSON true/false is not a measurement)."""
    cur = doc
    for part in dotted.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    if isinstance(cur, bool) or not isinstance(cur, (int, float)):
        return None
    return cur


def _read_report(root: Path, name: str,
                 cache: Dict[str, Optional[Dict]]) -> Optional[Dict]:
    if name not in cache:
        path = root / name
        try:
            loaded = json.loads(path.read_text())
        except (OSError, ValueError):
            loaded = None
        cache[name] = loaded if isinstance(loaded, dict) else None
    return cache[name]


def _check_metric(spec: Dict[str, Any], current: Optional[float]) -> MetricCheck:
    mid = spec["id"]
    kind = spec["kind"]
    baseline = spec.get("baseline")
    required = bool(spec.get("required", False))
    if current is None:
        status = "fail" if required else "skip"
        return MetricCheck(mid, kind, status, baseline, None,
                           f"{spec['file']}:{spec['path']} missing"
                           + (" (required)" if required else ""))
    if kind == "exact":
        if baseline is None:
            return MetricCheck(mid, kind, "skip", None, current,
                               "no baseline value recorded")
        ok = current == baseline
        detail = f"current={current:g} baseline={baseline:g}"
    elif kind == "max":
        limit = spec["limit"]
        ok = current <= limit
        detail = f"current={current:g} <= limit={limit:g}"
    elif kind == "min":
        limit = spec["limit"]
        ok = current >= limit
        detail = f"current={current:g} >= limit={limit:g}"
    else:  # ratio
        tol = spec.get("tolerance", 0.5)
        direction = spec.get("direction", "higher_better")
        if baseline is None or baseline == 0:
            return MetricCheck(mid, kind, "skip", baseline, current,
                               "no baseline value recorded")
        if direction == "higher_better":
            bound = baseline * (1.0 - tol)
            ok = current >= bound
            detail = (f"current={current:g} >= "
                      f"baseline*{1 - tol:g}={bound:g}")
        else:
            bound = baseline * (1.0 + tol)
            ok = current <= bound
            detail = (f"current={current:g} <= "
                      f"baseline*{1 + tol:g}={bound:g}")
    return MetricCheck(mid, kind, "ok" if ok else "fail",
                       baseline, current, detail)


def compare_benchmarks(baseline: Dict[str, Any],
                       bench_dir: Path) -> BenchComparison:
    """Apply every baseline metric rule to the reports in ``bench_dir``."""
    cache: Dict[str, Optional[Dict]] = {}
    checks = []
    for spec in baseline["metrics"]:
        report = _read_report(Path(bench_dir), spec["file"], cache)
        current = None if report is None else _resolve(report, spec["path"])
        checks.append(_check_metric(spec, current))
    return BenchComparison(checks=checks)


def update_baseline(baseline: Dict[str, Any],
                    bench_dir: Path) -> Dict[str, Any]:
    """A copy of ``baseline`` with recorded values refreshed from the
    current reports (metrics whose source is absent keep old values)."""
    cache: Dict[str, Optional[Dict]] = {}
    out = {"version": BASELINE_VERSION,
           "metrics": [dict(m) for m in baseline["metrics"]]}
    for spec in out["metrics"]:
        report = _read_report(Path(bench_dir), spec["file"], cache)
        current = None if report is None else _resolve(report, spec["path"])
        if current is not None:
            spec["baseline"] = current
    return out
