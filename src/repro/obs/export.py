"""Perfetto / Chrome ``trace_event`` export of an observed run.

Renders a run as one track per simulated process (all under a single
"repro-dsm" trace process), loadable in ``ui.perfetto.dev`` or
``chrome://tracing``:

- local writes and read returns appear as instant events;
- every apply is a zero-duration slice (``apply w(p,seq)``);
- every **buffered** stretch -- a write delay in the sense of
  Definition 3 -- appears as a ``BUFFER`` slice whose args carry the
  blocking ``(process, seq)`` dependency reported by
  :meth:`~repro.core.base.Protocol.missing_deps`, and a **flow arrow**
  connects the slice to the apply event that satisfied that dependency
  (the scheduler wakeup that released it).  A message that re-parks
  under several dependencies produces one slice + arrow per wait
  interval.

Timestamps: one simulation time unit is rendered as one millisecond
(``ts`` is microseconds in the trace_event format), so relative
durations read naturally in the UI.

The exporter needs spans (an observability-enabled run); without them
it still renders the op/apply timeline, just without buffer
attribution.  :func:`validate_chrome_trace` is the structural check the
test-suite and CI run over every exported file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.model.operations import WriteId
from repro.obs.spans import MessageSpan
from repro.sim.trace import EventKind, Trace

#: one simulation time unit == 1 ms == 1000 trace_event microseconds.
TS_SCALE = 1000.0

_VALID_PHASES = {"X", "B", "E", "i", "I", "M", "s", "t", "f", "C", "b", "e", "n"}


def _wid_label(wid: WriteId) -> str:
    return f"w(p{wid.process}#{wid.seq})"


def chrome_trace(
    trace: Trace,
    spans: Optional[Sequence[MessageSpan]] = None,
    *,
    protocol: str = "?",
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` JSON object for one run."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": 0, "tid": 0, "ts": 0,
        "name": "process_name",
        "args": {"name": f"repro-dsm {protocol}"},
    }]
    for k in range(trace.n_processes):
        events.append({
            "ph": "M", "pid": 0, "tid": k, "ts": 0,
            "name": "thread_name", "args": {"name": f"p{k}"},
        })
        events.append({
            "ph": "M", "pid": 0, "tid": k, "ts": 0,
            "name": "thread_sort_index", "args": {"sort_index": k},
        })

    # -- op / apply timeline from the trace ------------------------------------
    for ev in trace.events:
        ts = ev.time * TS_SCALE
        if ev.kind is EventKind.WRITE:
            events.append({
                "ph": "X", "pid": 0, "tid": ev.process, "ts": ts, "dur": 0,
                "cat": "apply", "name": f"write {_wid_label(ev.wid)}",
                "args": {"variable": str(ev.variable),
                         "value": repr(ev.value)},
            })
        elif ev.kind is EventKind.APPLY:
            events.append({
                "ph": "X", "pid": 0, "tid": ev.process, "ts": ts, "dur": 0,
                "cat": "apply", "name": f"apply {_wid_label(ev.wid)}",
                "args": {"variable": str(ev.variable),
                         "value": repr(ev.value)},
            })
        elif ev.kind is EventKind.RETURN:
            events.append({
                "ph": "i", "s": "t", "pid": 0, "tid": ev.process, "ts": ts,
                "cat": "op", "name": f"read {ev.variable}",
                "args": {"value": repr(ev.value),
                         "read_from": (str(ev.read_from)
                                       if ev.read_from else None)},
            })
        elif ev.kind is EventKind.DISCARD:
            events.append({
                "ph": "i", "s": "t", "pid": 0, "tid": ev.process, "ts": ts,
                "cat": "discard", "name": f"discard {_wid_label(ev.wid)}",
                "args": {"variable": str(ev.variable)},
            })

    # -- buffer intervals + release flows from the spans -------------------------
    flow_id = 0
    horizon = trace.events[-1].time if len(trace) else 0.0
    for span in spans or ():
        for wait in span.waits:
            end = wait.end if wait.end is not None else horizon
            dep = wait.dep
            args = {
                "wid": _wid_label(span.wid),
                "variable": str(span.variable),
                "sender": span.sender,
                "blocked_on": (f"p{dep[0]}#{dep[1]}" if dep else "unknown"),
            }
            events.append({
                "ph": "X", "pid": 0, "tid": span.process,
                "ts": wait.start * TS_SCALE,
                "dur": max(0.0, (end - wait.start)) * TS_SCALE,
                "cat": "buffer", "name": f"BUFFER {_wid_label(span.wid)}",
                "args": args,
            })
            if dep is None:
                continue
            releasing = trace.apply_event(span.process, WriteId(dep[0], dep[1]))
            if releasing is None or wait.end is None:
                # dependency never fired here (dead-park) or keyed by a
                # protocol-specific scheme the trace cannot resolve.
                continue
            # flow arrow: BUFFER slice --> the apply that released it.
            flow_id += 1
            events.append({
                "ph": "s", "pid": 0, "tid": span.process,
                "ts": wait.start * TS_SCALE,
                "cat": "release", "name": "released-by", "id": flow_id,
                "args": args,
            })
            events.append({
                "ph": "f", "bp": "e", "pid": 0, "tid": releasing.process,
                "ts": releasing.time * TS_SCALE,
                "cat": "release", "name": "released-by", "id": flow_id,
                "args": args,
            })

    events.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "M" else 1))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro-dsm",
            "protocol": protocol,
            "n_processes": trace.n_processes,
        },
    }


def write_chrome_trace(path, trace, spans=None, *, protocol="?") -> None:
    """Render and write a Chrome trace file (convenience for the CLI)."""
    doc = chrome_trace(trace, spans, protocol=protocol)
    problems = validate_chrome_trace(doc)
    if problems:  # pragma: no cover - exporter bug guard
        raise ValueError(f"exporter produced an invalid trace: {problems}")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)


# -- validation ------------------------------------------------------------------


def validate_chrome_trace(doc: Any) -> List[str]:
    """Structural validation against the ``trace_event`` format.

    Returns a list of problems (empty == valid).  Checks the JSON
    object layout, per-event required fields, phase codes, non-negative
    durations, and that every flow-start ``s`` has a matching
    flow-finish ``f`` no earlier than itself.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    flows: Dict[Any, Dict[str, float]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing/non-int {key}")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: missing/negative ts")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if ph in ("s", "f"):
            if "id" not in ev:
                problems.append(f"{where}: flow event needs an id")
            else:
                entry = flows.setdefault(ev["id"], {})
                if ph in entry:
                    problems.append(f"{where}: duplicate flow {ph}")
                entry[ph] = ev.get("ts", 0.0)
    for fid, entry in flows.items():
        if set(entry) != {"s", "f"}:
            problems.append(f"flow {fid}: unmatched (has {sorted(entry)})")
        elif entry["f"] < entry["s"]:
            problems.append(f"flow {fid}: finish before start")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems


# -- saved-metrics summarization (the ``repro-dsm obs`` subcommand) ---------------


def summarize_metrics(doc: Dict[str, Any]) -> str:
    """Human-readable summary of a ``--metrics-out`` JSON document."""
    lines: List[str] = []
    proto = doc.get("protocol", "?")
    lines.append(f"protocol: {proto}   n={doc.get('n_processes', '?')}   "
                 f"duration={doc.get('duration', '?')}")
    metrics = doc.get("metrics", {})
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<28}{'total':>10}  per-series")
        lines.append("-" * 64)
        for name in sorted(counters):
            series = counters[name]
            total = sum(s["value"] for s in series)
            detail = ""
            if len(series) > 1:
                detail = " ".join(
                    f"{_series_label(s['labels'])}={s['value']}"
                    for s in series
                )
            lines.append(f"{name:<28}{total:>10}  {detail}".rstrip())
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<28}{'last':>10}{'high-water':>12}")
        lines.append("-" * 50)
        for name in sorted(gauges):
            for s in gauges[name]:
                label = _series_label(s["labels"])
                display = f"{name}{{{label}}}" if label else name
                lines.append(f"{display:<28}{s['value']:>10}"
                             f"{s.get('high_water', s['value']):>12}")
    if histograms:
        lines.append("")
        lines.append(f"{'histogram':<28}{'count':>7}{'mean':>9}{'p95':>9}"
                     f"{'p99':>9}{'max':>9}")
        lines.append("-" * 71)
        for name in sorted(histograms):
            for s in histograms[name]:
                label = _series_label(s["labels"])
                display = f"{name}{{{label}}}" if label else name
                lines.append(
                    f"{display:<28}{s['count']:>7}{s['mean']:>9.3f}"
                    f"{s['p95']:>9.3f}{s['p99']:>9.3f}{s['max']:>9.3f}"
                )
    return "\n".join(lines)


def _series_label(labels: Dict[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
