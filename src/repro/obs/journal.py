"""Run flight recorder: a bounded ring buffer of lifecycle events.

The metrics registry aggregates and the span sink materializes whole
lifecycles, but neither answers "what were the last things this run
did?" when a run wedges (``EngineLimitError``) or a model-checking
invariant fires.  :class:`FlightRecorder` keeps the newest ``capacity``
structured events -- send / receipt / buffer / repark / **activate** /
apply / discard / read -- each carrying the causal edge id (the
``(process, seq)`` apply-event key of
:meth:`repro.core.base.Protocol.missing_deps`) that gated it, so a
stuck-run report is self-contained.

Wiring: :meth:`repro.obs.spans.Obs.recording(journal=True) <repro.obs.spans.Obs.recording>`
interposes a :class:`JournalSink` between the substrate's hooks and the
span sink.  The tee adds no scheduler/node hook sites: **activate**
events (a buffered message released by its final dependency) are
synthesized from the ``buffer``/``repark``/``apply`` stream the sink
already receives, with the releasing edge taken from the message's
current wait dependency.

Dumping: :meth:`FlightRecorder.to_jsonl` renders header + events as
JSON lines.  Setting :attr:`FlightRecorder.autodump_path` arms
auto-dump -- the engine dumps on :class:`~repro.sim.engine.EngineLimitError`
and the model checker dumps when a check records violations (both call
:meth:`maybe_dump`; with no path armed it is a no-op).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.model.operations import WriteId
from repro.obs.spans import DepKey, NullSink

__all__ = ["JOURNAL_VERSION", "FlightRecorder", "JournalEvent",
           "JournalSink", "events_from_jsonl"]

JOURNAL_VERSION = 1

#: Default ring capacity; at ~6 events per delivered message this keeps
#: the last few hundred deliveries of arbitrarily long runs.
DEFAULT_CAPACITY = 4096


class JournalEvent:
    """One recorded event.  Plain ``__slots__`` object: a recorder in a
    hot run appends tens of thousands of these."""

    __slots__ = ("seq", "t", "kind", "process", "wid", "dep", "extra")

    def __init__(
        self,
        seq: int,
        t: float,
        kind: str,
        process: int,
        wid: Optional[WriteId] = None,
        dep: DepKey = None,
        extra: Optional[Dict[str, Any]] = None,
    ):
        self.seq = seq
        self.t = t
        self.kind = kind
        self.process = process
        self.wid = wid
        self.dep = dep
        self.extra = extra

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "seq": self.seq,
            "t": self.t,
            "kind": self.kind,
            "process": self.process,
        }
        if self.wid is not None:
            doc["wid"] = [self.wid.process, self.wid.seq]
        if self.dep is not None:
            doc["dep"] = [self.dep[0], self.dep[1]]
        if self.extra:
            doc.update(self.extra)
        return doc

    def __repr__(self) -> str:  # diagnostics only
        parts = [f"#{self.seq}", f"t={self.t:g}", self.kind,
                 f"p{self.process}"]
        if self.wid is not None:
            parts.append(f"w{self.wid.process}.{self.wid.seq}")
        if self.dep is not None:
            parts.append(f"dep=({self.dep[0]},{self.dep[1]})")
        return f"<{' '.join(parts)}>"


class FlightRecorder:
    """Bounded ring of :class:`JournalEvent` values, newest-last.

    ``seq`` is a global monotone event number, so a dumped tail makes
    clear how much history the ring evicted (``dropped`` = events that
    rotated out).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        autodump_path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        #: armed auto-dump target; None disables the automatic dumps.
        self.autodump_path = autodump_path
        #: number of automatic dumps performed (tests / diagnostics).
        self.autodumps = 0

    # -- recording ---------------------------------------------------------

    def append(
        self,
        kind: str,
        t: float,
        process: int,
        wid: Optional[WriteId] = None,
        dep: DepKey = None,
        **extra: Any,
    ) -> None:
        self._ring.append(
            JournalEvent(self._seq, t, kind, process, wid, dep,
                         extra or None)
        )
        self._seq += 1

    def note(self, kind: str, **extra: Any) -> None:
        """An out-of-band annotation (no process/time context)."""
        self.append(kind, 0.0, -1, **extra)

    # -- queries -----------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        return self._seq

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self._seq - len(self._ring)

    def events(self) -> List[JournalEvent]:
        return list(self._ring)

    def last(self, k: int) -> List[JournalEvent]:
        """The newest ``k`` events, oldest-first."""
        if k <= 0:
            return []
        return list(self._ring)[-k:]

    def __len__(self) -> int:
        return len(self._ring)

    # -- export ------------------------------------------------------------

    def to_jsonl(self, **meta: Any) -> str:
        """Header line + one JSON object per event."""
        header = {
            "journal": True,
            "version": JOURNAL_VERSION,
            "capacity": self.capacity,
            "recorded": self._seq,
            "dropped": self.dropped,
            **meta,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(e.to_dict(), sort_keys=True) for e in self._ring
        )
        return "\n".join(lines) + "\n"

    def dump(self, path: str, **meta: Any) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl(**meta))

    def maybe_dump(self, reason: str) -> Optional[str]:
        """Auto-dump to the armed path; returns the path, or None when
        auto-dump is not armed.  Never raises: the dump is a diagnostic
        side channel and must not mask the triggering failure."""
        path = self.autodump_path
        if path is None:
            return None
        try:
            self.dump(path, reason=reason)
        except OSError:
            return None
        self.autodumps += 1
        return path


def events_from_jsonl(text: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a dump back into (header, event dicts); strict on shape."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty journal dump")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or not header.get("journal"):
        raise ValueError("missing journal header line")
    if header.get("version") != JOURNAL_VERSION:
        raise ValueError(f"unsupported journal version {header.get('version')!r}")
    return header, [json.loads(ln) for ln in lines[1:]]


class JournalSink(NullSink):
    """Tee sink: records every lifecycle callback into a
    :class:`FlightRecorder`, then forwards to the wrapped sink.

    Activation synthesis: the tee tracks each buffered message's
    *current* blocking dependency (set by ``on_buffer``, advanced by
    ``on_repark``); when the apply callback arrives for a tracked
    message, an ``activate`` event carrying that final edge is recorded
    immediately before the ``apply`` event -- the scheduler wakeup made
    explicit, with no extra hot-path hook sites.
    """

    def __init__(self, recorder: FlightRecorder,
                 inner: Optional[NullSink] = None):
        self.recorder = recorder
        self.inner = inner if inner is not None else NullSink()
        #: (process, wid) -> current blocking dep of a buffered message.
        self._waiting: Dict[Tuple[int, WriteId], DepKey] = {}

    # the Obs.spans property resolves through the tee transparently
    @property
    def records_spans(self) -> bool:
        return getattr(self.inner, "records_spans", False)

    @property
    def spans(self):
        return self.inner.spans

    # -- lifecycle callbacks ----------------------------------------------

    def on_send(self, t, process, wid, variable):
        self.recorder.append("send", t, process, wid,
                             variable=str(variable))
        self.inner.on_send(t, process, wid, variable)

    def on_receipt(self, t, process, wid, variable, sender):
        self.recorder.append("receipt", t, process, wid, sender=sender)
        self.inner.on_receipt(t, process, wid, variable, sender)

    def on_buffer(self, t, process, wid, dep):
        self._waiting[(process, wid)] = dep
        self.recorder.append("buffer", t, process, wid, dep)
        self.inner.on_buffer(t, process, wid, dep)

    def on_repark(self, t, process, wid, dep):
        self._waiting[(process, wid)] = dep
        self.recorder.append("repark", t, process, wid, dep)
        self.inner.on_repark(t, process, wid, dep)

    def on_apply(self, t, process, wid):
        released = self._waiting.pop((process, wid), _MISSING)
        if released is not _MISSING:
            self.recorder.append("activate", t, process, wid, released)
        self.recorder.append("apply", t, process, wid)
        self.inner.on_apply(t, process, wid)

    def on_discard(self, t, process, wid):
        self._waiting.pop((process, wid), None)
        self.recorder.append("discard", t, process, wid)
        self.inner.on_discard(t, process, wid)

    def on_read(self, t, process, variable, value):
        self.recorder.append("read", t, process, variable=str(variable))
        self.inner.on_read(t, process, variable, value)


#: sentinel distinguishing "not buffered" from "buffered with dep None"
_MISSING = object()
