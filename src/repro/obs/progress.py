"""Live progress telemetry for long-running checks and sweeps.

A :class:`ProgressSink` receives ``update(**fields)`` calls from the
work loop (the model checker every :data:`STATES_PER_TICK` states, the
sweep runner on cache consults and shard completions) and throttles
them to periodic one-line snapshots on a stream -- states/s, POR prune
ratio, shard completion, cache hit rate.  ``repro-dsm check --progress``
and ``repro-dsm sweep --progress`` arm it on stderr.

Determinism: progress lives entirely in the observability side channel.
The sink reads wall clocks (this module is in the ``obs`` zone, outside
reprolint's determinism zones) but never feeds anything back into
results; ``--stats-out`` gains only the final :meth:`snapshot`, whose
rate fields are explicitly marked non-deterministic.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

__all__ = ["ProgressSink", "STATES_PER_TICK"]

#: The model checker calls ``update`` every this-many explored states
#: (a power of two so the modulo folds to a mask-like check).
STATES_PER_TICK = 4096


class ProgressSink:
    """Throttled progress snapshots: merge fields, emit periodically.

    ``update`` merges keyword fields into the latest snapshot and, at
    most once per ``interval`` wall seconds, renders a line to
    ``stream``.  Rates are derived by the sink: for every numeric field
    named in ``rate_fields`` a ``<field>/s`` is computed from the delta
    since the previous emission.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        *,
        interval: float = 0.5,
        label: str = "",
        rate_fields: tuple = ("states",),
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.label = label
        self.rate_fields = rate_fields
        self.latest: Dict[str, Any] = {}
        self.updates = 0
        self.emissions = 0
        self._t0 = time.perf_counter()
        self._last_emit = 0.0  # relative to _t0; 0 = never
        self._last_rate_vals: Dict[str, float] = {}
        self._last_rate_t = self._t0
        self.rates: Dict[str, float] = {}

    # -- ingestion ---------------------------------------------------------

    def update(self, **fields: Any) -> None:
        self.latest.update(fields)
        self.updates += 1
        now = time.perf_counter()
        if self._last_emit and now - self._t0 - self._last_emit < self.interval:
            return
        self._emit(now)

    def close(self) -> None:
        """Final snapshot line (always emitted when anything arrived)."""
        if self.updates:
            self._emit(time.perf_counter(), final=True)

    # -- rendering ---------------------------------------------------------

    def _emit(self, now: float, *, final: bool = False) -> None:
        self._update_rates(now)
        parts = [f"[progress{'' if not self.label else ' ' + self.label}]"]
        if final:
            parts.append("done")
        for key in sorted(self.latest):
            value = self.latest[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            else:
                parts.append(f"{key}={value}")
        for key, rate in sorted(self.rates.items()):
            parts.append(f"{key}/s={rate:,.0f}")
        print(" ".join(parts), file=self.stream, flush=True)
        self.emissions += 1
        self._last_emit = now - self._t0

    def _update_rates(self, now: float) -> None:
        dt = now - self._last_rate_t
        if dt <= 0:
            return
        for key in self.rate_fields:
            value = self.latest.get(key)
            if not isinstance(value, (int, float)):
                continue
            prev = self._last_rate_vals.get(key)
            if prev is not None:
                self.rates[key] = (value - prev) / dt
            self._last_rate_vals[key] = float(value)
        self._last_rate_t = now

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The final merged fields for ``--stats-out``.  Rate fields are
        wall-clock derived and hence non-deterministic; they are nested
        under ``"rates"`` so deterministic consumers can ignore them."""
        return {
            "updates": self.updates,
            "emissions": self.emissions,
            "fields": dict(self.latest),
            "rates": {f"{k}/s": round(v, 1) for k, v in self.rates.items()},
            "wall_seconds": round(time.perf_counter() - self._t0, 6),
        }
