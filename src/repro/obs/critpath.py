"""Causal critical-path profiling: where write delays land on the clock.

The paper's optimality result (Theorem 4) counts unnecessary delays;
this module turns the count into wall-clock attribution.  Input is a
span-recording run (:class:`~repro.sim.result.RunResult` with
``spans``): every buffered-and-applied message carries a tiling of its
buffered stretch into :class:`~repro.obs.spans.WaitInterval` values,
each labeled with the blocking ``(process, seq)`` apply-event edge.

Three outputs:

- **attribution** -- per wait interval, blocked time charged to the
  dependency that gated it.  The tiling is exact by construction
  (``on_repark`` closes one interval as it opens the next; ``on_apply``
  closes the last), so per run::

      sum(attributed blocked time) == sum(span.buffer_duration)

  -- the conservation invariant ``tests/obs/test_critpath.py`` pins.
- **necessity split** -- each delayed span is joined against the
  Theorem-4 delay audit (:func:`repro.analysis.checker.audit_delays`):
  blocked time of delays with no unapplied causal predecessor at
  receipt is *unnecessary* (ANBKH's false causality, Figure 3); OptP
  attributes exactly zero there on every run.
- **critical paths** -- for each delayed apply, the dependency chain
  behind it: follow the releasing edge to the write that fired it, and
  if *that* write's local apply was itself delayed, recurse.  The
  longest chain (by blocked time) is the run's critical path -- the
  sequence of waits a hypothetical zero-delay protocol would remove.

``repro-dsm critpath`` renders the per-protocol report on the paper's
Ĥ₁ scenarios (docs/observability.md, "Critical-path profiler").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.operations import WriteId
from repro.obs.spans import DepKey, MessageSpan

__all__ = [
    "Attribution",
    "CritPathReport",
    "DelayChain",
    "analyze_critical_paths",
]

#: Chain reconstruction bound: a causal chain cannot exceed the number
#: of writes in a run, but guard against pathological span data anyway.
MAX_CHAIN_LEN = 10_000


@dataclass(frozen=True)
class Attribution:
    """One wait interval charged to its blocking dependency."""

    process: int
    wid: WriteId
    #: the blocking apply-event edge (None = not enumerable: legacy
    #: scheduling, or a dead-parked duplicate)
    dep: DepKey
    start: float
    end: float
    #: Theorem-4 verdict of the *span's* delay (all intervals of one
    #: delayed message share it); None when no audit entry matched.
    necessary: Optional[bool]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class DelayChain:
    """The dependency chain behind one delayed apply, innermost last:
    ``spans[0]`` is the delayed message, ``spans[i+1]`` the (itself
    delayed) write whose apply released ``spans[i]``."""

    process: int
    spans: Tuple[MessageSpan, ...]

    @property
    def head(self) -> MessageSpan:
        return self.spans[0]

    @property
    def blocked(self) -> float:
        return sum(s.buffer_duration for s in self.spans)

    def render(self) -> str:
        hops = " <- ".join(
            f"w{s.wid.process}.{s.wid.seq}"
            f"[{s.buffer_duration:.3f}]"
            for s in self.spans
        )
        return f"p{self.process}: {hops}  (total {self.blocked:.3f})"


@dataclass
class CritPathReport:
    """Per-run attribution summary (see module docstring)."""

    protocol: str
    attributions: List[Attribution] = field(default_factory=list)
    chains: List[DelayChain] = field(default_factory=list)
    #: spans buffered but never released (discarded / dead-parked):
    #: excluded from the conservation totals, reported for visibility.
    unreleased: int = 0

    @property
    def total_blocked(self) -> float:
        return sum(a.duration for a in self.attributions)

    @property
    def necessary_blocked(self) -> float:
        return sum(a.duration for a in self.attributions
                   if a.necessary is not False)

    @property
    def unnecessary_blocked(self) -> float:
        """Blocked time on delays the audit proved unnecessary
        (Definition 5) -- OptP's is zero on every run (Theorem 4)."""
        return sum(a.duration for a in self.attributions
                   if a.necessary is False)

    @property
    def delayed_applies(self) -> int:
        return len(self.chains)

    def critical_path(self) -> Optional[DelayChain]:
        """The chain with the most blocked time, ties broken by the
        earliest delayed apply (deterministic across runs)."""
        if not self.chains:
            return None
        return max(
            self.chains,
            key=lambda c: (c.blocked, -(c.head.apply_time or 0.0)),
        )

    def by_dependency(self) -> List[Tuple[DepKey, float]]:
        """Blocked time grouped by blocking edge, most-blocking first."""
        acc: Dict[DepKey, float] = {}
        for a in self.attributions:
            acc[a.dep] = acc.get(a.dep, 0.0) + a.duration
        return sorted(acc.items(), key=lambda kv: (-kv[1], str(kv[0])))

    def to_dict(self) -> Dict:
        crit = self.critical_path()
        return {
            "protocol": self.protocol,
            "delayed_applies": self.delayed_applies,
            "attributions": len(self.attributions),
            "total_blocked": self.total_blocked,
            "necessary_blocked": self.necessary_blocked,
            "unnecessary_blocked": self.unnecessary_blocked,
            "unreleased": self.unreleased,
            "critical_path": None if crit is None else {
                "process": crit.process,
                "blocked": crit.blocked,
                "writes": [[s.wid.process, s.wid.seq] for s in crit.spans],
            },
        }

    def render(self, *, top: int = 5) -> str:
        lines = [
            f"{self.protocol}: {self.delayed_applies} delayed applies, "
            f"blocked {self.total_blocked:.3f} "
            f"(necessary {self.necessary_blocked:.3f}, "
            f"unnecessary {self.unnecessary_blocked:.3f})"
        ]
        if self.unreleased:
            lines.append(f"  unreleased (buffered, never applied): "
                         f"{self.unreleased}")
        deps = self.by_dependency()[:top]
        if deps:
            lines.append("  blocking edges:")
            for dep, blocked in deps:
                label = "<unattributed>" if dep is None else \
                    f"apply({dep[0]},{dep[1]})"
                lines.append(f"    {label:<18} {blocked:.3f}")
        crit = self.critical_path()
        if crit is not None:
            lines.append(f"  critical path: {crit.render()}")
        return "\n".join(lines)


def _necessity_index(result) -> Dict[Tuple[int, WriteId], bool]:
    """(process, wid) -> Theorem-4 necessity, from the delay audit."""
    from repro.analysis.checker import audit_delays

    return {
        (a.process, a.wid): a.necessary for a in audit_delays(result)
    }


def analyze_critical_paths(
    result,
    *,
    audits: Optional[Dict[Tuple[int, WriteId], bool]] = None,
) -> CritPathReport:
    """Build the attribution report for a span-recording run.

    ``audits`` overrides the necessity join (tests hand-build it);
    the default runs :func:`repro.analysis.checker.audit_delays`.
    """
    spans = result.spans
    if spans is None:
        raise ValueError(
            "run recorded no spans; pass obs=Obs.recording() to the run"
        )
    if audits is None:
        audits = _necessity_index(result)

    report = CritPathReport(protocol=result.protocol_name)
    #: released (buffered + applied) spans by (process, wid) for chains.
    released: Dict[Tuple[int, WriteId], MessageSpan] = {}
    for span in spans:
        if not span.waits:
            continue
        if span.apply_time is None:
            report.unreleased += 1
            continue
        released[(span.process, span.wid)] = span
        necessary = audits.get((span.process, span.wid))
        for w in span.waits:
            end = span.apply_time if w.end is None else w.end
            report.attributions.append(Attribution(
                process=span.process,
                wid=span.wid,
                dep=w.dep,
                start=w.start,
                end=end,
                necessary=necessary,
            ))

    for (process, _wid), span in released.items():
        chain = [span]
        seen = {span.wid}
        cur = span
        while len(chain) < MAX_CHAIN_LEN:
            dep = cur.released_by
            if dep is None:
                break
            # The releasing apply event is the local apply of the
            # dependency write; on the default apply_event key the
            # edge (process, seq) IS that write's id.
            dep_wid = WriteId(dep[0], dep[1])
            nxt = released.get((process, dep_wid))
            if nxt is None or dep_wid in seen:
                break
            chain.append(nxt)
            seen.add(dep_wid)
            cur = nxt
        report.chains.append(DelayChain(process=process,
                                        spans=tuple(chain)))
    # deterministic order: by delayed apply time, then process/wid
    report.chains.sort(
        key=lambda c: (c.head.apply_time, c.process,
                       c.head.wid.process, c.head.wid.seq)
    )
    report.attributions.sort(
        key=lambda a: (a.start, a.process, a.wid.process, a.wid.seq)
    )
    return report
