"""Message-lifecycle spans and the ``Obs`` handle threaded through the
simulator.

A write's update message goes through the paper's event vocabulary at
each receiving process ``p_k``::

    send_i(w) --> receipt_k(w) --> [buffer ...] --> apply_k(w)

A :class:`MessageSpan` follows one ``(process, wid)`` pair through that
lifecycle.  The interesting part is the *buffered* interval -- exactly
the write delay of Definition 3 -- which the span attributes to its
cause: each :class:`WaitInterval` carries the blocking ``(process,
seq)`` apply-event dependency reported by
:meth:`repro.core.base.Protocol.missing_deps` at the moment the message
was parked (or re-parked).  A message that waits on k missing
dependencies produces k consecutive wait intervals, each ending when
its dependency's apply fires locally (the scheduler wakeup).

``Obs`` is the single handle the substrate components share:

- ``obs.enabled`` gates every instrumentation call site, so a disabled
  run performs one attribute load + branch per hook and is
  trace-identical to an uninstrumented build
  (``tests/obs/test_gating.py``, ``benchmarks/test_bench_obs_overhead.py``);
- ``obs.registry`` is the :class:`~repro.obs.metrics.MetricsRegistry`;
- ``obs.sink`` receives span lifecycle callbacks -- :class:`NullSink`
  drops them, :class:`InMemorySink` materializes
  :class:`MessageSpan` objects that :class:`~repro.sim.result.RunResult`
  exposes and :mod:`repro.obs.export` renders as a Perfetto trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.model.operations import WriteId
from repro.obs.metrics import MetricsRegistry

#: A blocking dependency: the ``(process, seq)`` apply-event key of
#: :meth:`repro.core.base.Protocol.missing_deps`.  ``None`` = the
#: protocol cannot enumerate its wait predicate (legacy scheduler).
DepKey = Optional[Tuple[int, int]]


@dataclass
class WaitInterval:
    """One buffered stretch, attributed to the dependency that gated it."""

    start: float
    #: the blocking ``(process, seq)`` apply event, or None when the
    #: protocol cannot enumerate it (legacy re-scan scheduling).
    dep: DepKey = None
    end: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


@dataclass
class MessageSpan:
    """The lifecycle of one update message at one receiving process."""

    wid: WriteId
    sender: int
    process: int
    variable: Hashable
    receipt_time: float
    send_time: Optional[float] = None
    apply_time: Optional[float] = None
    discard_time: Optional[float] = None
    waits: List[WaitInterval] = field(default_factory=list)

    @property
    def buffered(self) -> bool:
        return bool(self.waits)

    @property
    def buffer_duration(self) -> float:
        """Total receipt->apply delay for buffered+applied messages."""
        if not self.waits or self.apply_time is None:
            return 0.0
        return self.apply_time - self.waits[0].start

    @property
    def released_by(self) -> DepKey:
        """The dependency whose apply finally released this message."""
        if not self.waits:
            return None
        return self.waits[-1].dep

    @property
    def transit_time(self) -> Optional[float]:
        if self.send_time is None:
            return None
        return self.receipt_time - self.send_time


class NullSink:
    """Default sink: drops everything.  Call sites are additionally
    gated on ``obs.enabled``, so these methods exist only for safety
    when a component is handed a bare sink directly."""

    records_spans = False

    def on_send(self, t: float, process: int, wid: WriteId,
                variable: Hashable) -> None:
        pass

    def on_receipt(self, t: float, process: int, wid: WriteId,
                   variable: Hashable, sender: int) -> None:
        pass

    def on_buffer(self, t: float, process: int, wid: WriteId,
                  dep: DepKey) -> None:
        pass

    def on_repark(self, t: float, process: int, wid: WriteId,
                  dep: DepKey) -> None:
        pass

    def on_apply(self, t: float, process: int, wid: WriteId) -> None:
        pass

    def on_discard(self, t: float, process: int, wid: WriteId) -> None:
        pass

    def on_read(self, t: float, process: int, variable: Hashable,
                value: Any) -> None:
        pass


class InMemorySink(NullSink):
    """Materializes spans for :class:`~repro.sim.result.RunResult` and
    the Perfetto exporter."""

    records_spans = True

    def __init__(self) -> None:
        #: send times by write id (recorded once, at the issuer).
        self.sends: Dict[WriteId, float] = {}
        #: spans in receipt order (the exporter's iteration order).
        self.spans: List[MessageSpan] = []
        self._open: Dict[Tuple[int, WriteId], MessageSpan] = {}

    # -- lifecycle callbacks ---------------------------------------------------

    def on_send(self, t, process, wid, variable):
        self.sends.setdefault(wid, t)

    def on_receipt(self, t, process, wid, variable, sender):
        key = (process, wid)
        if key in self._open:  # duplicate delivery: keep the first span
            return
        span = MessageSpan(
            wid=wid, sender=sender, process=process, variable=variable,
            receipt_time=t, send_time=self.sends.get(wid),
        )
        self._open[key] = span
        self.spans.append(span)

    def on_buffer(self, t, process, wid, dep):
        span = self._open.get((process, wid))
        if span is not None:
            span.waits.append(WaitInterval(start=t, dep=dep))

    def on_repark(self, t, process, wid, dep):
        span = self._open.get((process, wid))
        if span is not None and span.waits:
            span.waits[-1].end = t
            span.waits.append(WaitInterval(start=t, dep=dep))

    def on_apply(self, t, process, wid):
        span = self._open.get((process, wid))
        if span is not None:
            span.apply_time = t
            if span.waits and span.waits[-1].end is None:
                span.waits[-1].end = t

    def on_discard(self, t, process, wid):
        span = self._open.get((process, wid))
        if span is not None:
            span.discard_time = t
            if span.waits and span.waits[-1].end is None:
                span.waits[-1].end = t

    # -- queries ----------------------------------------------------------------

    def buffered_spans(self) -> List[MessageSpan]:
        return [s for s in self.spans if s.buffered]


class Obs:
    """The instrumentation handle shared by every substrate component.

    Hot paths must guard each hook with ``if obs.enabled:`` -- the
    contract that keeps disabled-observability runs inside the
    benchmarked overhead budget (see docs/observability.md).
    """

    __slots__ = ("enabled", "registry", "sink", "journal")

    def __init__(self, sink: Optional[NullSink] = None,
                 enabled: Optional[bool] = None,
                 journal: Optional["FlightRecorder"] = None) -> None:
        base = sink if sink is not None else NullSink()
        #: optional :class:`~repro.obs.journal.FlightRecorder`; when set,
        #: a tee sink records every lifecycle callback into the ring
        #: before forwarding to ``sink``.
        self.journal = journal
        if journal is not None:
            from repro.obs.journal import JournalSink

            self.sink = JournalSink(journal, base)
        else:
            self.sink = base
        self.enabled = bool(
            enabled if enabled is not None
            else (type(base) is not NullSink or journal is not None)
        )
        self.registry = MetricsRegistry()

    @classmethod
    def recording(cls, *, journal: bool = False,
                  journal_capacity: int = 4096) -> "Obs":
        """An enabled handle with an :class:`InMemorySink`; pass
        ``journal=True`` to also arm a flight recorder
        (:mod:`repro.obs.journal`)."""
        recorder = None
        if journal:
            from repro.obs.journal import FlightRecorder

            recorder = FlightRecorder(journal_capacity)
        return cls(InMemorySink(), journal=recorder)

    @property
    def spans(self) -> Optional[List[MessageSpan]]:
        """Recorded spans, or None when the sink keeps none."""
        if getattr(self.sink, "records_spans", False):
            return self.sink.spans
        return None


#: The shared disabled handle -- the default everywhere.  Never written
#: to (every write site is gated on ``enabled``), so sharing is safe.
NULL_OBS = Obs()
