"""Metrics registry: labeled counters, gauges, and histograms.

Zero-dependency, simulation-friendly instrumentation primitives.  The
design follows the usual production pattern (Prometheus-style labeled
series) scaled down to a single deterministic process:

- a **Counter** is a monotone event count (``applies``, ``parks``);
- a **Gauge** is a sampled level with a high-water mark
  (``sched.index_depth``, ``net.in_flight``);
- a **Histogram** records a full distribution (simulation runs are
  small enough to keep every observation, so percentile queries are
  exact rather than bucketed).

Series are keyed by ``(name, labels)`` where labels are keyword
arguments (``registry.counter("node.applies", process=3)``).  Handle
lookup builds a tuple key, so **hot paths should resolve their handles
once** (at node construction) and call ``inc``/``set``/``observe`` on
the cached object -- that is what :mod:`repro.sim.node` and friends do.

The registry snapshots to plain JSON (:meth:`MetricsRegistry.collect`,
:meth:`MetricsRegistry.to_json`) for ``repro-dsm run --metrics-out``
and the ``repro-dsm obs`` summarizer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A sampled level; tracks the high-water mark alongside the
    current value (queue depths are only interesting at their peak)."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, n=1) -> None:
        self.set(self.value + n)

    def dec(self, n=1) -> None:
        self.value -= n


class Histogram:
    """An exact distribution: every observation is retained.

    Simulation runs observe at most a few hundred thousand values, so
    exact retention is cheaper than getting bucket boundaries wrong.
    Percentiles are nearest-rank via
    :func:`repro.analysis.metrics.percentile`.
    """

    __slots__ = ("values", "total")

    def __init__(self) -> None:
        self.values: List[float] = []
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.values.append(value)
        self.total += value

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        from repro.analysis.metrics import percentile

        return percentile(sorted(self.values), q)


class MetricsRegistry:
    """Home of every labeled series produced by one run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- handle resolution (cache the result on hot paths) ---------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    # -- queries ---------------------------------------------------------------

    def series(self, name: str) -> Iterator[Tuple[Dict[str, Any], Any]]:
        """All ``(labels, instrument)`` pairs registered under ``name``."""
        for table in (self._counters, self._gauges, self._histograms):
            for (n, labels), inst in table.items():
                if n == name:
                    yield dict(labels), inst

    def total(self, name: str) -> float:
        """Sum of a counter/gauge series across all label combinations."""
        out = 0
        for _, inst in self.series(name):
            if isinstance(inst, (Counter, Gauge)):
                out += inst.value
        return out

    def value(self, name: str, **labels: Any) -> Optional[float]:
        """The value of one exact series, or None if never registered."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return None

    def names(self) -> List[str]:
        out = set()
        for table in (self._counters, self._gauges, self._histograms):
            for (name, _labels) in table:
                out.add(name)
        return sorted(out)

    # -- snapshots --------------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """A JSON-ready snapshot: ``{kind: {name: [series...]}}``."""
        counters: Dict[str, list] = {}
        for (name, labels), c in sorted(self._counters.items()):
            counters.setdefault(name, []).append(
                {"labels": dict(labels), "value": c.value}
            )
        gauges: Dict[str, list] = {}
        for (name, labels), g in sorted(self._gauges.items()):
            gauges.setdefault(name, []).append(
                {"labels": dict(labels), "value": g.value,
                 "high_water": g.high_water}
            )
        histograms: Dict[str, list] = {}
        for (name, labels), h in sorted(self._histograms.items()):
            histograms.setdefault(name, []).append({
                "labels": dict(labels),
                "count": h.count,
                "sum": h.total,
                "mean": h.mean,
                "p50": h.percentile(50),
                "p90": h.percentile(90),
                "p95": h.percentile(95),
                "p99": h.percentile(99),
                "p999": h.percentile(99.9),
                "max": max(h.values) if h.values else 0.0,
            })
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, **meta: Any) -> str:
        """Serialize the snapshot (+ caller metadata) as a JSON document."""
        doc = {"version": 1, **meta, "metrics": self.collect()}
        return json.dumps(doc, indent=2, sort_keys=True, default=str)
