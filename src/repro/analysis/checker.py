"""End-to-end run checkers: the paper's theorems as machine checks.

Given a :class:`~repro.sim.result.RunResult`, :func:`check_run`
verifies:

- **legality** (Definitions 1-2): the observed history is causally
  consistent;
- **safety** (Theorem 3): whenever ``w ->co w'``, every process applies
  ``w`` before ``w'``;
- **liveness** (Theorem 5): every write is applied at every process --
  for class-𝒫 protocols exactly; for writing-semantics variants the
  skipped/suppressed applies must balance the books;
- **delay necessity** (Theorem 4 / Definition 5): every write delay the
  run executed was *necessary*, i.e. at receipt time some write of the
  delayed write's ``->co``-causal past was still unapplied.  For OptP
  the unnecessary-delay list must be empty on every run; for ANBKH the
  non-empty lists are precisely the false-causality events of Figure 3;
- **characterization** (Theorems 1-2): if the run recorded protocol
  state (``record_state=True`` with a ``Write_co``-bearing protocol),
  the vectors' ``<`` relation must coincide exactly with ``->co`` on
  writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.vectorclock import batch_precedes_matrix
from repro.model.history import History
from repro.model.legality import LegalityReport, check_causal_consistency
from repro.model.operations import WriteId
from repro.sim.result import RunResult
from repro.sim.trace import EventKind, Trace


@dataclass(frozen=True)
class DelayAudit:
    """One write delay and whether it was necessary (Definition 3/5)."""

    process: int
    wid: WriteId
    receipt_seq: int
    necessary: bool
    #: the unapplied causal predecessor justifying the delay (if any)
    witness: Optional[WriteId] = None


@dataclass
class CheckReport:
    """Aggregated verdicts of :func:`check_run`."""

    protocol_name: str
    legality: LegalityReport
    safety_violations: List[str] = field(default_factory=list)
    liveness_violations: List[str] = field(default_factory=list)
    delay_audits: List[DelayAudit] = field(default_factory=list)
    #: None when vectors were not recorded in the trace
    characterization_ok: Optional[bool] = None
    characterization_errors: List[str] = field(default_factory=list)

    @property
    def unnecessary_delays(self) -> List[DelayAudit]:
        return [d for d in self.delay_audits if not d.necessary]

    @property
    def total_delays(self) -> int:
        return len(self.delay_audits)

    @property
    def ok(self) -> bool:
        """Safe + legal + live (+ characterized, when checked).

        Delay *optimality* is intentionally not part of ``ok``: ANBKH
        runs are correct-but-suboptimal.  Assert
        ``not report.unnecessary_delays`` separately where optimality
        is the claim under test (OptP, Theorem 4).
        """
        return (
            bool(self.legality)
            and not self.safety_violations
            and not self.liveness_violations
            and self.characterization_ok is not False
        )

    def summary(self) -> str:
        parts = [
            f"{self.protocol_name}:",
            "legal" if self.legality else "ILLEGAL",
            "safe" if not self.safety_violations else
            f"UNSAFE({len(self.safety_violations)})",
            "live" if not self.liveness_violations else
            f"NOT-LIVE({len(self.liveness_violations)})",
            f"delays={self.total_delays}",
            f"unnecessary={len(self.unnecessary_delays)}",
        ]
        if self.characterization_ok is not None:
            parts.append(
                "characterized" if self.characterization_ok else "MIS-CHARACTERIZED"
            )
        return " ".join(parts)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def check_safety(result: RunResult) -> List[str]:
    """Theorem 3: apply orders respect ``->co`` at every process.

    For writes applied at a process, the apply order must embed
    ``->co``; a write *skipped* at a process (WS variants) imposes
    nothing there.

    Vectorized: one ``->co`` matrix over the writes, then per-process
    apply-position arrays compared in bulk (the pairwise Python loop
    was the analysis hot path at benchmark scale -- see
    ``benchmarks/test_bench_micro.py::test_bench_q4_safety_checker``).
    """
    history = result.history
    trace = result.trace
    writes = list(history.writes())
    if not writes:
        return []
    co_matrix = history.causal_order.precedes_matrix(writes)
    pred_i, succ_j = np.nonzero(co_matrix)
    violations: List[str] = []
    for k in range(result.n_processes):
        pos = np.full(len(writes), np.inf)
        for idx, w in enumerate(writes):
            ev = trace.apply_event(k, w.wid)
            if ev is not None:
                pos[idx] = ev.seq
        bad = (pos[pred_i] > pos[succ_j]) & np.isfinite(pos[pred_i]) \
            & np.isfinite(pos[succ_j])
        for i, j in zip(pred_i[bad], succ_j[bad]):
            violations.append(
                f"p{k} applied {writes[j].wid} (seq {int(pos[j])}) before "
                f"its causal predecessor {writes[i].wid} "
                f"(seq {int(pos[i])})"
            )
    return violations


def check_liveness(result: RunResult) -> List[str]:
    """Theorem 5 for class 𝒫; bookkeeping balance for WS variants."""
    trace = result.trace
    violations = []
    wids = trace.writes_issued()
    if result.in_class_p:
        for wid in wids:
            for k in range(result.n_processes):
                if trace.apply_event(k, wid) is None:
                    violations.append(f"{wid} never applied at p{k}")
        return violations
    # Outside class 𝒫, every missing apply must be accounted for by a
    # skip (receiver-side WS), a suppression (sender-side WS), or a
    # non-replicated destination (partial replication).
    expected = len(wids) * (result.n_processes - 1)
    actual = result.remote_applies
    totals = result.stats_total
    skipped = totals.get("skipped", 0)
    suppressed = totals.get("suppressed", 0) * (result.n_processes - 1)
    unreplicated = totals.get("unreplicated", 0)
    if actual + skipped + suppressed + unreplicated != expected:
        violations.append(
            f"apply accounting broken: {actual} applies + {skipped} skips "
            f"+ {suppressed} suppressed-applies + {unreplicated} "
            f"unreplicated != {expected} expected"
        )
    return violations


def audit_delays(result: RunResult) -> List[DelayAudit]:
    """Definition 5: classify each write delay as necessary or not.

    A delay of ``w`` at ``p_k`` is *necessary* iff at the moment of
    receipt some write of ``w``'s ``->co``-causal past had not yet been
    applied at ``p_k`` -- i.e. the corresponding apply event is missing
    from ``E_k`` before the receipt (Definition 3 applied to
    ``X_co-safe``).
    """
    history = result.history
    co = history.causal_order
    trace = result.trace
    audits = []
    for ev in trace.of_kind(EventKind.BUFFER):
        w = history.write_by_id(ev.wid)
        witness = None
        for w2 in co.write_causal_past(w):
            applied = trace.apply_event(ev.process, w2.wid)
            if applied is None or applied.seq > ev.seq:
                witness = w2.wid
                break
        audits.append(
            DelayAudit(
                process=ev.process,
                wid=ev.wid,
                receipt_seq=ev.seq,
                necessary=witness is not None,
                witness=witness,
            )
        )
    return audits


def check_characterization(result: RunResult) -> Tuple[Optional[bool], List[str]]:
    """Theorems 1-2: ``Write_co`` characterizes ``->co`` on writes.

    Uses the ``write_co`` entries of WRITE-event state snapshots
    (populated when the cluster runs with ``record_state=True`` and the
    protocol exposes its vector).  Returns ``(None, [])`` when vectors
    are unavailable.
    """
    trace = result.trace
    vectors: Dict[WriteId, Tuple[int, ...]] = {}
    for ev in trace.of_kind(EventKind.WRITE):
        if ev.state and "write_co" in ev.state:
            vectors[ev.wid] = tuple(ev.state["write_co"])
    if not vectors:
        return None, []
    history = result.history
    co = history.causal_order
    writes = [w for w in history.writes() if w.wid in vectors]
    mat = batch_precedes_matrix([vectors[w.wid] for w in writes])
    errors = []
    for i, w1 in enumerate(writes):
        for j, w2 in enumerate(writes):
            if i == j:
                continue
            in_co = co.precedes(w1, w2)
            in_vc = bool(mat[i, j])
            if in_co != in_vc:
                errors.append(
                    f"{w1.wid} -> {w2.wid}: ->co={in_co} but "
                    f"Write_co<{'' if in_vc else '/'}= {vectors[w1.wid]} vs "
                    f"{vectors[w2.wid]}"
                )
    return (not errors), errors


# ---------------------------------------------------------------------------
# the one-stop check
# ---------------------------------------------------------------------------


def check_run(result: RunResult) -> CheckReport:
    """Run every checker; see the module docstring for what's covered."""
    legality = check_causal_consistency(result.history)
    char_ok, char_errors = check_characterization(result)
    return CheckReport(
        protocol_name=result.protocol_name,
        legality=legality,
        safety_violations=check_safety(result),
        liveness_violations=check_liveness(result),
        delay_audits=audit_delays(result),
        characterization_ok=char_ok,
        characterization_errors=char_errors,
    )


def assert_run_ok(result: RunResult, *, expect_optimal: bool = False) -> CheckReport:
    """Check and raise ``AssertionError`` with details on any failure.

    ``expect_optimal=True`` additionally requires zero unnecessary
    delays (what Theorem 4 promises for OptP on *every* run).
    """
    report = check_run(result)
    problems = []
    if not report.legality:
        problems.append(report.legality.summary())
    problems += report.safety_violations
    problems += report.liveness_violations
    if report.characterization_ok is False:
        problems += report.characterization_errors
    if expect_optimal and report.unnecessary_delays:
        problems += [
            f"unnecessary delay of {d.wid} at p{d.process}"
            for d in report.unnecessary_delays
        ]
    if problems:
        raise AssertionError(
            f"run check failed for {result.protocol_name}:\n  " +
            "\n  ".join(problems)
        )
    return report
