"""False-causality analysis (footnote 7; Tarafdar-Garg [15]).

A run contains a *false-causality opportunity* for a write pair
``(w, w')`` when ``send(w) -> send(w')`` (happened-before) holds but
``w ||co w'`` -- the situation where a happened-before-based protocol
like ANBKH *may* delay ``w'`` waiting for ``w`` although no cause-effect
relation exists.  This module counts those pairs per run and relates
them to the delays the protocols actually executed: the opportunities
are a property of the *workload + message schedule*, the unnecessary
delays are the share a given protocol converts into real waste.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.hb import HappenedBefore
from repro.model.operations import WriteId
from repro.sim.result import RunResult


@dataclass(frozen=True)
class FalseCausalityReport:
    """Per-run counts relating opportunities to realized waste."""

    #: ordered write pairs (w, w') with send(w) -> send(w') and w ||co w'
    opportunities: Tuple[Tuple[WriteId, WriteId], ...]
    #: ordered write pairs with a genuine ->co relation
    genuine_pairs: int
    #: total ordered send-hb pairs (genuine + false)
    hb_pairs: int

    @property
    def n_opportunities(self) -> int:
        return len(self.opportunities)

    @property
    def false_share(self) -> float:
        """Fraction of happened-before write pairs that are false."""
        if self.hb_pairs == 0:
            return 0.0
        return self.n_opportunities / self.hb_pairs


def analyze_false_causality(result: RunResult) -> FalseCausalityReport:
    """Count false-causality opportunities in a run.

    O(W^2) over the run's writes -- fine at benchmark scale (hundreds
    of writes); the hot part (reachability) is the shared bitset
    closure of :class:`HappenedBefore`.
    """
    history = result.history
    co = history.causal_order
    hb = HappenedBefore(result.trace)
    writes = list(history.writes())
    opportunities: List[Tuple[WriteId, WriteId]] = []
    genuine = 0
    hb_pairs = 0
    for w1 in writes:
        for w2 in writes:
            if w1.wid == w2.wid:
                continue
            if not hb.sends_hb(w1.wid, w2.wid):
                continue
            hb_pairs += 1
            if co.precedes(w1, w2):
                genuine += 1
            else:
                # send-hb without ->co: by definition w1 ||co w2 here
                # (->co against the hb direction is impossible: the
                # paper's protocols only ever create ->co along message
                # flow, and ->co on writes implies send-hb).
                opportunities.append((w1.wid, w2.wid))
    return FalseCausalityReport(
        opportunities=tuple(opportunities),
        genuine_pairs=genuine,
        hb_pairs=hb_pairs,
    )
