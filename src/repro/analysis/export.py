"""Export sweep results and run metrics to CSV / JSON.

Downstream users plot the benchmark sweeps with their own tooling; the
exporters keep the column set stable and documented so the harness's
output is consumable without reading its source.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict
from typing import Sequence

from repro.analysis.metrics import RunMetrics
from repro.paperfigs.comparison import SweepRow

SWEEP_COLUMNS = [
    "axis",
    "value",
    "protocol",
    "mean_delays",
    "mean_unnecessary",
    "mean_skipped",
    "mean_suppressed",
    "mean_messages",
    "seeds",
]

METRIC_COLUMNS = [
    "protocol",
    "n_processes",
    "writes",
    "reads",
    "delays",
    "unnecessary_delays",
    "messages",
    "bytes_estimate",
    "remote_applies",
    "discards",
    "skipped",
    "suppressed",
    "duration",
]


def sweep_to_csv(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as CSV text (header + one line per row)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=SWEEP_COLUMNS)
    writer.writeheader()
    for row in rows:
        writer.writerow({col: getattr(row, col) for col in SWEEP_COLUMNS})
    return buf.getvalue()


def sweep_to_json(rows: Sequence[SweepRow]) -> str:
    """Serialize sweep rows as a JSON array of objects."""
    return json.dumps([asdict(row) for row in rows], indent=2)


def metrics_to_csv(metrics: Sequence[RunMetrics]) -> str:
    """Serialize run metrics as CSV (delay-duration stats flattened)."""
    buf = io.StringIO()
    fieldnames = METRIC_COLUMNS + [
        "delay_mean", "delay_p50", "delay_p95", "delay_p99", "delay_max",
    ]
    writer = csv.DictWriter(buf, fieldnames=fieldnames)
    writer.writeheader()
    for m in metrics:
        row = {col: getattr(m, col) for col in METRIC_COLUMNS}
        row.update(
            delay_mean=m.delay_stats.mean,
            delay_p50=m.delay_stats.p50,
            delay_p95=m.delay_stats.p95,
            delay_p99=m.delay_stats.p99,
            delay_max=m.delay_stats.max,
        )
        writer.writerow(row)
    return buf.getvalue()


def metrics_to_json(metrics: Sequence[RunMetrics]) -> str:
    return json.dumps([asdict(m) for m in metrics], indent=2)
