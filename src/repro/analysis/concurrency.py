"""Concurrency structure of a history's writes.

The delay-gap shapes in EXPERIMENTS.md keep saying "the gap grows with
concurrency"; this module makes concurrency a *measured* quantity:

- :func:`concurrent_write_pairs` -- how many unordered write pairs the
  history contains (the raw pool of potential false causality);
- :func:`max_concurrent_writes` -- the *width* of the ``->co`` poset on
  writes: the largest antichain, i.e. the most writes that are mutually
  concurrent.  By Dilworth's theorem this equals the minimum number of
  ``->co``-chains covering the writes, computed via König/Fulkerson:
  ``width = W - |maximum matching|`` in the bipartite comparability
  graph of the transitive closure;
- :func:`chain_decomposition_depth` -- the poset's *height* (longest
  ``->co`` chain + 1), the dual measure.

``benchmarks/test_bench_delay_comparison.py``'s shapes can be read
against these: more width = more pairs ANBKH can get wrong.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.model.history import History
from repro.model.operations import Write, WriteId


def concurrent_write_pairs(history: History) -> int:
    """Number of unordered pairs ``{w, w'}`` with ``w ||co w'``."""
    writes = list(history.writes())
    if len(writes) < 2:
        return 0
    matrix = history.causal_order.precedes_matrix(writes)
    k = len(writes)
    ordered = int(matrix.sum())  # each ordered pair counted once (i->j)
    total_pairs = k * (k - 1) // 2
    return total_pairs - ordered


def max_concurrent_writes(history: History) -> int:
    """Width of the write poset: the largest set of mutually
    ``->co``-concurrent writes (Dilworth via bipartite matching)."""
    writes = list(history.writes())
    w = len(writes)
    if w <= 1:
        return w
    matrix = history.causal_order.precedes_matrix(writes)
    # bipartite graph: left copy L_i -- right copy R_j iff w_i ->co w_j
    g = nx.Graph()
    left = [("L", i) for i in range(w)]
    right = [("R", j) for j in range(w)]
    g.add_nodes_from(left, bipartite=0)
    g.add_nodes_from(right, bipartite=1)
    for i in range(w):
        for j in range(w):
            if matrix[i, j]:
                g.add_edge(("L", i), ("R", j))
    matching = nx.bipartite.maximum_matching(g, top_nodes=left)
    matched_edges = sum(1 for node in matching if node[0] == "L")
    # min chain cover = W - |matching|; Dilworth: width = min chain cover
    return w - matched_edges


def chain_decomposition_depth(history: History) -> int:
    """Height of the write poset: writes on the longest ``->co`` chain."""
    from repro.model.causality_graph import WriteCausalityGraph

    writes = list(history.writes())
    if not writes:
        return 0
    g = WriteCausalityGraph.from_history(history)
    return g.longest_chain_length() + 1


def concurrency_profile(history: History) -> Tuple[int, int, int]:
    """``(concurrent pairs, width, height)`` in one call."""
    return (
        concurrent_write_pairs(history),
        max_concurrent_writes(history),
        chain_decomposition_depth(history),
    )
