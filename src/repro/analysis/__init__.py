"""Trace analyzers: the paper's definitions and theorems as checks.

- :mod:`repro.analysis.hb` -- Lamport happened-before over traces;
- :mod:`repro.analysis.enabling` -- ``X_co-safe`` / ``X_ANBKH``
  enabling sets (Tables 1-2) and non-optimality witnesses;
- :mod:`repro.analysis.checker` -- legality, safety, liveness, delay
  necessity and ``Write_co`` characterization checks for whole runs;
- :mod:`repro.analysis.metrics` -- headline metrics and comparison
  tables for the benchmark harness.
"""

from repro.analysis.checker import (
    CheckReport,
    DelayAudit,
    assert_run_ok,
    audit_delays,
    check_characterization,
    check_liveness,
    check_run,
    check_safety,
)
from repro.analysis.enabling import (
    EnablingRow,
    enabling_table,
    render_table,
    superset_rows,
    x_anbkh,
    x_co_safe,
)
from repro.analysis.concurrency import (
    chain_decomposition_depth,
    concurrency_profile,
    concurrent_write_pairs,
    max_concurrent_writes,
)
from repro.analysis.cuts import (
    Cut,
    applied_writes_at,
    closure_violations,
    cut_at_times,
    full_cut,
    is_consistent,
    make_consistent,
    random_consistent_cut,
)
from repro.analysis.falsecausality import (
    FalseCausalityReport,
    analyze_false_causality,
)
from repro.analysis.hb import HappenedBefore
from repro.analysis.sessions import SessionReport, check_sessions
from repro.analysis.staleness import VisibilityReport, visibility_report
from repro.analysis.metrics import (
    DelayStats,
    RunMetrics,
    aggregate_delays,
    comparison_table,
    percentile,
)

__all__ = [
    "CheckReport",
    "Cut",
    "DelayAudit",
    "DelayStats",
    "EnablingRow",
    "FalseCausalityReport",
    "HappenedBefore",
    "RunMetrics",
    "SessionReport",
    "VisibilityReport",
    "aggregate_delays",
    "analyze_false_causality",
    "applied_writes_at",
    "assert_run_ok",
    "audit_delays",
    "chain_decomposition_depth",
    "check_characterization",
    "check_liveness",
    "check_run",
    "check_safety",
    "check_sessions",
    "closure_violations",
    "comparison_table",
    "concurrency_profile",
    "concurrent_write_pairs",
    "cut_at_times",
    "max_concurrent_writes",
    "enabling_table",
    "full_cut",
    "is_consistent",
    "make_consistent",
    "percentile",
    "random_consistent_cut",
    "render_table",
    "superset_rows",
    "visibility_report",
    "x_anbkh",
    "x_co_safe",
]
