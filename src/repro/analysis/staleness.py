"""Visibility latency (staleness) metrics.

Write delays (Definition 3) count *buffering decisions*; visibility
latency measures what applications feel: the time from a write's issue
to its apply at each other replica.  It decomposes as::

    visibility = transit (network)  +  buffering (protocol)

so comparing protocols on identical message schedules isolates the
protocol's buffering contribution -- OptP's optimality theorem is
precisely the statement that its buffering term is the minimum any safe
protocol can achieve.

For propagation-restructuring protocols (token rounds, gossip) the
transit term itself changes; the visibility distribution is then the
honest end-to-end comparison (`benchmarks/test_bench_staleness.py`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import DelayStats
from repro.sim.result import RunResult
from repro.sim.trace import EventKind


@dataclass(frozen=True)
class VisibilityReport:
    """Distributional view of write visibility for one run."""

    #: issue -> apply latency over all (write, remote replica) pairs
    visibility: DelayStats
    #: receipt -> apply (buffering) component, same pairs
    buffering: DelayStats
    #: issue -> receipt (transit) component, same pairs
    transit: DelayStats
    #: (write, replica) pairs never applied (WS skips / partial repl.)
    never_applied: int

    def summary(self) -> str:
        return (
            f"visibility mean={self.visibility.mean:.3f} "
            f"p95={self.visibility.p95:.3f} "
            f"(transit {self.transit.mean:.3f} + "
            f"buffering {self.buffering.mean:.3f}); "
            f"never applied: {self.never_applied}"
        )


def visibility_report(result: RunResult) -> VisibilityReport:
    """Compute the visibility decomposition from a run trace.

    Pairs where the write was propagated without a traced RECEIPT
    (token batches arrive inside control messages) contribute to
    ``visibility`` but not to the transit/buffering split.
    """
    trace = result.trace
    issue_time: Dict = {}
    for ev in trace.of_kind(EventKind.WRITE):
        issue_time[ev.wid] = ev.time

    vis: List[float] = []
    buf: List[float] = []
    trans: List[float] = []
    never = 0
    for wid, issued in issue_time.items():
        for k in range(result.n_processes):
            if k == wid.process:
                continue
            applied = trace.apply_event(k, wid)
            if applied is None:
                never += 1
                continue
            vis.append(applied.time - issued)
            receipt = trace.receipt_event(k, wid)
            if receipt is not None:
                trans.append(receipt.time - issued)
                buf.append(applied.time - receipt.time)
    return VisibilityReport(
        visibility=DelayStats.of(vis),
        buffering=DelayStats.of(buf),
        transit=DelayStats.of(trans),
        never_applied=never,
    )
