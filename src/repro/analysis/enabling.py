"""Enabling sets: :math:`\\mathcal{X}_{co\\text{-}safe}` and
:math:`\\mathcal{X}_{ANBKH}` (Sections 3.4-3.6, Tables 1-2).

For an apply event ``apply_k(w)``:

- **Definition 4** gives the minimal set any safe protocol must wait
  for::

      X_co-safe(apply_k(w)) = { apply_k(w') : w' in causal past of w }

  a pure function of the *history* -- :func:`x_co_safe`.

- **Section 3.6** characterizes ANBKH's (larger) set::

      X_ANBKH(apply_k(w)) = { apply_k(w') : send(w') -> send(w) }

  a function of the *run* (its happened-before relation) --
  :func:`x_anbkh`.

:func:`enabling_table` renders either family for all apply events the
way the paper's Tables 1 and 2 do; :func:`superset_rows` lists the rows
where ANBKH strictly exceeds the safe minimum (the non-optimality
witnesses of Section 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.hb import HappenedBefore
from repro.model.history import History
from repro.model.operations import Write, WriteId
from repro.sim.trace import Trace


def x_co_safe(history: History, k: int, wid: WriteId) -> FrozenSet[WriteId]:
    """:math:`\\mathcal{X}_{co\\text{-}safe}(apply_k(w))` as WriteIds.

    The process index ``k`` does not change the *set of writes* (only
    at which replica the applies happen), but it is kept in the
    signature to mirror Definition 4 -- and because Tables 1-2 list one
    row per ``(k, w)`` pair.
    """
    if not 0 <= k < history.n_processes:
        raise ValueError(f"process {k} out of range")
    w = history.write_by_id(wid)
    co = history.causal_order
    return frozenset(w2.wid for w2 in co.write_causal_past(w))


def x_anbkh(trace: Trace, history: History, k: int, wid: WriteId) -> FrozenSet[WriteId]:
    """:math:`\\mathcal{X}_{ANBKH}(apply_k(w))` for the given run."""
    hb = HappenedBefore(trace)
    return x_anbkh_with(hb, history, k, wid)


def x_anbkh_with(
    hb: HappenedBefore, history: History, k: int, wid: WriteId
) -> FrozenSet[WriteId]:
    """Like :func:`x_anbkh` but reusing a prebuilt
    :class:`HappenedBefore` (Tables iterate over many events)."""
    if not 0 <= k < history.n_processes:
        raise ValueError(f"process {k} out of range")
    out = set()
    for w2 in history.writes():
        if w2.wid != wid and hb.sends_hb(w2.wid, wid):
            out.add(w2.wid)
    return frozenset(out)


@dataclass(frozen=True)
class EnablingRow:
    """One row of a Table-1/Table-2 style enabling table."""

    process: int
    wid: WriteId
    enabling: FrozenSet[WriteId]

    def render(self, label: Callable[[WriteId], str]) -> str:
        items = ", ".join(
            f"apply_{self.process + 1}({label(w)})"
            for w in sorted(self.enabling)
        )
        body = "{" + items + "}" if items else "∅"
        return f"apply_{self.process + 1}({label(self.wid)}): {body}"


def enabling_table(
    history: History,
    *,
    trace: Optional[Trace] = None,
    family: str = "co-safe",
) -> List[EnablingRow]:
    """All rows ``(k, w)`` of the requested enabling-set family.

    ``family="co-safe"`` needs only the history (Table 1);
    ``family="anbkh"`` additionally needs the run trace (Table 2).
    Rows are ordered by write (in WriteId order) then process, matching
    the paper's table layout.
    """
    if family not in ("co-safe", "anbkh"):
        raise ValueError(f"unknown family {family!r}")
    hb = None
    if family == "anbkh":
        if trace is None:
            raise ValueError("family='anbkh' requires the run trace")
        hb = HappenedBefore(trace)
    rows = []
    for w in sorted(history.writes(), key=lambda w: w.wid):
        for k in range(history.n_processes):
            if family == "co-safe":
                enabling = x_co_safe(history, k, w.wid)
            else:
                enabling = x_anbkh_with(hb, history, k, w.wid)
            rows.append(EnablingRow(process=k, wid=w.wid, enabling=enabling))
    return rows


def superset_rows(
    history: History, trace: Trace
) -> List[Tuple[EnablingRow, FrozenSet[WriteId]]]:
    """Rows where ANBKH's enabling set strictly exceeds the safe
    minimum, paired with the excess writes -- the paper's witnesses
    that ANBKH is not write-delay optimal."""
    safe = {
        (r.process, r.wid): r.enabling
        for r in enabling_table(history, family="co-safe")
    }
    out = []
    for row in enabling_table(history, trace=trace, family="anbkh"):
        minimal = safe[(row.process, row.wid)]
        if row.enabling > minimal:
            out.append((row, row.enabling - minimal))
    return out


def render_table(
    rows: List[EnablingRow],
    history: History,
    *,
    title: str = "",
) -> str:
    """Pretty-print rows the way the paper's tables read, labelling
    writes ``w1(x1)a`` style from the history."""

    def label(wid: WriteId) -> str:
        w = history.write_by_id(wid)
        return f"w{w.process + 1}({w.variable}){w.value}"

    lines = [title] if title else []
    lines += [row.render(label) for row in rows]
    return "\n".join(lines)
