"""Consistent cuts of a run and the causal-closure property.

A *cut* of a distributed computation assigns each process a prefix of
its event sequence ``E_i``; it is *consistent* when it is left-closed
under the happened-before relation -- operationally: no receipt without
its send (Mattern).  Consistent cuts are the "instants" at which global
state is meaningful.

The payoff for this repository is the **causal-closure corollary** of
safety (Theorem 3): at *every* consistent cut of a safe protocol's run,
the set of writes applied at each process is left-closed under ``->co``
-- you can stop the world at any consistent instant and no replica has
ever applied a write whose causal predecessors it lacks.  (For the
writing-semantics variants the same holds with skipped writes counted
as applied.)  ``tests/analysis/test_cuts.py`` verifies it over random
cuts of random runs; ANBKH satisfies it too (it is safe), which is a
useful reminder that optimality, not safety, is what separates the
protocols.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.model.history import History
from repro.model.operations import WriteId
from repro.sim.trace import EventKind, Trace, TraceEvent


@dataclass(frozen=True)
class Cut:
    """A frontier: ``frontier[i]`` = number of ``E_i`` events included."""

    frontier: Tuple[int, ...]

    def includes(self, trace: Trace, event: TraceEvent) -> bool:
        evs = trace.process_events(event.process)
        idx = evs.index(event)
        return idx < self.frontier[event.process]

    def events(self, trace: Trace) -> List[TraceEvent]:
        out = []
        for p, count in enumerate(self.frontier):
            out.extend(trace.process_events(p)[:count])
        return out


def full_cut(trace: Trace) -> Cut:
    """The cut containing every event (always consistent at quiescence)."""
    return Cut(tuple(len(trace.process_events(p))
                     for p in range(trace.n_processes)))


def cut_at_times(trace: Trace, times: List[float]) -> Cut:
    """The frontier of events with ``time <= times[p]`` per process.

    With skewed per-process times the result may be inconsistent --
    repair it with :func:`make_consistent`.
    """
    if len(times) != trace.n_processes:
        raise ValueError("need one time per process")
    frontier = []
    for p, t in enumerate(times):
        evs = trace.process_events(p)
        count = 0
        for ev in evs:
            if ev.time <= t:
                count += 1
            else:
                break
        frontier.append(count)
    return Cut(tuple(frontier))


def is_consistent(trace: Trace, cut: Cut) -> bool:
    """No receipt (or remote apply) without its send in the cut."""
    send_positions = _send_positions(trace)
    for p, count in enumerate(cut.frontier):
        for ev in trace.process_events(p)[:count]:
            if ev.kind is EventKind.RECEIPT and ev.wid in send_positions:
                sp, sidx = send_positions[ev.wid]
                if sidx >= cut.frontier[sp]:
                    return False
    return True


def make_consistent(trace: Trace, cut: Cut) -> Cut:
    """The maximal consistent cut below ``cut`` (iterative shrinking)."""
    send_positions = _send_positions(trace)
    frontier = list(cut.frontier)
    changed = True
    while changed:
        changed = False
        for p in range(trace.n_processes):
            evs = trace.process_events(p)
            for idx in range(frontier[p]):
                ev = evs[idx]
                if ev.kind is EventKind.RECEIPT and ev.wid in send_positions:
                    sp, sidx = send_positions[ev.wid]
                    if sidx >= frontier[sp]:
                        frontier[p] = idx  # drop this receipt (and after)
                        changed = True
                        break
    return Cut(tuple(frontier))


def applied_writes_at(trace: Trace, cut: Cut, process: int) -> FrozenSet[WriteId]:
    """Writes applied at ``process`` within the cut (local WRITE applies
    included; skipped writes are not -- see :func:`closure_violations`
    for the skip-aware closure check)."""
    out = set()
    for ev in trace.process_events(process)[: cut.frontier[process]]:
        if ev.kind is EventKind.APPLY or (
            ev.kind is EventKind.WRITE
            and trace.apply_event(process, ev.wid) is ev
        ):
            out.add(ev.wid)
    return frozenset(out)


def closure_violations(
    trace: Trace,
    history: History,
    cut: Cut,
    *,
    count_skipped: bool = True,
) -> List[str]:
    """Causal-closure check at a cut.

    For each process and each applied write ``w``, every write in
    ``w``'s ``->co``-causal past must be applied there too (or, with
    ``count_skipped``, discarded/skipped -- approximated by "discarded
    within the cut" for WS runs).  Returns human-readable violations.
    """
    co = history.causal_order
    violations = []
    for p in range(trace.n_processes):
        applied = applied_writes_at(trace, cut, p)
        covered: Set[WriteId] = set(applied)
        if count_skipped:
            for ev in trace.process_events(p)[: cut.frontier[p]]:
                if ev.kind is EventKind.DISCARD:
                    covered.add(ev.wid)
        for wid in applied:
            if not history.has_write(wid):
                continue
            w = history.write_by_id(wid)
            for w2 in co.write_causal_past(w):
                if w2.wid not in covered:
                    # WS skip bookkeeping may lack the DISCARD if the
                    # stale message is still in flight at the cut; only
                    # class-P runs make this an unconditional violation.
                    violations.append(
                        f"p{p}: applied {wid} but its causal predecessor "
                        f"{w2.wid} is neither applied nor skipped in the cut"
                    )
    return violations


def random_consistent_cut(trace: Trace, rng: random.Random) -> Cut:
    """Sample a consistent cut: random per-process frontier, repaired."""
    frontier = tuple(
        rng.randint(0, len(trace.process_events(p)))
        for p in range(trace.n_processes)
    )
    return make_consistent(trace, Cut(frontier))


def _send_positions(trace: Trace) -> Dict[WriteId, Tuple[int, int]]:
    """wid -> (process, index in E_process) of its SEND event."""
    out: Dict[WriteId, Tuple[int, int]] = {}
    for p in range(trace.n_processes):
        for idx, ev in enumerate(trace.process_events(p)):
            if ev.kind is EventKind.SEND and ev.wid is not None:
                out[ev.wid] = (p, idx)
    return out
