"""Run metrics and cross-protocol comparison tables.

The paper's comparison criterion is the *number of write delays*
(Section 3.5); the benchmark harness reports it alongside the
supporting quantities that explain it: delay durations, unnecessary
(false-causality) delays, traffic and metadata overhead, and the
writing-semantics loss counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.checker import CheckReport, check_run
from repro.sim.result import RunResult


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (0 <= q <= 100)."""
    if not sorted_values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    idx = max(0, math.ceil(q / 100 * len(sorted_values)) - 1)
    return sorted_values[idx]


@dataclass(frozen=True)
class DelayStats:
    """Distributional summary of write-delay durations.

    Quantiles are exact nearest-rank (:func:`percentile`), matching
    numpy's ``inverted_cdf`` method -- pinned by the hypothesis suite
    in ``tests/obs/test_quantiles.py``.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    p999: float
    max: float

    @classmethod
    def of(cls, durations: Iterable[float]) -> "DelayStats":
        vals = sorted(durations)
        if not vals:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p95=0.0,
                       p99=0.0, p999=0.0, max=0.0)
        return cls(
            count=len(vals),
            mean=sum(vals) / len(vals),
            p50=percentile(vals, 50),
            p90=percentile(vals, 90),
            p95=percentile(vals, 95),
            p99=percentile(vals, 99),
            p999=percentile(vals, 99.9),
            max=vals[-1],
        )


@dataclass(frozen=True)
class RunMetrics:
    """All headline numbers for one run."""

    protocol: str
    n_processes: int
    writes: int
    reads: int
    delays: int
    unnecessary_delays: int
    delay_stats: DelayStats
    messages: int
    bytes_estimate: int
    remote_applies: int
    discards: int
    skipped: int
    suppressed: int
    duration: float

    @classmethod
    def of(cls, result: RunResult, report: Optional[CheckReport] = None) -> "RunMetrics":
        if report is None:
            report = check_run(result)
        from repro.sim.trace import EventKind

        reads = sum(1 for _ in result.trace.of_kind(EventKind.RETURN))
        totals = result.stats_total
        return cls(
            protocol=result.protocol_name,
            n_processes=result.n_processes,
            writes=result.writes_issued,
            reads=reads,
            delays=report.total_delays,
            unnecessary_delays=len(report.unnecessary_delays),
            delay_stats=DelayStats.of(result.delay_durations()),
            messages=result.messages_sent,
            bytes_estimate=result.bytes_estimate,
            remote_applies=result.remote_applies,
            discards=result.discards,
            skipped=totals.get("skipped", 0),
            suppressed=totals.get("suppressed", 0),
            duration=result.duration,
        )


_COLUMNS = [
    ("protocol", "{:<14}"),
    ("delays", "{:>7}"),
    ("unnec", "{:>6}"),
    ("mean-dur", "{:>9}"),
    ("p95-dur", "{:>8}"),
    ("msgs", "{:>6}"),
    ("kbytes", "{:>7}"),
    ("B/msg", "{:>7}"),
    ("skip", "{:>5}"),
    ("suppr", "{:>6}"),
]


def comparison_table(metrics: Sequence[RunMetrics], *, title: str = "") -> str:
    """A fixed-width text table comparing runs (one row per protocol)."""
    lines = []
    if title:
        lines.append(title)
    header = " ".join(fmt.format(name) for name, fmt in _COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    for m in metrics:
        row = [
            m.protocol,
            m.delays,
            m.unnecessary_delays,
            f"{m.delay_stats.mean:.3f}",
            f"{m.delay_stats.p95:.3f}",
            m.messages,
            f"{m.bytes_estimate / 1024:.1f}",
            f"{m.bytes_estimate / m.messages:.1f}" if m.messages else "-",
            m.skipped,
            m.suppressed,
        ]
        lines.append(
            " ".join(fmt.format(val) for (_, fmt), val in zip(_COLUMNS, row))
        )
    return "\n".join(lines)


def aggregate_delays(metrics: Sequence[RunMetrics]) -> Dict[str, float]:
    """Mean delays / unnecessary-delays per protocol over repeated runs."""
    by_protocol: Dict[str, List[RunMetrics]] = {}
    for m in metrics:
        by_protocol.setdefault(m.protocol, []).append(m)
    out = {}
    for proto, ms in by_protocol.items():
        out[proto] = sum(m.delays for m in ms) / len(ms)
        out[f"{proto}/unnecessary"] = sum(
            m.unnecessary_delays for m in ms
        ) / len(ms)
    return out
