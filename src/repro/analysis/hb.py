"""Lamport's happened-before relation over a run trace (Section 3.1).

``e -> e'`` iff (i) ``e <_i e'`` at some process, (ii) ``e`` is the
send of a message and ``e'`` its receipt, or (iii) transitivity.

The analyzers need this for exactly one job: computing
:math:`\\mathcal{X}_{ANBKH}` -- ANBKH's enabling sets quantify over
``send(w') -> send(w)`` (Section 3.6), which is a statement about the
*run*, not the history.  The builder therefore indexes SEND and RECEIPT
events by :class:`WriteId` and answers reachability with the same
bitset-over-condensation technique as :class:`repro.model.history.CausalOrder`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.model.operations import WriteId
from repro.sim.trace import EventKind, Trace, TraceEvent


class HappenedBefore:
    """Reachability structure for ``->`` over a trace's events."""

    def __init__(self, trace: Trace):
        self._trace = trace
        g = nx.DiGraph()
        for ev in trace.events:
            g.add_node(ev.seq)
        # (i) process order: consecutive events at each process
        for p in range(trace.n_processes):
            evs = trace.process_events(p)
            for a, b in zip(evs, evs[1:]):
                g.add_edge(a.seq, b.seq)
        # (ii) message edges: send(w) -> each receipt(w).  The issuer's
        # WRITE event immediately precedes its SEND at the same process,
        # so process order covers the local side.
        sends: Dict[WriteId, TraceEvent] = {}
        for ev in trace.of_kind(EventKind.SEND):
            sends[ev.wid] = ev
        for ev in trace.of_kind(EventKind.RECEIPT):
            send = sends.get(ev.wid)
            if send is not None:
                g.add_edge(send.seq, ev.seq)
        self._graph = g
        # trace events are acyclic by construction (edges always point
        # to later seq numbers), so plain DAG closure suffices.
        order = list(nx.topological_sort(g))
        desc: Dict[int, int] = {}
        for node in reversed(order):
            mask = 0
            for succ in g.successors(node):
                mask |= desc[succ] | (1 << succ)
            desc[node] = mask
        self._desc = desc

    def hb(self, e1: TraceEvent, e2: TraceEvent) -> bool:
        """``e1 -> e2``?"""
        return bool(self._desc[e1.seq] & (1 << e2.seq))

    def concurrent(self, e1: TraceEvent, e2: TraceEvent) -> bool:
        """``e1 || e2`` w.r.t. ``->``."""
        if e1.seq == e2.seq:
            return False
        return not self.hb(e1, e2) and not self.hb(e2, e1)

    def send_event(self, wid: WriteId) -> Optional[TraceEvent]:
        """The SEND event of ``wid``'s message (its WRITE event for
        protocols that never broadcast, e.g. token batching)."""
        for ev in self._trace.of_kind(EventKind.SEND):
            if ev.wid == wid:
                return ev
        for ev in self._trace.of_kind(EventKind.WRITE):
            if ev.wid == wid:
                return ev
        return None

    def sends_hb(self, w1: WriteId, w2: WriteId) -> bool:
        """``send(w1) -> send(w2)``: the relation ANBKH's enabling sets
        quantify over."""
        s1, s2 = self.send_event(w1), self.send_event(w2)
        if s1 is None or s2 is None:
            raise KeyError(f"missing send event for {w1} or {w2}")
        return self.hb(s1, s2)
