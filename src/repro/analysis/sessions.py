"""Session guarantees checked on run histories.

Causal consistency is folklore-equivalent to the conjunction of the four
session guarantees of Terry et al. (PDIS 1994) plus eventual visibility;
this module checks each guarantee *independently* on an observed
history, which makes failures diagnosable (a protocol bug usually
breaks one specific guarantee first) and documents precisely what the
DSM gives application programmers:

- **Read Your Writes (RYW)**: a read never returns a value *causally
  older* than a write the same process previously issued to that
  variable (it may return a ``->co``-concurrent write -- under causal
  memory a concurrent remote write can legitimately overwrite yours);
- **Monotonic Reads (MR)**: successive reads of a variable by one
  process never go causally backwards;
- **Monotonic Writes (MW)**: writes by one process are ordered (w.r.t.
  ``->co``) for everyone -- per-process writes are never reordered;
- **Writes Follow Reads (WFR)**: a write issued after reading a value
  is causally ordered after that value's write, for everyone.

All four are evaluated against the history's ``->co`` (so they hold or
fail *globally*, not just at one replica).  Every protocol in this
repository satisfies all four on every run -- enforced by
``tests/analysis/test_sessions.py`` including the hypothesis suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.model.history import History
from repro.model.operations import Read, Write


@dataclass(frozen=True)
class SessionReport:
    """Violations per guarantee (all empty = fully causal session
    semantics)."""

    ryw: List[str] = field(default_factory=list)
    monotonic_reads: List[str] = field(default_factory=list)
    monotonic_writes: List[str] = field(default_factory=list)
    wfr: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.ryw or self.monotonic_reads
                    or self.monotonic_writes or self.wfr)

    def summary(self) -> str:
        if self.ok:
            return "all session guarantees hold (RYW, MR, MW, WFR)"
        parts = []
        for name, items in [("RYW", self.ryw), ("MR", self.monotonic_reads),
                            ("MW", self.monotonic_writes), ("WFR", self.wfr)]:
            if items:
                parts.append(f"{name}: {len(items)} violation(s)")
        return "; ".join(parts)


def check_sessions(history: History) -> SessionReport:
    """Evaluate the four session guarantees on a history."""
    co = history.causal_order
    ryw: List[str] = []
    mr: List[str] = []
    mw: List[str] = []
    wfr: List[str] = []

    for i in range(history.n_processes):
        ops = history.local(i).operations
        # RYW: after my own write w(x), a read of x must never return a
        # write causally OLDER than w (concurrent is fine: a concurrent
        # remote write may have overwritten mine).
        for a_idx, a in enumerate(ops):
            if not isinstance(a, Write):
                continue
            for b in ops[a_idx + 1:]:
                if isinstance(b, Read) and b.variable == a.variable:
                    if b.read_from is None:
                        ryw.append(f"p{i}: {b} returned BOTTOM after own {a}")
                        continue
                    writer = history.write_by_id(b.read_from)
                    if writer.wid != a.wid and co.precedes(writer, a):
                        ryw.append(
                            f"p{i}: {b} returned {writer.wid}, causally "
                            f"older than own {a}"
                        )
        # MR: successive reads of x never go causally backwards.
        for a_idx, a in enumerate(ops):
            if not isinstance(a, Read) or a.read_from is None:
                continue
            wa = history.write_by_id(a.read_from)
            for b in ops[a_idx + 1:]:
                if (isinstance(b, Read) and b.variable == a.variable):
                    if b.read_from is None:
                        mr.append(f"p{i}: {b} regressed to BOTTOM after {a}")
                        continue
                    wb = history.write_by_id(b.read_from)
                    if wb.wid != wa.wid and co.precedes(wb, wa):
                        mr.append(
                            f"p{i}: {b} read {wb.wid}, causally older than "
                            f"{wa.wid} read earlier"
                        )

    # MW: per-process write order embeds into ->co (trivially true by
    # construction of ->po, but protocols that lose/reorder writes
    # would surface here through the trace-extracted history).
    for i in range(history.n_processes):
        writes = history.local(i).writes
        for a_idx, a in enumerate(writes):
            for b in writes[a_idx + 1:]:
                if not co.precedes(a, b):
                    mw.append(f"p{i}: {a} not ->co-before own later {b}")

    # WFR: read r(x)v then write w' => writer(v) ->co w'.
    for i in range(history.n_processes):
        ops = history.local(i).operations
        for a_idx, a in enumerate(ops):
            if not isinstance(a, Read) or a.read_from is None:
                continue
            wa = history.write_by_id(a.read_from)
            for b in ops[a_idx + 1:]:
                if isinstance(b, Write) and not co.precedes(wa, b):
                    wfr.append(
                        f"p{i}: {b} not ->co-after {wa.wid} read earlier"
                    )

    return SessionReport(ryw=ryw, monotonic_reads=mr,
                         monotonic_writes=mw, wfr=wfr)
