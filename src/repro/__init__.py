"""repro -- reproduction of Baldoni, Milani & Tucci Piergiovanni,
*An Optimal Protocol for Causally Consistent Distributed Shared Memory
Systems* (IPPS/IPDPS 2004).

Quick start::

    from repro import run_schedule, check_run, SeededLatency
    from repro.workloads import WorkloadConfig, random_schedule

    cfg = WorkloadConfig(n_processes=4, ops_per_process=20, seed=1)
    result = run_schedule("optp", 4, random_schedule(cfg),
                          latency=SeededLatency(1))
    report = check_run(result)
    assert report.ok and not report.unnecessary_delays   # Theorem 4

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.model`     -- histories, ``->co``, legality (Section 2);
- :mod:`repro.core`      -- ``Write_co`` vector clocks + OptP (Section 4)
  and the class-P protocol framework (Section 3.2);
- :mod:`repro.protocols` -- ANBKH and writing-semantics baselines;
- :mod:`repro.sim`       -- deterministic discrete-event substrate;
- :mod:`repro.runtime`   -- asyncio real-concurrency substrate;
- :mod:`repro.workloads` -- schedules, generators, the paper's scenarios;
- :mod:`repro.analysis`  -- safety/legality/liveness/optimality checkers;
- :mod:`repro.paperfigs` -- regenerators for every table and figure.
"""

from repro.analysis import (
    CheckReport,
    assert_run_ok,
    check_run,
    comparison_table,
    x_anbkh,
    x_co_safe,
)
from repro.core import OptPProtocol, VectorClock
from repro.model import (
    BOTTOM,
    History,
    HistoryBuilder,
    WriteCausalityGraph,
    WriteId,
    example_h1,
    is_causally_consistent,
)
from repro.protocols import (
    ANBKHProtocol,
    JimenezTokenProtocol,
    PROTOCOLS,
    Protocol,
    WSReceiverProtocol,
)
from repro.runtime import AsyncCluster, CausalKV, run_programs_async
from repro.sim import (
    ConstantLatency,
    ExponentialLatency,
    MatrixLatency,
    RunResult,
    ScriptedLatency,
    SeededLatency,
    SimCluster,
    UniformLatency,
    run_programs,
    run_schedule,
)
from repro.workloads import (
    Program,
    ReadOp,
    ReadStep,
    Schedule,
    ScheduledOp,
    WaitReadStep,
    WorkloadConfig,
    WriteOp,
    WriteStep,
    random_schedule,
)

__version__ = "1.0.0"

__all__ = [
    "ANBKHProtocol",
    "AsyncCluster",
    "BOTTOM",
    "CausalKV",
    "CheckReport",
    "ConstantLatency",
    "ExponentialLatency",
    "History",
    "HistoryBuilder",
    "JimenezTokenProtocol",
    "MatrixLatency",
    "OptPProtocol",
    "PROTOCOLS",
    "Program",
    "Protocol",
    "ReadOp",
    "ReadStep",
    "RunResult",
    "Schedule",
    "ScheduledOp",
    "ScriptedLatency",
    "SeededLatency",
    "SimCluster",
    "UniformLatency",
    "VectorClock",
    "WSReceiverProtocol",
    "WaitReadStep",
    "WorkloadConfig",
    "WriteCausalityGraph",
    "WriteId",
    "WriteOp",
    "WriteStep",
    "assert_run_ok",
    "check_run",
    "comparison_table",
    "example_h1",
    "is_causally_consistent",
    "random_schedule",
    "run_programs",
    "run_programs_async",
    "run_schedule",
    "x_anbkh",
    "x_co_safe",
]
