"""File collection and the lint driver.

:func:`lint_paths` is the single entry point used by the CLI, CI, and
the self-check test: it expands files/directory trees to ``.py`` files
(sorted, so reports and JSON artifacts are stable across hosts), runs
every selected rule per module, applies inline suppressions, and folds
unused-suppression findings (RL900) back into the report.

Unparseable files are reported as findings (code ``RL000``) rather
than aborting the run: a syntax error in one fixture must not mask
findings elsewhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import parse_suppressions

__all__ = ["PARSE_ERROR", "collect_files", "lint_file", "lint_paths"]

#: Code reported when a file cannot be parsed.
PARSE_ERROR = "RL000"

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist"}


def collect_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files and directory trees to a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    source: Optional[str] = None,
) -> List[Finding]:
    """All surviving findings for one file (suppressions applied)."""
    findings, _ = _lint_one(path, rules, source)
    return findings


def _lint_one(
    path: Path,
    rules: Sequence[Rule],
    source: Optional[str] = None,
):
    if source is None:
        source = path.read_text()
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        parse_finding = Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            code=PARSE_ERROR,
            rule="parse",
            message=f"syntax error: {exc.msg}",
        )
        return [parse_finding], []

    table = parse_suppressions(str(path), source)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if table.suppresses(finding):
                suppressed.append(finding)
            else:
                kept.append(finding)
    kept.extend(table.unused())
    return kept, suppressed


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint files/trees and return the aggregate report."""
    rules = all_rules(select=select, ignore=ignore)
    files = collect_files(paths)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for path in files:
        file_findings, file_suppressed = _lint_one(path, rules)
        findings.extend(file_findings)
        suppressed.extend(file_suppressed)
    return LintReport(
        findings=sorted(findings),
        files_scanned=len(files),
        rules_applied=tuple(r.code for r in rules),
        suppressed=sorted(suppressed),
    )
