"""File collection and the lint driver.

:func:`lint_paths` is the single entry point used by the CLI, CI, and
the self-check test: it expands files/directory trees to ``.py`` files
(sorted, so reports and JSON artifacts are stable across hosts), runs
every selected rule per module, applies inline suppressions, and folds
unused-suppression findings (RL900) back into the report.

When any selected rule ``requires_flow`` (RL101-RL104), the runner
first parses *every* file of the run, builds one shared
:class:`repro.lint.flow.FlowAnalysis` (call graph, function summaries,
payload key summary) over the parseable ones, and attaches it to each
module context as ``ctx.flow`` before rules execute.  Unparseable
files still produce their RL000 finding and are simply absent from the
flow graph.

Output is deterministic: findings sort by (path, line, col, code), and
:func:`_dedup` drops exact duplicates plus flow findings whose
syntactic sibling already reported the same (path, line) -- RL101/
RL102 sites RL003 caught, RL103 sites RL001/RL002 caught, RL104 sites
RL009 caught -- so CI diffs never show one defect twice.

Unparseable files are reported as findings (code ``RL000``) rather
than aborting the run: a syntax error in one fixture must not mask
findings elsewhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import parse_suppressions

__all__ = ["PARSE_ERROR", "collect_files", "lint_file", "lint_paths"]

#: Code reported when a file cannot be parsed.
PARSE_ERROR = "RL000"

#: Directory names never descended into.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "build", "dist"}

#: Flow rule -> syntactic rules that report the same defect class; a
#: flow finding is dropped when its sibling already fired on the line.
_SHADOWED_BY = {
    "RL101": {"RL003"},
    "RL102": {"RL003"},
    "RL103": {"RL001", "RL002"},
    "RL104": {"RL009"},
}


def collect_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files and directory trees to a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def _parse_finding(path: Path, exc: SyntaxError) -> Finding:
    return Finding(
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
        code=PARSE_ERROR,
        rule="parse",
        message=f"syntax error: {exc.msg}",
    )


def _dedup(findings: List[Finding]) -> List[Finding]:
    """Exact-duplicate removal plus flow-vs-syntactic shadowing."""
    on_line = {(f.path, f.line, f.code) for f in findings}
    seen: Set[Tuple[str, int, int, str]] = set()
    out: List[Finding] = []
    for finding in sorted(findings):
        key = (finding.path, finding.line, finding.col, finding.code)
        if key in seen:
            continue
        seen.add(key)
        shadows = _SHADOWED_BY.get(finding.code)
        if shadows and any(
            (finding.path, finding.line, sib) in on_line for sib in shadows
        ):
            continue
        out.append(finding)
    return out


def _check_one(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    source: str,
    active: Optional[Set[str]],
) -> Tuple[List[Finding], List[Finding]]:
    table = parse_suppressions(str(ctx.path), source)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if table.suppresses(finding):
                suppressed.append(finding)
            else:
                kept.append(finding)
    kept = _dedup(kept)
    kept.extend(table.unused(active))
    return sorted(kept), suppressed


def _needs_flow(rules: Sequence[Rule]) -> bool:
    return any(r.requires_flow for r in rules)


def _build_flow(contexts: Sequence[ModuleContext]):
    from repro.lint.flow import build_flow  # local: keep non-flow runs lean

    return build_flow(contexts)


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    source: Optional[str] = None,
) -> List[Finding]:
    """All surviving findings for one file (suppressions applied).

    When ``rules`` contains flow rules, the flow analysis is built over
    this single module -- callees outside the file stay unresolved,
    exactly the conservative behavior the rules are written for.
    """
    findings, _ = _lint_one(path, rules, source)
    return findings


def _lint_one(
    path: Path,
    rules: Sequence[Rule],
    source: Optional[str] = None,
):
    if source is None:
        source = path.read_text()
    try:
        ctx = ModuleContext.parse(path, source)
    except SyntaxError as exc:
        return [_parse_finding(path, exc)], []
    if _needs_flow(rules):
        ctx.flow = _build_flow([ctx])
    return _check_one(ctx, rules, source, {r.code for r in rules})


def lint_paths(
    paths: Iterable[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    flow: bool = False,
) -> LintReport:
    """Lint files/trees and return the aggregate report."""
    rules = all_rules(select=select, ignore=ignore, flow=flow)
    active = {r.code for r in rules}
    files = collect_files(paths)
    findings: List[Finding] = []
    suppressed: List[Finding] = []

    sources: Dict[Path, str] = {}
    contexts: Dict[Path, ModuleContext] = {}
    for path in files:
        source = path.read_text()
        sources[path] = source
        try:
            contexts[path] = ModuleContext.parse(path, source)
        except SyntaxError as exc:
            findings.append(_parse_finding(path, exc))

    if _needs_flow(rules) and contexts:
        flow_analysis = _build_flow(list(contexts.values()))
        for ctx in contexts.values():
            ctx.flow = flow_analysis

    for path in files:
        ctx = contexts.get(path)
        if ctx is None:
            continue  # RL000 already recorded
        file_findings, file_suppressed = _check_one(
            ctx, rules, sources[path], active)
        findings.extend(file_findings)
        suppressed.extend(file_suppressed)
    return LintReport(
        findings=sorted(findings),
        files_scanned=len(files),
        rules_applied=tuple(r.code for r in rules),
        suppressed=sorted(suppressed),
    )
