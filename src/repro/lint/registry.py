"""Rule base class and the global rule registry.

Rules self-register at import time via the :func:`register` decorator;
:func:`all_rules` triggers the import of :mod:`repro.lint.rules` so the
shipped rule set is always complete without the runner hard-coding it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding

__all__ = ["Rule", "all_rules", "register", "rule_catalog"]

_REGISTRY: Dict[str, "Rule"] = {}


class Rule:
    """One static check, identified by a stable ``RLxxx`` code.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` values (use :meth:`finding` so the code
    and rule name are filled in consistently).  ``check`` runs once per
    analyzed module; rules decide applicability themselves from the
    context's zone/filename so fixture trees behave like the real
    package layout.
    """

    #: stable finding code, ``RL001``...; one code per rule.
    code: str = ""
    #: short identifier used in reports and ``rule_catalog``.
    name: str = ""
    #: one-line description for ``repro-dsm lint --catalog`` and docs.
    summary: str = ""
    #: True for rules that consume the interprocedural flow analysis
    #: (``ctx.flow``); excluded from default runs unless ``--flow`` is
    #: passed or the code is explicitly selected.
    requires_flow: bool = False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node, message: str) -> Finding:
        line, col = ctx.loc(node)
        return Finding(
            path=str(ctx.path),
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
        )


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add to the registry."""
    rule = rule_cls()
    if not rule.code or not rule.name:
        raise ValueError(f"{rule_cls.__name__} must set code and name")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    flow: bool = False,
) -> List[Rule]:
    """The registered rules, filtered by code, sorted by code.

    ``select`` keeps only the listed codes; ``ignore`` drops the listed
    codes (applied after ``select``).  Unknown codes raise so typos in
    CI configuration fail loudly instead of silently disabling checks.

    Rules with ``requires_flow`` are excluded unless ``flow`` is true
    or their code is explicitly selected -- selecting ``RL101`` by hand
    is an unambiguous request for the flow analysis.
    """
    import repro.lint.rules  # noqa: F401  (registration side effect)

    known = set(_REGISTRY)
    chosen = set(known)
    explicit: set = set()
    if select is not None:
        requested = set(select)
        unknown = requested - known
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        chosen = requested
        explicit = requested
    if ignore is not None:
        dropped = set(ignore)
        unknown = dropped - known
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        chosen -= dropped
    if not flow:
        chosen = {
            code for code in chosen
            if not _REGISTRY[code].requires_flow or code in explicit
        }
    return [_REGISTRY[code] for code in sorted(chosen)]


def rule_catalog() -> List[Rule]:
    """Every registered rule (unfiltered), sorted by code."""
    return all_rules(flow=True)
