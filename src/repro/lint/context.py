"""Per-module analysis context shared by all lint rules.

A :class:`ModuleContext` bundles the parsed AST with everything a rule
needs to decide applicability and render findings:

- the **zone** the file belongs to (``sim`` / ``core`` / ``protocols``
  / ``runtime`` / ``obs`` / ``sweep`` / ``mck`` / ``other``), inferred
  from directory parts so fixture trees like
  ``tests/lint/fixtures/sim/...`` are analyzed exactly like
  ``src/repro/sim/...``;
- whether the file is a **hot-path module** (the obs-gating rule's
  scope: ``engine.py``, ``scheduler.py``, ``network.py``, ``node.py``,
  ``flatstate.py``, and everything in the ``mck`` zone -- the model
  checker executes millions of transitions, so its obs hooks carry the
  same gating contract);
- a parent map over the AST (``ast`` has no parent links) plus helpers
  for walking enclosing statements/functions.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DETERMINISM_ZONES",
    "HOT_PATH_MODULES",
    "HOT_PATH_ZONES",
    "ModuleContext",
    "dotted_name",
    "zone_of",
]

#: Zones where replay determinism is contractual (the differential and
#: gating tests pin traces byte-for-byte over code in these packages;
#: ``sweep`` is in because its cached results must be byte-identical to
#: fresh runs -- its worker timing lines carry explicit suppressions).
#: ``serve`` is in because live-trace conformance replay and the
#: deterministic load generator both forbid ad-hoc clocks: all wall
#: reads must route through ``repro.serve.timebase`` (the one
#: suppressed site).
DETERMINISM_ZONES = ("sim", "core", "protocols", "sweep", "serve")

#: Modules on the per-event hot path: obs instrumentation here must sit
#: behind an ``obs.enabled`` / ``obs_on`` guard (the 1.05x budget of
#: ``benchmarks/test_bench_obs_overhead.py``).  ``flatstate.py`` joined
#: when the flat backend grew lifecycle telemetry; ``server.py`` and
#: ``codec.py`` joined with the serving layer (per-request / per-byte
#: paths); the whole ``mck`` zone is additionally hot (see
#: :data:`HOT_PATH_ZONES`).
HOT_PATH_MODULES = ("engine.py", "scheduler.py", "network.py", "node.py",
                    "flatstate.py", "server.py", "codec.py")

#: Zones whose *every* module is hot-path for the obs-gating rule: the
#: model checker's inner loop executes each transition thousands of
#: times across clones, so ungated instrumentation multiplies.
HOT_PATH_ZONES = ("mck",)

_ZONES = ("sim", "core", "protocols", "runtime", "obs", "sweep", "mck",
          "serve")


def zone_of(path: Path) -> str:
    """Infer the analysis zone from directory components.

    The *last* zone-named directory wins, so both
    ``src/repro/protocols/x.py`` and fixture copies such as
    ``tests/lint/fixtures/protocols/x.py`` resolve identically.
    """
    zone = "other"
    for part in path.parts[:-1]:
        if part in _ZONES:
            zone = part
    return zone


class ModuleContext:
    """One parsed source file plus derived lookup structures."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.zone = zone_of(path)
        self.is_hot_path = (path.name in HOT_PATH_MODULES
                            or self.zone in HOT_PATH_ZONES)
        #: shared :class:`repro.lint.flow.FlowAnalysis`, attached by the
        #: runner when a ``requires_flow`` rule is selected; None in
        #: plain syntactic runs (flow rules then stay silent).
        self.flow = None
        self._parents: Dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    @classmethod
    def parse(cls, path: Path, source: Optional[str] = None) -> "ModuleContext":
        if source is None:
            source = path.read_text()
        tree = ast.parse(source, filename=str(path))
        return cls(path, source, tree)

    # -- tree navigation ----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes, innermost first (excluding ``node`` itself)."""
        cur = self.parent(node)
        while cur is not None:
            yield cur
            cur = self.parent(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def classes(self) -> List[ast.ClassDef]:
        return [n for n in ast.walk(self.tree) if isinstance(n, ast.ClassDef)]

    # -- rendering helpers --------------------------------------------------

    def loc(self, node: ast.AST) -> Tuple[int, int]:
        """(line, col) of a node, 1-based column for display."""
        return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None
