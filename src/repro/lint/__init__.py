"""reprolint: AST-based determinism & protocol-contract analysis.

A self-contained static analyzer (stdlib ``ast`` only, no third-party
dependencies) for the invariants this reproduction's tests can only
check dynamically:

- **replay determinism** in ``sim`` / ``core`` / ``protocols``
  (RL001 nondeterministic calls, RL002 set-iteration order);
- **vector-clock aliasing** across the node boundary (RL003);
- the **class-𝒫 protocol contract** -- mandatory hooks, the
  ``missing_deps``/``apply_event`` pair, declared-capability handlers
  (RL004, RL005);
- **obs gating** on hot-path modules (RL006);
- **cross-node isolation** -- all inter-process information flows
  through messages (RL007).

Inline suppressions use ``# reprolint: disable=RL003`` (RL900 flags
stale ones).  CLI entry point: ``repro-dsm lint``.  Rule catalog:
``docs/static-analysis.md``.
"""

from repro.lint.context import (
    DETERMINISM_ZONES,
    HOT_PATH_MODULES,
    ModuleContext,
    zone_of,
)
from repro.lint.findings import Finding, LintReport
from repro.lint.registry import Rule, all_rules, register, rule_catalog
from repro.lint.runner import PARSE_ERROR, collect_files, lint_file, lint_paths
from repro.lint.suppress import UNUSED_SUPPRESSION, parse_suppressions

__all__ = [
    "DETERMINISM_ZONES",
    "Finding",
    "HOT_PATH_MODULES",
    "LintReport",
    "ModuleContext",
    "PARSE_ERROR",
    "Rule",
    "UNUSED_SUPPRESSION",
    "all_rules",
    "collect_files",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
    "register",
    "rule_catalog",
    "zone_of",
]
