"""RL006: obs instrumentation on the hot path must be gated.

The observability layer's contract (``docs/observability.md``, enforced
dynamically by ``benchmarks/test_bench_obs_overhead.py``'s 1.05x
budget) is that a disabled run pays *one branch per hook site*.  That
only holds if every instrument operation in the per-event hot-path
modules (``engine.py`` / ``scheduler.py`` / ``network.py`` /
``node.py`` / ``flatstate.py``, plus everything in the ``mck`` zone --
see :data:`repro.lint.context.HOT_PATH_ZONES`) sits under an
``if <...>.enabled:`` or ``if obs_on:`` guard -- counter bumps and
sink callbacks on an ungated path charge every simulation, observed
or not.

Recognized instrument operations:

- ``.inc(...)`` / ``.set(...)`` / ``.observe(...)`` on a resolved
  handle (an identifier with the ``_m_``/``_g_``/``m_``/``g_`` naming
  convention, or a freshly built ``registry.counter(...)`` chain);
- ``<...>.sink.on_*(...)`` sink callbacks;
- ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` registry
  lookups (ungated lookups allocate label tuples per event).

A site is *gated* when any enclosing ``if``/conditional expression /
``and`` chain tests ``.enabled`` or an ``obs_on`` local.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["ObsGatingRule"]

_HANDLE_OPS = {"inc", "set", "observe"}
_REGISTRY_OPS = {"counter", "gauge", "histogram"}
_HANDLE_PREFIXES = ("_m_", "_g_", "m_", "g_")


def _idents(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _mentions_handle(node: ast.AST) -> bool:
    return any(
        ident.startswith(_HANDLE_PREFIXES) for ident in _idents(node)
    ) or any(ident in _REGISTRY_OPS for ident in _idents(node))


def _mentions_registry(node: ast.AST) -> bool:
    return any(ident in ("registry", "reg") for ident in _idents(node))


def _tests_enabled(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
            return True
        if isinstance(sub, ast.Name) and sub.id == "obs_on":
            return True
    return False


@register
class ObsGatingRule(Rule):
    code = "RL006"
    name = "obs-gating"
    summary = (
        "instrument calls in hot-path modules must sit under an "
        "obs.enabled / obs_on guard"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_hot_path:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._instrument_kind(node)
            if kind is None:
                continue
            if not self._gated(ctx, node):
                yield self.finding(
                    ctx, node,
                    f"ungated {kind} on the hot path; wrap in "
                    "'if obs.enabled:' (or hoist an obs_on local) so "
                    "disabled runs pay one branch per hook",
                )

    def _instrument_kind(self, call: ast.Call) -> str:
        """Classify a call as an instrument op, or return None."""
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        if func.attr in _HANDLE_OPS and _mentions_handle(receiver):
            return f"instrument update .{func.attr}()"
        if func.attr.startswith("on_"):
            if any(ident == "sink" for ident in _idents(receiver)):
                return f"sink callback .{func.attr}()"
        if func.attr in _REGISTRY_OPS and _mentions_registry(receiver):
            return f"registry lookup .{func.attr}()"
        return None

    def _gated(self, ctx: ModuleContext, node: ast.AST) -> bool:
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.If, ast.IfExp)) and _tests_enabled(anc.test):
                return True
            if isinstance(anc, ast.BoolOp) and isinstance(anc.op, ast.And):
                if any(_tests_enabled(v) for v in anc.values):
                    return True
        return False
