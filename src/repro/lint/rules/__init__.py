"""The shipped rule set.

Importing this package registers every rule (via the ``@register``
decorators in the submodules); :func:`repro.lint.registry.all_rules`
does so lazily, so adding a rule module here is the only wiring step.
"""

from repro.lint.rules import aliasing as _aliasing  # noqa: F401
from repro.lint.rules import contract as _contract  # noqa: F401
from repro.lint.rules import determinism as _determinism  # noqa: F401
from repro.lint.rules import flatalloc as _flatalloc  # noqa: F401
from repro.lint.rules import flowrules as _flowrules  # noqa: F401
from repro.lint.rules import isolation as _isolation  # noqa: F401
from repro.lint.rules import obsgate as _obsgate  # noqa: F401
from repro.lint.rules import workers as _workers  # noqa: F401

from repro.lint.rules.aliasing import VectorAliasingRule
from repro.lint.rules.contract import ProtocolHooksRule, ProtocolPairRule
from repro.lint.rules.determinism import (
    NondeterministicCallRule,
    UnorderedIterationRule,
)
from repro.lint.rules.flatalloc import FlatHotAllocRule
from repro.lint.rules.flowrules import (
    InterproceduralAllocRule,
    PayloadEscapeRule,
    TransitiveNondetRule,
    VectorClockMonotonicityRule,
)
from repro.lint.rules.isolation import CrossNodeIsolationRule
from repro.lint.rules.obsgate import ObsGatingRule
from repro.lint.rules.workers import PicklableWorkerRule

__all__ = [
    "CrossNodeIsolationRule",
    "FlatHotAllocRule",
    "InterproceduralAllocRule",
    "NondeterministicCallRule",
    "ObsGatingRule",
    "PayloadEscapeRule",
    "PicklableWorkerRule",
    "ProtocolHooksRule",
    "ProtocolPairRule",
    "TransitiveNondetRule",
    "UnorderedIterationRule",
    "VectorAliasingRule",
    "VectorClockMonotonicityRule",
]
