"""RL004/RL005: the class-𝒫 protocol contract, checked structurally.

``repro.core.base.Protocol`` is the paper's protocol class 𝒫 rendered
as an ABC.  Much of its contract is invisible to the type system:

RL004 (``protocol-pair``)
    - A direct ``Protocol`` subclass must define the four mandatory
      hooks ``write`` / ``read`` / ``classify`` / ``apply_update``
      (the ABC enforces this at *instantiation* time; the linter
      reports it at the definition).
    - ``apply_event`` is only ever consulted by the dependency-indexed
      scheduler when ``missing_deps`` is implemented -- overriding
      ``apply_event`` without ``missing_deps`` is dead code hiding a
      half-finished scheduling contract.  (The converse is fine: the
      default ``(sender, seq)`` keying fits per-writer protocols.)
    - Both scheduling hooks must keep the ``(self, msg)`` signature the
      substrate calls them with.

RL005 (``protocol-hooks``)
    Declared capabilities must come with their handler:

    - ``timer_interval = <value>`` without ``on_timer`` raises
      ``NotImplementedError`` on the first tick;
    - ``classify`` returning ``Disposition.DISCARD`` without
      ``discard_update`` does the same on the first overwritten write;
    - ``in_class_p = False`` without ``missing_applies`` makes the
      substrate's quiescence accounting (and the liveness checker)
      silently wrong -- a WS variant must report what it skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["ProtocolHooksRule", "ProtocolPairRule"]

_MANDATORY = ("write", "read", "classify", "apply_update")
_SCHEDULING = ("missing_deps", "apply_event")
#: The PR-6/7 flat-backend hook surface a ``supports_flat_state = True``
#: declaration promises (see ``repro.core.base.Protocol``).
_FLAT_HOOKS = ("enable_flat_state", "flat_progress", "flat_deps")


def _base_names(cls: ast.ClassDef) -> Set[str]:
    out = set()
    for base in cls.bases:
        name = dotted_name(base)
        if name:
            out.add(name.rsplit(".", 1)[-1])
    return out


def _is_direct_protocol_subclass(cls: ast.ClassDef) -> bool:
    """Heuristic: a base literally named ``Protocol`` (dotted or not)."""
    return "Protocol" in _base_names(cls)


def _is_protocol_like(cls: ast.ClassDef) -> bool:
    """Any base whose name mentions Protocol (covers grandchildren)."""
    return any("Protocol" in b for b in _base_names(cls))


def _methods(cls: ast.ClassDef):
    return {
        n.name: n for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_var(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    """The value expression of a class-body ``name = ...`` binding."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (isinstance(node.target, ast.Name)
                    and node.target.id == name
                    and node.value is not None):
                return node.value
    return None


@register
class ProtocolPairRule(Rule):
    code = "RL004"
    name = "protocol-pair"
    summary = (
        "Protocol subclasses: mandatory hooks present, "
        "missing_deps/apply_event paired with conforming signatures"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in ("core", "protocols"):
            return
        for cls in ctx.classes():
            if not _is_protocol_like(cls):
                continue
            methods = _methods(cls)
            if _is_direct_protocol_subclass(cls):
                missing = [m for m in _MANDATORY if m not in methods]
                if missing:
                    yield self.finding(
                        ctx, cls,
                        f"Protocol subclass {cls.name} is missing mandatory "
                        f"hook(s): {', '.join(missing)}",
                    )
            if "apply_event" in methods and "missing_deps" not in methods:
                yield self.finding(
                    ctx, methods["apply_event"],
                    f"{cls.name}.apply_event is only consulted when "
                    "missing_deps is implemented; define missing_deps or "
                    "drop the override",
                )
            for hook in _SCHEDULING:
                fn = methods.get(hook)
                if fn is not None and not self._signature_ok(fn):
                    yield self.finding(
                        ctx, fn,
                        f"{cls.name}.{hook} must keep the (self, msg) "
                        "signature the delivery scheduler calls it with",
                    )
            yield from self._check_flat_surface(ctx, cls, methods)

    def _check_flat_surface(self, ctx, cls, methods) -> Iterator[Finding]:
        """``supports_flat_state`` must match the implemented hooks."""
        declared = _class_var(cls, "supports_flat_state")
        declares_flat = (
            isinstance(declared, ast.Constant) and declared.value is True
        )
        implemented = [h for h in _FLAT_HOOKS if h in methods]
        if declares_flat:
            missing = [h for h in _FLAT_HOOKS if h not in methods]
            if missing:
                yield self.finding(
                    ctx, declared,
                    f"{cls.name} declares supports_flat_state = True but "
                    f"is missing flat hook(s): {', '.join(missing)}; the "
                    "FlatScheduler would fail at construction",
                )
            elif "missing_deps" not in methods:
                yield self.finding(
                    ctx, declared,
                    f"{cls.name} declares supports_flat_state = True "
                    "without missing_deps; flat wakeup keys mirror the "
                    "missing_deps enumeration (span parity) -- define it",
                )
        elif implemented:
            yield self.finding(
                ctx, methods[implemented[0]],
                f"{cls.name} implements flat hook(s) "
                f"{', '.join(implemented)} without declaring "
                "supports_flat_state = True; make_scheduler would never "
                "select the flat backend",
            )

    @staticmethod
    def _signature_ok(fn: ast.FunctionDef) -> bool:
        a = fn.args
        return (
            len(a.args) == 2
            and not a.posonlyargs
            and not a.kwonlyargs
            and a.vararg is None
            and a.kwarg is None
            and not a.defaults
        )


@register
class ProtocolHooksRule(Rule):
    code = "RL005"
    name = "protocol-hooks"
    summary = (
        "declared protocol capabilities (timer, discard, non-class-P) "
        "must come with their handler"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in ("core", "protocols"):
            return
        for cls in ctx.classes():
            if not _is_protocol_like(cls):
                continue
            methods = _methods(cls)

            interval = _class_var(cls, "timer_interval")
            declares_timer = interval is not None and not (
                isinstance(interval, ast.Constant) and interval.value is None
            )
            if declares_timer and "on_timer" not in methods:
                yield self.finding(
                    ctx, interval,
                    f"{cls.name} declares timer_interval but defines no "
                    "on_timer; the first tick raises NotImplementedError",
                )

            if self._uses_discard(cls) and "discard_update" not in methods:
                yield self.finding(
                    ctx, cls,
                    f"{cls.name} classifies updates as DISCARD but defines "
                    "no discard_update handler",
                )

            icp = _class_var(cls, "in_class_p")
            leaves_class_p = (
                isinstance(icp, ast.Constant) and icp.value is False
            )
            if leaves_class_p and "missing_applies" not in methods:
                yield self.finding(
                    ctx, icp,
                    f"{cls.name} sets in_class_p = False but does not "
                    "override missing_applies; quiescence accounting would "
                    "count its skipped applies as losses",
                )

    @staticmethod
    def _uses_discard(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (isinstance(node, ast.Attribute)
                    and node.attr == "DISCARD"
                    and dotted_name(node) == "Disposition.DISCARD"):
                return True
        return False
