"""Determinism rules: RL001 (nondeterministic calls) and RL002
(unordered-collection iteration) inside the replay-critical zones.

The repo's correctness story rests on byte-identical replay: the
scheduler differential tests and the obs gating tests pin traces
bit-for-bit, and the machine-checked theorems are only meaningful over
deterministic runs.  Two classic regressions are banned statically in
``sim`` / ``core`` / ``protocols``:

RL001
    Wall-clock and entropy sources: ``time.time()`` (and the other
    ``time`` clocks), ``datetime.now()`` / ``utcnow()`` / ``today()``,
    ``os.urandom``, ``uuid.uuid1/uuid4``, anything from ``secrets``,
    and **unseeded** randomness -- module-level ``random.<fn>(...)``
    calls, ``random.Random()`` with no seed argument, and
    ``numpy.random`` conveniences.  ``random.Random(seed)`` instances
    are the sanctioned pattern (see ``repro.sim.latency``).

RL002
    Iterating a ``set``/``frozenset`` whose order can leak into traces
    or message schedules.  Dicts are insertion-ordered in Python and
    fine; set iteration order depends on hash seeding and history.
    Wrap the iterable in ``sorted(...)`` or iterate the original
    ordered source instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.lint.context import DETERMINISM_ZONES, ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["NondeterministicCallRule", "UnorderedIterationRule"]

#: ``module.attr`` call targets that read wall clocks or entropy.
_BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "time.process_time": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/clock-derived id",
    "uuid.uuid4": "OS entropy",
}

#: ``datetime``-ish receivers whose now/today/utcnow is wall clock.
_DATETIME_FACTORIES = {"now", "utcnow", "today", "fromtimestamp"}

#: names random.Random instances are allowed to be built from.
_RANDOM_EXEMPT = {"Random", "SystemRandom", "seed", "getstate", "setstate"}


def _is_set_expr(node: ast.AST) -> bool:
    """Literal sets and direct set()/frozenset() constructor calls."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _collect_set_bindings(tree: ast.Module) -> Set[str]:
    """Names bound to set-producing expressions anywhere in the module.

    Tracks both locals (``holders = frozenset(...)``) and instance
    attributes (``self.seen = set()``), keyed by their dotted source
    form.  Coarse by design: rebinding a name to a non-set later keeps
    it flagged -- acceptable for lint-grade analysis.
    """
    bound: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None or not _is_set_expr(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                name = dotted_name(target)
                if name:
                    bound.add(name)
    return bound


@register
class NondeterministicCallRule(Rule):
    code = "RL001"
    name = "determinism"
    summary = (
        "no wall-clock, entropy, or unseeded randomness in sim/core/protocols"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in DETERMINISM_ZONES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message:
                yield self.finding(ctx, node, message)

    def _violation(self, call: ast.Call) -> Optional[str]:
        name = dotted_name(call.func)
        if name is None:
            return None
        if name in _BANNED_CALLS:
            return (
                f"nondeterministic call {name}() ({_BANNED_CALLS[name]}) "
                "breaks byte-identical replay; derive values from the "
                "engine clock or a seeded RNG"
            )
        parts = name.split(".")
        # datetime.now() / datetime.datetime.utcnow() / date.today()
        if parts[-1] in _DATETIME_FACTORIES and any(
            p in ("datetime", "date") for p in parts[:-1]
        ):
            return (
                f"nondeterministic call {name}() (wall clock) breaks "
                "byte-identical replay; use the simulation clock"
            )
        # secrets.<anything>()
        if parts[0] == "secrets" and len(parts) > 1:
            return f"nondeterministic call {name}() (OS entropy)"
        # unseeded random.Random() -- with a seed argument it is the
        # sanctioned deterministic pattern.
        if name == "random.Random":
            if not call.args and not call.keywords:
                return (
                    "random.Random() without a seed falls back to OS "
                    "entropy; pass an explicit seed"
                )
            return None
        # module-level random.* convenience functions share one global,
        # implicitly-seeded generator.
        if parts[0] == "random" and len(parts) == 2 and parts[1] not in _RANDOM_EXEMPT:
            return (
                f"unseeded randomness {name}() (global RNG); use a "
                "random.Random(seed) instance"
            )
        # numpy.random.* / np.random.*: same story.
        if (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
        ):
            if parts[2] == "default_rng" and (call.args or call.keywords):
                return None
            return (
                f"unseeded numpy randomness {name}(); seed an explicit "
                "Generator instead"
            )
        return None


@register
class UnorderedIterationRule(Rule):
    code = "RL002"
    name = "unordered-iteration"
    summary = "no set/frozenset iteration on replay-critical paths"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in DETERMINISM_ZONES:
            return
        set_names = _collect_set_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._unordered(it, set_names):
                    yield self.finding(
                        ctx, it,
                        "iteration over a set has hash-dependent order; "
                        "wrap in sorted(...) or iterate an ordered source",
                    )

    def _unordered(self, it: ast.AST, set_names: Set[str]) -> bool:
        if _is_set_expr(it):
            return True
        name = dotted_name(it)
        return name is not None and name in set_names
