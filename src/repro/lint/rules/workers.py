"""RL008: process-pool entry points must be picklable (zone ``sweep``).

``ProcessPoolExecutor`` pickles the submitted callable **by qualified
name**: only module-level functions survive the trip.  Lambdas, nested
functions, and bound methods raise ``PicklingError`` at runtime -- but
only on the parallel path, so a serial test suite never sees it.  This
rule fails the lint instead.

Flagged as the callable argument of ``<pool>.submit(fn, ...)`` /
``<pool>.map(fn, ...)``:

- a ``lambda`` expression;
- a name bound to a function *defined inside another function or
  class* (nested ``def``) or to a lambda assignment;
- an attribute rooted at ``self`` / ``cls`` (a bound method).

Module-level ``def``s and imported names pass.  The receiver is not
type-checked -- any ``.submit``/``.map`` call in the sweep zone is
held to the contract, which is exactly the discipline
:mod:`repro.sweep.worker` documents.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["PicklableWorkerRule"]

_POOL_METHODS = ("submit", "map")


def _nonmodule_callables(tree: ast.Module):
    """``(nested defs, lambda-bound names)`` anywhere in the module.

    Lambda assignments are unpicklable even at module level (their
    qualified name is ``<lambda>``), so both sets fail the contract.
    """
    toplevel = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    nested: Set[str] = set()
    lambdas: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in toplevel:
                nested.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambdas.add(target.id)
    return nested, lambdas


@register
class PicklableWorkerRule(Rule):
    code = "RL008"
    name = "picklable-workers"
    summary = (
        "pool.submit/map entry points in sweep code must be module-level "
        "functions"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone != "sweep":
            return
        nested, lambdas = _nonmodule_callables(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _POOL_METHODS or not node.args:
                continue
            message = self._violation(node.args[0], nested, lambdas)
            if message:
                yield self.finding(
                    ctx, node.args[0],
                    f"{message} passed to .{node.func.attr}(); process-pool "
                    "entry points are pickled by qualified name -- use a "
                    "module-level function",
                )

    def _violation(
        self, fn: ast.AST, nested: Set[str], lambdas: Set[str]
    ) -> Optional[str]:
        if isinstance(fn, ast.Lambda):
            return "lambda"
        if isinstance(fn, ast.Name):
            if fn.id in nested:
                return f"nested function {fn.id!r}"
            if fn.id in lambdas:
                return f"lambda-bound name {fn.id!r}"
        name = dotted_name(fn)
        if name and name.split(".")[0] in ("self", "cls"):
            return f"bound method {name!r}"
        return None
