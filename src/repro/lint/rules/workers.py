"""RL008: process entry points must be picklable (zones ``sweep``,
``serve``).

``ProcessPoolExecutor`` pickles the submitted callable **by qualified
name**: only module-level functions survive the trip.  Lambdas, nested
functions, and bound methods raise ``PicklingError`` at runtime -- but
only on the parallel path, so a serial test suite never sees it.  This
rule fails the lint instead.  The same contract binds spawn-context
``Process(target=...)`` construction, which is how the serving layer
boots replica and load-generator processes
(:mod:`repro.serve.worker`).

Flagged as the callable argument of ``<pool>.submit(fn, ...)`` /
``<pool>.map(fn, ...)`` and as the ``target=`` of ``Process(...)``:

- a ``lambda`` expression;
- a name bound to a function *defined inside another function or
  class* (nested ``def``) or to a lambda assignment;
- an attribute rooted at ``self`` / ``cls`` (a bound method).

Module-level ``def``s and imported names pass.  The receiver is not
type-checked -- any ``.submit``/``.map``/``Process`` call in a covered
zone is held to the contract, which is exactly the discipline
:mod:`repro.sweep.worker` and :mod:`repro.serve.worker` document.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["PicklableWorkerRule"]

_POOL_METHODS = ("submit", "map")

#: Zones under the picklable-entry-point contract.
_ZONES = ("sweep", "serve")


def _nonmodule_callables(tree: ast.Module):
    """``(nested defs, lambda-bound names)`` anywhere in the module.

    Lambda assignments are unpicklable even at module level (their
    qualified name is ``<lambda>``), so both sets fail the contract.
    """
    toplevel = {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    nested: Set[str] = set()
    lambdas: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name not in toplevel:
                nested.add(node.name)
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    lambdas.add(target.id)
    return nested, lambdas


@register
class PicklableWorkerRule(Rule):
    code = "RL008"
    name = "picklable-workers"
    summary = (
        "pool.submit/map and Process(target=...) entry points in "
        "sweep/serve code must be module-level functions"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in _ZONES:
            return
        nested, lambdas = _nonmodule_callables(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn_node = self._entry_point(node)
            if fn_node is None:
                continue
            message = self._violation(fn_node, nested, lambdas)
            if message:
                label = (f".{node.func.attr}()"
                         if isinstance(node.func, ast.Attribute)
                         and node.func.attr in _POOL_METHODS
                         else "Process(target=...)")
                yield self.finding(
                    ctx, fn_node,
                    f"{message} passed to {label}; process entry points "
                    "are pickled by qualified name -- use a module-level "
                    "function",
                )

    @staticmethod
    def _entry_point(node: ast.Call) -> Optional[ast.AST]:
        """The callable being shipped to another process, if any."""
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_METHODS and node.args):
            return node.args[0]
        callee = node.func
        callee_name = (callee.id if isinstance(callee, ast.Name)
                       else callee.attr if isinstance(callee, ast.Attribute)
                       else None)
        if callee_name == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    return kw.value
        return None

    def _violation(
        self, fn: ast.AST, nested: Set[str], lambdas: Set[str]
    ) -> Optional[str]:
        if isinstance(fn, ast.Lambda):
            return "lambda"
        if isinstance(fn, ast.Name):
            if fn.id in nested:
                return f"nested function {fn.id!r}"
            if fn.id in lambdas:
                return f"lambda-bound name {fn.id!r}"
        name = dotted_name(fn)
        if name and name.split(".")[0] in ("self", "cls"):
            return f"bound method {name!r}"
        return None
