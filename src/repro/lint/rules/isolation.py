"""RL007: cross-node isolation -- no reaching into another node's protocol.

The paper's system model gives each process its own protocol instance;
all inter-process information flows through messages.  The simulator
mirrors that: a protocol instance "is owned by exactly one process and
must never be shared" (``repro.core.base.Protocol``), and byte-identical
parity between the simulator and the socket runtime only holds if no
component shortcuts through shared memory.

Flagged (zones ``sim`` / ``runtime`` / ``protocols``):

- reading ``<other>.protocol.<attr>`` for anything outside the
  read-only introspection API (substrates may drive *their own*
  protocol -- ``self.protocol.<hook>`` -- freely);
- writing ``<anything>.protocol.<attr> = ...`` from outside the
  protocol: mutating protocol internals externally bypasses the
  message flow entirely;
- protocol code (zone ``protocols`` / ``core``) touching ``.protocol``
  or ``.nodes`` at all -- a protocol must not know the substrate's
  topology.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["CrossNodeIsolationRule"]

#: Read-only introspection attributes a substrate/cluster may read off
#: any protocol instance (reports, quiescence accounting, checkers).
_ALLOWED_REMOTE = {
    "name",
    "in_class_p",
    "timer_interval",
    "process_id",
    "n_processes",
    "stats",
    "missing_applies",
    "store_snapshot",
    "debug_state",
    "bind_recorder",
    "writes_issued",
}


@register
class CrossNodeIsolationRule(Rule):
    code = "RL007"
    name = "cross-node-isolation"
    summary = (
        "no reaching into another node's protocol state except through "
        "messages (read-only introspection excepted)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone in ("protocols", "core"):
            yield from self._check_protocol_zone(ctx)
        elif ctx.zone in ("sim", "runtime"):
            yield from self._check_substrate_zone(ctx)

    # -- protocol code must not see the topology ----------------------------

    def _check_protocol_zone(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in ("protocol", "nodes"):
                yield self.finding(
                    ctx, node,
                    f"protocol code must not touch .{node.attr}: a protocol "
                    "instance sees only its own state and incoming messages",
                )

    # -- substrate code: own protocol free, remote protocols read-only ------

    def _check_substrate_zone(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not (isinstance(value, ast.Attribute)
                    and value.attr == "protocol"):
                continue
            # <expr>.protocol.<node.attr>
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                yield self.finding(
                    ctx, node,
                    f"assignment to .protocol.{node.attr} from outside the "
                    "protocol; state changes must flow through messages "
                    "and the protocol's own hooks",
                )
                continue
            owner = value.value
            own = isinstance(owner, ast.Name) and owner.id == "self"
            if own:
                continue
            if node.attr.startswith("_") or node.attr not in _ALLOWED_REMOTE:
                yield self.finding(
                    ctx, node,
                    f"cross-node access .protocol.{node.attr} bypasses the "
                    "message flow; only the read-only introspection API "
                    f"({', '.join(sorted(_ALLOWED_REMOTE))}) may be read "
                    "off another node's protocol",
                )
