"""RL003: vector-clock aliasing across the node boundary.

Messages are shared objects: in the simulator an ``UpdateMessage`` (and
everything reachable from its payload) is the *same* Python object in
the sender's outgoing buffer, the network, every receiver, and the
trace.  Fidge-Mattern-style vectors (``Apply``, ``Write_co``,
``LastWriteOn``, per-variable past maps) are therefore a mutation
hazard: storing a payload value -- or shipping an internal mutable
vector -- without an explicit copy lets one process's later in-place
update silently rewrite another process's causal past.

Flagged patterns (zone ``core`` / ``protocols``):

1. storing a payload access into protocol state without a copy:
   ``self.last_write_on[v] = msg.payload[KEY]`` (use ``tuple(...)`` /
   ``dict(...)``);
2. a bare mutable vector attribute inside an outgoing message payload:
   ``payload={KEY: self.write_co}`` (ship ``tuple(self.write_co)``);
3. aliasing one internal mutable vector to another:
   ``self.known_apply[i] = self.apply_vec``;
4. a local that was placed in an outgoing payload later stored bare
   into protocol state (sender-side aliasing of an in-flight message);
5. returning a bare mutable vector (directly or inside a dict literal)
   from ``debug_state``/``stats``/``store_snapshot``-style
   introspection, which must return snapshots.

"Mutable vector attribute" means an instance attribute bound in
``__init__`` to a list/dict-producing expression (``[0] * n``, ``{}``,
comprehensions, ``list(...)``...).  Wrapping the value in ``tuple()``,
``dict()``, ``list()``, ``sorted()``, ``copy.deepcopy()`` etc. at the
store site satisfies the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["VectorAliasingRule"]

#: Calls that produce a fresh container (an explicit copy).
_COPY_WRAPPERS = {
    "tuple", "list", "dict", "set", "frozenset", "sorted",
    "copy.copy", "copy.deepcopy", "dict.copy",
}

#: Message constructors whose payload crosses the node boundary.
_MESSAGE_CTORS = {"UpdateMessage", "ControlMessage"}

#: Introspection methods that must return snapshots, not live state.
_SNAPSHOT_METHODS = {"debug_state", "stats"}


def _is_copy_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name in _COPY_WRAPPERS:
        return True
    # value.copy() method calls
    return isinstance(node.func, ast.Attribute) and node.func.attr == "copy"


def _is_payload_access(node: ast.AST) -> bool:
    """``<expr>.payload[...]`` or ``<expr>.payload.get(...)``."""
    if isinstance(node, ast.Subscript):
        return (
            isinstance(node.value, ast.Attribute)
            and node.value.attr == "payload"
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "get":
            inner = node.func.value
            return (
                isinstance(inner, ast.Attribute) and inner.attr == "payload"
            ) or _is_payload_access(inner)
    return False


def _is_immutable_expr(node: ast.AST) -> bool:
    """Expressions whose value cannot be mutated through an alias."""
    if isinstance(node, (ast.Constant, ast.Tuple)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("tuple", "frozenset")
    return False


class _ClassModel:
    """Per-class facts: mutable vector attrs + payload-shared locals."""

    def __init__(self, cls: ast.ClassDef):
        self.cls = cls
        self.mutable_attrs: Set[str] = set()
        init = next(
            (n for n in cls.body
             if isinstance(n, ast.FunctionDef) and n.name == "__init__"),
            None,
        )
        if init is None:
            return
        for node in ast.walk(init):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            if value is None or not self._mutable_container(value):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                name = dotted_name(target)
                if name and name.startswith("self."):
                    self.mutable_attrs.add(name.split(".", 1)[1])

    @staticmethod
    def _mutable_container(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.ListComp, ast.DictComp)):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            # [0] * n style vector initialization
            return isinstance(node.left, ast.List) or isinstance(
                node.right, ast.List
            )
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in ("list", "dict")
        return False

    def is_mutable_vec(self, node: ast.AST) -> bool:
        name = dotted_name(node)
        return (
            name is not None
            and name.startswith("self.")
            and name.split(".", 1)[1] in self.mutable_attrs
        )


@register
class VectorAliasingRule(Rule):
    code = "RL003"
    name = "vc-aliasing"
    summary = (
        "vector-clock payloads and internal vectors must be copied, "
        "never aliased, across the node boundary"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in ("core", "protocols"):
            return
        for cls in ctx.classes():
            model = _ClassModel(cls)
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                shared = self._payload_shared_locals(method)
                yield from self._check_method(ctx, model, method, shared)

    # -- per-method passes ----------------------------------------------------

    def _payload_shared_locals(self, method: ast.FunctionDef) -> Set[str]:
        """Local names that end up inside an outgoing message payload,
        excluding those bound to immutable expressions."""
        immutable: Set[str] = set()
        maybe_shared: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) and _is_immutable_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        immutable.add(target.id)
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _MESSAGE_CTORS):
                continue
            for kw in node.keywords:
                if kw.arg != "payload" or not isinstance(kw.value, ast.Dict):
                    continue
                for value in kw.value.values:
                    if isinstance(value, ast.Name):
                        maybe_shared.add(value.id)
        return maybe_shared - immutable

    def _check_method(
        self,
        ctx: ModuleContext,
        model: _ClassModel,
        method: ast.FunctionDef,
        shared_locals: Set[str],
    ) -> Iterator[Finding]:
        payload_aliases = self._payload_aliased_locals(method)
        for node in ast.walk(method):
            # patterns 1, 3, 4: assignments into self state
            if isinstance(node, ast.Assign):
                yield from self._check_store(
                    ctx, model, node, shared_locals, payload_aliases
                )
            # pattern 2: bare mutable vector inside a payload dict
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _MESSAGE_CTORS):
                for kw in node.keywords:
                    if kw.arg != "payload" or not isinstance(kw.value, ast.Dict):
                        continue
                    for value in kw.value.values:
                        if model.is_mutable_vec(value):
                            yield self.finding(
                                ctx, value,
                                f"mutable vector {dotted_name(value)} shipped "
                                "in a message payload without a copy; wrap "
                                "in tuple(...)",
                            )
            # pattern 5: snapshot methods returning live vectors
            if (method.name in _SNAPSHOT_METHODS
                    and isinstance(node, ast.Return)
                    and node.value is not None):
                yield from self._check_snapshot_return(ctx, model, node)

    def _payload_aliased_locals(self, method: ast.FunctionDef) -> Set[str]:
        """Locals bound directly to a payload access (no copy)."""
        aliases: Set[str] = set()
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if _is_payload_access(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        return aliases

    def _check_store(
        self,
        ctx: ModuleContext,
        model: _ClassModel,
        node: ast.Assign,
        shared_locals: Set[str],
        payload_aliases: Set[str],
    ) -> Iterator[Finding]:
        stores_to_self = any(
            (n := dotted_name(t)) is not None and n.startswith("self.")
            for t in node.targets
        ) or any(
            isinstance(t, ast.Subscript)
            and (n := dotted_name(t.value)) is not None
            and n.startswith("self.")
            for t in node.targets
        )
        if not stores_to_self:
            return
        value = node.value
        if _is_copy_call(value) or _is_immutable_expr(value):
            return
        # pattern 1: direct payload access stored into self state
        if _is_payload_access(value):
            yield self.finding(
                ctx, node,
                "message payload value stored into protocol state without "
                "a copy; wrap in tuple(...)/dict(...)",
            )
            return
        if isinstance(value, ast.Name):
            # pattern 4: sender-side alias of an in-flight payload value
            if value.id in shared_locals:
                yield self.finding(
                    ctx, node,
                    f"local {value.id!r} is part of an outgoing message "
                    "payload; storing it into protocol state aliases the "
                    "in-flight message -- store a copy",
                )
            # pattern 1 via a local alias of the payload
            elif value.id in payload_aliases:
                yield self.finding(
                    ctx, node,
                    f"local {value.id!r} aliases a message payload value; "
                    "storing it into protocol state needs an explicit copy",
                )
            return
        # pattern 3: aliasing an internal mutable vector
        if model.is_mutable_vec(value):
            yield self.finding(
                ctx, node,
                f"aliasing internal vector {dotted_name(value)}; a later "
                "in-place update would corrupt both holders -- store a copy",
            )

    def _check_snapshot_return(
        self, ctx: ModuleContext, model: _ClassModel, node: ast.Return
    ) -> Iterator[Finding]:
        value = node.value
        candidates: List[ast.AST] = []
        if isinstance(value, ast.Dict):
            candidates.extend(value.values)
        else:
            candidates.append(value)
        for cand in candidates:
            if model.is_mutable_vec(cand):
                yield self.finding(
                    ctx, cand,
                    f"introspection must return snapshots; "
                    f"{dotted_name(cand)} is live mutable state -- wrap in "
                    "tuple(...)/dict(...)",
                )
