"""RL009: no per-message vector allocation in flat-backend hot zones.

The flat state backend (:mod:`repro.core.flatstate`,
``docs/performance.md``) exists to make the per-delivery path
allocation-free: dependency rows are built **once per write** by
``FlatDeps.from_counts``, progress advances in place, and the
scheduler's predicate evaluation compares against preallocated arrays.
A ``list(...)``/``tuple(...)`` conversion inside the per-delivery hot
zone quietly reintroduces the per-message vector rebuild the backend
was built to eliminate -- the run stays correct, the speedup silently
evaporates, and only the benchmark sweep would notice.

Flat hot zones (zones ``sim`` / ``core`` / ``protocols``):

- the per-delivery methods of the flat classes (``Flat*``,
  ``PendingMatrix``): ``offer`` / ``notify_applied`` / ``pump`` /
  ``advance`` / ``ready_mask`` / ``add`` / ``remove``;
- any function or method whose name ends with ``_flat`` (the node's
  ``_receive_update_flat`` / ``_apply_flat`` receive path).

Flagged: any call to ``list`` / ``tuple`` (conversion or empty -- both
allocate per message).  Tuple *literals* like ``(sender, seq)`` keys
are fine: small fixed-arity keys, not vector rebuilds.  Constructors
(``__init__``, ``from_counts``, ``enable_flat_state``) and audit views
(``pending_matrix``, ``buffered``) run off the per-delivery path and
are deliberately out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

__all__ = ["FlatHotAllocRule", "iter_hot_zones"]

#: Per-delivery methods of the flat-backend classes.
_HOT_METHODS = {
    "offer", "notify_applied", "pump", "advance", "ready_mask",
    "add", "remove",
}

#: Class-name shapes the flat backend uses.
_FLAT_CLASS_PREFIX = "Flat"
_FLAT_CLASS_NAMES = {"PendingMatrix"}

_ALLOC_CALLS = {"list", "tuple"}


def _is_flat_class(name: str) -> bool:
    return name.startswith(_FLAT_CLASS_PREFIX) or name in _FLAT_CLASS_NAMES


def iter_hot_zones(ctx: ModuleContext):
    """Yield (function node, human-readable zone name) for every flat
    hot zone in the module -- shared with interprocedural RL104."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name.endswith("_flat"):
            yield node, f"{node.name}()"
            continue
        if node.name not in _HOT_METHODS:
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.ClassDef) and _is_flat_class(parent.name):
            yield node, f"{parent.name}.{node.name}()"


@register
class FlatHotAllocRule(Rule):
    code = "RL009"
    name = "flat-hot-alloc"
    summary = (
        "no per-message list/tuple vector allocation inside "
        "flat-backend hot zones"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.zone not in ("sim", "core", "protocols"):
            return
        for func, where in self._hot_zones(ctx):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name not in _ALLOC_CALLS:
                    continue
                yield self.finding(
                    ctx, node,
                    f"{name}(...) allocates a fresh vector per message "
                    f"inside flat hot zone {where}; use the "
                    "preallocated FlatDeps row / advance the progress "
                    "vector in place (repro.core.flatstate)",
                )

    def _hot_zones(self, ctx: ModuleContext):
        """Yield (function node, human-readable zone name) pairs."""
        yield from iter_hot_zones(ctx)
