"""Flow-aware rules RL101-RL104 (require ``repro-dsm lint --flow``).

These rules consume the shared :class:`repro.lint.flow.FlowAnalysis`
the runner attaches as ``ctx.flow``; without it (plain syntactic runs)
they stay silent.  Each closes a hole its syntactic sibling cannot:

RL101 (``payload-escape``)
    RL003 sees a bare ``self.write_co`` inside a payload dict, but not
    a local alias of it, not a post-construction
    ``msg.payload[k] = self._scratch`` store (the LeakyOptP mutant),
    and not a fresh vector mutated *after* the send.  The escape
    domain tracks all three through branches and loops, and the
    whole-program payload key summary proves the repo's
    tuple-on-the-wire keys immutable instead of re-flagging every
    receive-side store.

RL102 (``vc-monotonic``)
    Vector clocks only ever grow (Fidge-Mattern; the paper's
    Theorem 3 safety argument leans on ``Apply``/``Write_co``
    monotonicity).  Flags component decrements/resets, whole-vector
    rebinds, unsanctioned component stores (join/increment/guarded-max
    idioms are sanctioned), and delivery-condition loops that skip
    leading vector components (the BrokenANBKH mutant).

RL103 (``transitive-nondet``)
    RL001/RL002 only see a source written directly inside a
    determinism zone.  A helper in ``runtime``/``obs``/anywhere else
    that reads a wall clock re-enters through any call; the call graph
    reports the chain.

RL104 (``flat-hot-alloc-transitive``)
    RL009 through callees: a hot method that calls a helper which
    allocates ``list``/``tuple`` per message defeats the flat backend
    just as surely as allocating inline.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.context import ModuleContext, dotted_name
from repro.lint.findings import Finding
from repro.lint.flow.escape import (
    ESCAPED,
    FROZEN,
    LIVE,
    MUTABLE,
    PAYLOAD,
    _payload_key_of,
    iter_local_mutations,
    iter_payload_placements,
)
from repro.lint.registry import Rule, register
from repro.lint.rules.aliasing import (
    _ClassModel,
    _is_copy_call,
    _is_payload_access,
)
from repro.lint.rules.flatalloc import iter_hot_zones

__all__ = [
    "InterproceduralAllocRule",
    "PayloadEscapeRule",
    "TransitiveNondetRule",
    "VectorClockMonotonicityRule",
]


def _class_models(info):
    return {name: _ClassModel(node) for name, node in info.classes.items()}


def _is_negative(expr: ast.AST) -> bool:
    return (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
    ) or (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, (int, float))
        and expr.value < 0
    )


@register
class PayloadEscapeRule(Rule):
    code = "RL101"
    name = "payload-escape"
    summary = (
        "objects reachable from a sent payload must not be mutated "
        "after send nor aliased into mutable state after receive"
    )
    requires_flow = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        flow = ctx.flow
        if flow is None or ctx.zone not in ("core", "protocols"):
            return
        info = flow.module_for(ctx)
        if info is None:
            return
        models = _class_models(info)
        for fn in info.functions.values():
            model = models.get(fn.cls_name) if fn.cls_name else None
            before, cfg = flow.escape_states(fn, model)
            for block in cfg.blocks:
                for stmt in block.stmts:
                    state = before.get(id(stmt), {})
                    yield from self._check_stmt(
                        ctx, flow, fn, model, stmt, state)

    def _check_stmt(self, ctx, flow, fn, model, stmt, state):
        # sender side: live mutable state placed bare into a payload
        for _key, value, anchor in iter_payload_placements(stmt):
            if model is not None and isinstance(value, ast.Attribute) \
                    and model.is_mutable_vec(value):
                yield self.finding(
                    ctx, anchor,
                    f"live mutable state {dotted_name(value)} escapes "
                    "into a message payload; every receiver would share "
                    "the sender's object -- ship tuple(...)",
                )
            elif isinstance(value, ast.Name):
                flags = state.get(value.id, frozenset())
                if LIVE in flags and MUTABLE in flags \
                        and FROZEN not in flags:
                    yield self.finding(
                        ctx, anchor,
                        f"local {value.id!r} aliases live mutable state "
                        "and escapes into a message payload without a "
                        "copy -- ship tuple(...)",
                    )
        # sender side: mutation of a value already shipped in a payload
        for name, anchor in iter_local_mutations(stmt, fn, flow.graph):
            flags = state.get(name, frozenset())
            if FROZEN in flags:
                continue
            if ESCAPED in flags and MUTABLE in flags:
                yield self.finding(
                    ctx, anchor,
                    f"local {name!r} was shipped in a message payload "
                    "and is mutated afterwards; in-flight messages "
                    "would change under the receiver's feet",
                )
            elif PAYLOAD in flags and MUTABLE in flags:
                yield self.finding(
                    ctx, anchor,
                    f"local {name!r} aliases an incoming payload value "
                    "and is mutated in place; copy before mutating",
                )
        # receiver side: payload value stored into state while the key
        # is known (whole-program) to carry a mutable object
        if isinstance(stmt, ast.Assign) \
                and _is_payload_access(stmt.value) \
                and not _is_copy_call(stmt.value):
            stores_to_self = any(
                (n := dotted_name(t)) is not None and n.startswith("self.")
                for t in stmt.targets
            ) or any(
                isinstance(t, ast.Subscript)
                and (n := dotted_name(t.value)) is not None
                and n.startswith("self.")
                for t in stmt.targets
            )
            if stores_to_self:
                token = _payload_key_of(stmt.value)
                if flow.payload_keys.lookup(token) == MUTABLE:
                    yield self.finding(
                        ctx, stmt,
                        f"payload key {token} carries a mutable object "
                        "(see its senders); storing it into protocol "
                        "state aliases the in-flight message -- copy "
                        "first",
                    )


def _vector_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attrs bound in ``__init__`` to ``[c] * n`` -- the vector-clock
    initialization shape every protocol in the repo uses."""
    init = next(
        (n for n in cls.body
         if isinstance(n, ast.FunctionDef) and n.name == "__init__"),
        None,
    )
    out: Set[str] = set()
    if init is None:
        return out
    for node in ast.walk(init):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None or not (
            isinstance(value, ast.BinOp)
            and isinstance(value.op, ast.Mult)
            and (isinstance(value.left, ast.List)
                 or isinstance(value.right, ast.List))
        ):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            name = dotted_name(target)
            if name and name.startswith("self."):
                out.add(name.split(".", 1)[1])
    return out


@register
class VectorClockMonotonicityRule(Rule):
    code = "RL102"
    name = "vc-monotonic"
    summary = (
        "vector-clock components only grow: no decrements, resets, "
        "rebinds, or delivery loops that skip components"
    )
    requires_flow = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        flow = ctx.flow
        if flow is None or ctx.zone not in ("core", "protocols"):
            return
        for cls in ctx.classes():
            vectors = _vector_attrs(cls)
            for method in cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                payload_vecs = self._payload_vector_locals(method)
                for node in ast.walk(method):
                    if method.name != "__init__":
                        yield from self._check_store(
                            ctx, cls, node, vectors)
                    yield from self._check_skipped_loop(
                        ctx, node, vectors, payload_vecs)

    # -- stores -------------------------------------------------------------

    def _check_store(self, ctx, cls, node, vectors) -> Iterator[Finding]:
        if isinstance(node, ast.AugAssign):
            attr = self._vc_component_target(node.target, vectors)
            if attr is None:
                return
            if isinstance(node.op, ast.Sub):
                yield self.finding(
                    ctx, node,
                    f"decrement of vector-clock component self.{attr}"
                    "[...]; causal clocks are monotone -- only "
                    "join/increment may update them",
                )
            elif isinstance(node.op, ast.Add) and _is_negative(node.value):
                yield self.finding(
                    ctx, node,
                    f"negative increment of vector-clock component "
                    f"self.{attr}[...]; causal clocks are monotone",
                )
            return
        if not isinstance(node, ast.Assign):
            return
        for target in node.targets:
            attr = self._vc_component_target(target, vectors)
            if attr is not None:
                if not self._sanctioned_store(ctx, node, attr):
                    yield self.finding(
                        ctx, node,
                        f"store to vector-clock component self.{attr}"
                        "[...] bypasses the join/increment discipline "
                        "(allowed: self.X[i] + c, max(self.X[i], ...), "
                        "or a greater-than guard)",
                    )
                continue
            name = dotted_name(target)
            if name is not None and name.startswith("self.") \
                    and name.split(".", 1)[1] in vectors:
                value_name = dotted_name(node.value) or ""
                if isinstance(node.value, ast.Call) \
                        and "join" in (dotted_name(node.value.func) or ""):
                    continue
                yield self.finding(
                    ctx, node,
                    f"whole-vector rebind of {name} outside __init__; "
                    "rebinding a shared clock breaks every alias "
                    f"({value_name or 'value'} may come from an "
                    "untrusted source) -- update components via "
                    "join/increment instead",
                )

    @staticmethod
    def _vc_component_target(target: ast.AST,
                             vectors: Set[str]) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            name = dotted_name(target.value)
            if name is not None and name.startswith("self."):
                attr = name.split(".", 1)[1]
                if attr in vectors:
                    return attr
        return None

    def _sanctioned_store(self, ctx, node: ast.Assign, attr: str) -> bool:
        # RHS that reads the same component (increment / max idioms)
        if self._references_attr(node.value, attr):
            return True
        # guarded-max: `if v > self.X[t]: self.X[t] = v`
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.If, ast.While)) \
                    and self._references_attr(anc.test, attr):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        return False

    @staticmethod
    def _references_attr(expr: ast.AST, attr: str) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Subscript) \
                    and dotted_name(sub.value) == f"self.{attr}":
                return True
        return False

    # -- skipped-component delivery loops -----------------------------------

    @staticmethod
    def _payload_vector_locals(method: ast.FunctionDef) -> Set[str]:
        out: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign) \
                    and _is_payload_access(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
        return out

    def _check_skipped_loop(self, ctx, node, vectors,
                            payload_vecs) -> Iterator[Finding]:
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            return
        it = node.iter
        if not (isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "range"
                and len(it.args) >= 2
                and isinstance(it.args[0], ast.Constant)
                and isinstance(it.args[0].value, int)
                and it.args[0].value != 0):
            return
        if not isinstance(node.target, ast.Name):
            return
        loop_var = node.target.id
        start = it.args[0].value
        for body_stmt in node.body:
            for sub in ast.walk(body_stmt):
                if not isinstance(sub, ast.Compare):
                    continue
                if self._compares_vector(sub, loop_var, vectors,
                                         payload_vecs):
                    yield self.finding(
                        ctx, node,
                        f"range({start}, ...) loop in a causal "
                        "delivery condition skips vector component(s) "
                        f"0..{start - 1}; dependencies on those "
                        "writers are silently ignored",
                    )
                    return

    @staticmethod
    def _compares_vector(cmp: ast.Compare, loop_var: str,
                         vectors: Set[str], payload_vecs: Set[str]) -> bool:
        for sub in ast.walk(cmp):
            if not isinstance(sub, ast.Subscript):
                continue
            if not (isinstance(sub.slice, ast.Name)
                    and sub.slice.id == loop_var):
                continue
            base = dotted_name(sub.value)
            if base is None:
                continue
            if base in payload_vecs:
                return True
            if base.startswith("self.") \
                    and base.split(".", 1)[1] in vectors:
                return True
        return False


@register
class TransitiveNondetRule(Rule):
    code = "RL103"
    name = "transitive-nondet"
    summary = (
        "calls from sim/core/protocols must not reach wall-clock, "
        "entropy, or set-iteration sources through helpers"
    )
    requires_flow = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        flow = ctx.flow
        if flow is None or ctx.zone not in ("sim", "core", "protocols"):
            return
        info = flow.module_for(ctx)
        if info is None:
            return
        for fn in info.functions.values():
            for call, kind, name in fn.calls:
                callee = flow.graph.resolve(fn, kind, name)
                if callee is None or callee is fn:
                    continue
                hit = flow.graph.nondet_path(callee)
                if hit is None:
                    continue
                desc, chain = hit
                yield self.finding(
                    ctx, call,
                    f"call reaches a nondeterministic source: "
                    f"{' -> '.join(chain)} -> {desc}; replay in this "
                    "zone must be byte-identical",
                )


@register
class InterproceduralAllocRule(Rule):
    code = "RL104"
    name = "flat-hot-alloc-transitive"
    summary = (
        "flat-backend hot zones must not allocate vectors through "
        "callees either"
    )
    requires_flow = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        flow = ctx.flow
        if flow is None or ctx.zone not in ("sim", "core", "protocols"):
            return
        info = flow.module_for(ctx)
        if info is None:
            return
        for func, where in iter_hot_zones(ctx):
            fn = info.by_node.get(id(func))
            if fn is None:
                continue
            for call, kind, name in fn.calls:
                callee = flow.graph.resolve(fn, kind, name)
                if callee is None or callee is fn:
                    continue
                hit = flow.graph.alloc_path(callee)
                if hit is None:
                    continue
                desc, chain = hit
                yield self.finding(
                    ctx, call,
                    f"call from flat hot zone {where} transitively "
                    f"allocates a vector per message: "
                    f"{' -> '.join(chain)} -> {desc}; hoist the "
                    "allocation out of the per-delivery path",
                )
