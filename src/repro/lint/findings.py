"""Finding objects and report rendering for :mod:`repro.lint`.

A :class:`Finding` is one rule violation anchored to a file/line; a
:class:`LintReport` aggregates the findings of a run plus bookkeeping
(files scanned, rules applied) and renders them as human-readable text
or machine-readable JSON (the CI artifact format).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["Finding", "LintReport"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: short rule identifier (e.g. ``"determinism"``) for grouping.
    rule: str = field(default="", compare=False)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_applied: Sequence[str] = ()
    #: findings silenced by inline ``# reprolint: disable=`` comments
    #: (kept for introspection; not part of the pass/fail verdict).
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return counts

    def to_text(self) -> str:
        lines = [f.render() for f in sorted(self.findings)]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_scanned} "
            f"file(s) ({len(self.suppressed)} suppressed)"
        )
        if lines:
            return "\n".join(lines) + "\n" + summary
        return summary

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        doc = {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules_applied": list(self.rules_applied),
            "counts": self.counts_by_code(),
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
        }
        return json.dumps(doc, indent=indent, sort_keys=True)
