"""Inline suppression comments: ``# reprolint: disable=RL001[,RL002]``.

A suppression applies to findings reported on the same physical line as
the comment.  ``disable=all`` silences every code on that line.  Each
suppression must actually silence something: a disable comment whose
codes never fire on its line is itself reported (code ``RL900``), so
stale suppressions cannot accumulate after the underlying code is
fixed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding

__all__ = ["SuppressionTable", "UNUSED_SUPPRESSION", "parse_suppressions"]

#: Code reported for a disable comment that silenced nothing.
UNUSED_SUPPRESSION = "RL900"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable="
    r"(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass
class _LineSuppression:
    line: int
    codes: Set[str]
    used: Set[str] = field(default_factory=set)


class SuppressionTable:
    """Per-file map of line -> suppressed codes, with usage tracking."""

    def __init__(self, path: str):
        self.path = path
        self._by_line: Dict[int, _LineSuppression] = {}

    def add(self, line: int, codes: Set[str]) -> None:
        entry = self._by_line.get(line)
        if entry is None:
            self._by_line[line] = _LineSuppression(line, set(codes))
        else:
            entry.codes |= codes

    def suppresses(self, finding: Finding) -> bool:
        """True (and mark the directive used) if ``finding`` is silenced."""
        entry = self._by_line.get(finding.line)
        if entry is None:
            return False
        if "all" in entry.codes:
            entry.used.add("all")
            return True
        if finding.code in entry.codes:
            entry.used.add(finding.code)
            return True
        return False

    def entries(self):
        """Iterate ``(line, codes)`` pairs (read-only introspection)."""
        for line, entry in self._by_line.items():
            yield line, set(entry.codes)

    def unused(self, active: Optional[Set[str]] = None) -> List[Finding]:
        """RL900 findings for directives (or codes) that silenced nothing.

        ``active`` is the set of rule codes this run actually checked;
        a directive for a code outside it (e.g. ``disable=RL101`` in a
        run without ``--flow``, or under ``--select``) is not stale --
        the rule never had the chance to fire.  ``None`` keeps the
        historical behavior of judging every code.
        """
        out = []
        for entry in sorted(self._by_line.values(), key=lambda e: e.line):
            stale = sorted(entry.codes - entry.used)
            if active is not None:
                stale = [c for c in stale if c in active or c == "all"]
            if stale:
                out.append(Finding(
                    path=self.path,
                    line=entry.line,
                    col=1,
                    code=UNUSED_SUPPRESSION,
                    rule="suppression",
                    message=(
                        "unused suppression: disable="
                        + ",".join(stale)
                        + " silences nothing on this line"
                    ),
                ))
        return out


def parse_suppressions(path: str, source: str) -> SuppressionTable:
    """Scan ``source`` for disable directives (line numbers are 1-based).

    Only genuine ``COMMENT`` tokens count: a directive quoted inside a
    docstring (e.g. documentation *about* suppressions) is ignored.
    Tokenization errors fall back to no suppressions -- the runner
    reports the syntax error separately.
    """
    table = SuppressionTable(path)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for lineno, text in comments:
        m = _DIRECTIVE.search(text)
        if m:
            codes = {
                c.strip() for c in m.group("codes").split(",") if c.strip()
            }
            if codes:
                table.add(lineno, codes)
    return table
