"""repro.lint.flow: interprocedural, flow- and alias-aware analysis.

The package layers three pieces on top of the syntactic rule
framework (docs/static-analysis.md, "Flow analysis"):

- :mod:`repro.lint.flow.cfg` -- per-function control-flow graphs;
- :mod:`repro.lint.flow.callgraph` -- module-granular call graph with
  per-function summaries and zone-aware transitive queries;
- :mod:`repro.lint.flow.dataflow` / :mod:`repro.lint.flow.escape` --
  a forward dataflow engine over a frozen/mutable/escaped-into-payload
  abstract domain, plus the whole-program payload key summary.

:class:`FlowAnalysis` bundles them for one lint run.  The runner
builds it once over every parseable file in the run and attaches it to
each module's context as ``ctx.flow``; rules marked
``requires_flow = True`` read it from there and stay silent when it is
absent (non-flow runs).
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Sequence

from repro.lint.context import ModuleContext
from repro.lint.flow.callgraph import CallGraph, FuncInfo, ModuleInfo
from repro.lint.flow.cfg import CFG, Block, build_cfg
from repro.lint.flow.dataflow import ForwardAnalysis, State
from repro.lint.flow.escape import EscapeAnalysis, PayloadSummary

__all__ = [
    "Block", "CFG", "CallGraph", "EscapeAnalysis", "FlowAnalysis",
    "ForwardAnalysis", "FuncInfo", "ModuleInfo", "PayloadSummary",
    "State", "build_cfg", "build_flow",
]


class FlowAnalysis:
    """Whole-run flow facts shared by every ``requires_flow`` rule."""

    def __init__(self, contexts: Sequence[ModuleContext]):
        self.modules: Dict[str, ModuleInfo] = {}
        infos = []
        for ctx in contexts:
            info = ModuleInfo(ctx)
            self.modules[str(ctx.path)] = info
            infos.append(info)
        self.graph = CallGraph(infos)
        self.payload_keys = PayloadSummary.build(infos, self.graph)

    def module_for(self, ctx: ModuleContext) -> Optional[ModuleInfo]:
        return self.modules.get(str(ctx.path))

    def escape_states(self, fn: FuncInfo, model):
        """``(before-states, cfg)`` of ``fn`` under the escape domain."""
        cfg = build_cfg(fn.node)
        analysis = EscapeAnalysis(model, fn, self.graph, self.payload_keys)
        return analysis.run(cfg), cfg


def build_flow(contexts: Sequence[ModuleContext]) -> FlowAnalysis:
    """Build the shared :class:`FlowAnalysis` for a set of modules."""
    return FlowAnalysis(contexts)
