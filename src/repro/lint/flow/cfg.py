"""Per-function control-flow graphs for the flow-aware lint rules.

A :class:`CFG` is a graph of basic blocks over the *statements* of one
function body.  It is deliberately lint-grade:

- expressions never split blocks -- a comprehension or ternary stays
  inside the statement that contains it;
- nested ``def``/``class`` statements are ordinary statements of the
  enclosing block (they bind a name; their bodies get their own CFG
  when analyzed);
- ``try`` bodies conservatively assume an exception can occur after
  any statement, so every block of the ``try`` suite gets an edge to
  every handler;
- ``finally`` suites are routed on *all* exits of the protected
  region, so a dataflow fact established in ``finally`` dominates the
  statements after the ``try``.

Compound statements (``if``/``for``/``while``/``with``/``try``) are
*not* appended to any block; only their simple-statement leaves are.
The one exception is ``for``: the loop statement itself is placed in
its header block so a transfer function can model the target binding
(``for x in xs`` assigns ``x`` once per iteration).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

__all__ = ["Block", "CFG", "build_cfg"]


class Block:
    """A basic block: straight-line statements plus graph edges."""

    def __init__(self, bid: int):
        self.bid = bid
        self.stmts: List[ast.stmt] = []
        self.succs: List["Block"] = []
        self.preds: List["Block"] = []

    def add_edge(self, other: "Block") -> None:
        if other not in self.succs:
            self.succs.append(other)
            other.preds.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Block({self.bid}, stmts={len(self.stmts)})"


class CFG:
    """Control-flow graph of one function definition."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: List[Block] = []
        builder = _Builder(self)
        self.entry, self.exit = builder.build(func)

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block


class _Builder:
    """Recursive CFG construction with loop/finally context stacks."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: (continue target, break target) per enclosing loop.
        self._loops: List[Tuple[Block, Block]] = []

    def build(self, func: ast.AST) -> Tuple[Block, Block]:
        entry = self.cfg.new_block()
        exit_block = self.cfg.new_block()
        self._exit = exit_block
        end = self.visit_body(func.body, entry)
        if end is not None:
            end.add_edge(exit_block)
        return entry, exit_block

    def visit_body(
        self, stmts: List[ast.stmt], cur: Optional[Block]
    ) -> Optional[Block]:
        """Thread ``stmts`` through the graph; None means unreachable
        (the previous statement left the block via return/break/...)."""
        for stmt in stmts:
            if cur is None:
                # Unreachable suffix; keep building so every statement
                # still belongs to some block (with no predecessors).
                cur = self.cfg.new_block()
            cur = self.visit_stmt(stmt, cur)
        return cur

    def visit_stmt(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)  # models optional `as name` binding
            return self.visit_body(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._visit_match(stmt, cur)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cur.stmts.append(stmt)
            cur.add_edge(self._exit)
            return None
        if isinstance(stmt, ast.Break):
            cur.stmts.append(stmt)
            if self._loops:
                cur.add_edge(self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            cur.stmts.append(stmt)
            if self._loops:
                cur.add_edge(self._loops[-1][0])
            return None
        cur.stmts.append(stmt)
        return cur

    def _visit_if(self, stmt: ast.If, cur: Block) -> Optional[Block]:
        then_entry = self.cfg.new_block()
        cur.add_edge(then_entry)
        then_end = self.visit_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            cur.add_edge(else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
        else:
            else_end = cur  # fallthrough when the test is false
        if then_end is None and else_end is None:
            return None
        after = self.cfg.new_block()
        for end in (then_end, else_end):
            if end is not None:
                end.add_edge(after)
        return after

    def _visit_while(self, stmt: ast.While, cur: Block) -> Block:
        header = self.cfg.new_block()
        after = self.cfg.new_block()
        cur.add_edge(header)
        header.add_edge(after)  # loop may not run / exits
        self._loops.append((header, after))
        body_entry = self.cfg.new_block()
        header.add_edge(body_entry)
        body_end = self.visit_body(stmt.body, body_entry)
        if body_end is not None:
            body_end.add_edge(header)  # back edge
        self._loops.pop()
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            header.add_edge(else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_edge(after)
        return after

    def _visit_for(self, stmt: ast.AST, cur: Block) -> Block:
        header = self.cfg.new_block()
        header.stmts.append(stmt)  # transfer models the target binding
        after = self.cfg.new_block()
        cur.add_edge(header)
        header.add_edge(after)
        self._loops.append((header, after))
        body_entry = self.cfg.new_block()
        header.add_edge(body_entry)
        body_end = self.visit_body(stmt.body, body_entry)
        if body_end is not None:
            body_end.add_edge(header)
        self._loops.pop()
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            header.add_edge(else_entry)
            else_end = self.visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_edge(after)
        return after

    def _visit_try(self, stmt: ast.Try, cur: Block) -> Optional[Block]:
        body_entry = self.cfg.new_block()
        cur.add_edge(body_entry)
        first_body_block = len(self.cfg.blocks) - 1
        body_end = self.visit_body(stmt.body, body_entry)
        body_blocks = self.cfg.blocks[first_body_block:]

        handler_ends: List[Optional[Block]] = []
        for handler in stmt.handlers:
            h_entry = self.cfg.new_block()
            if handler.name:
                h_entry.stmts.append(handler)  # models `as name`
            # an exception may fire after any statement of the suite
            for block in body_blocks:
                block.add_edge(h_entry)
            handler_ends.append(self.visit_body(handler.body, h_entry))

        if stmt.orelse and body_end is not None:
            body_end = self.visit_body(stmt.orelse, body_end)

        ends = [e for e in [body_end] + handler_ends if e is not None]
        if stmt.finalbody:
            fin_entry = self.cfg.new_block()
            for end in ends:
                end.add_edge(fin_entry)
            if not ends:
                # all paths return/raise; finally still runs on the way
                for block in body_blocks:
                    block.add_edge(fin_entry)
            return self.visit_body(stmt.finalbody, fin_entry)
        if not ends:
            return None
        after = self.cfg.new_block()
        for end in ends:
            end.add_edge(after)
        return after

    def _visit_match(self, stmt: ast.Match, cur: Block) -> Optional[Block]:
        ends = []
        for case in stmt.cases:
            c_entry = self.cfg.new_block()
            cur.add_edge(c_entry)
            ends.append(self.visit_body(case.body, c_entry))
        after = self.cfg.new_block()
        cur.add_edge(after)  # no case may match
        for end in ends:
            if end is not None:
                end.add_edge(after)
        return after


def build_cfg(func: ast.AST) -> CFG:
    """CFG of a ``FunctionDef`` / ``AsyncFunctionDef``."""
    return CFG(func)
