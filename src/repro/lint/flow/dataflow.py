"""A small forward dataflow engine over :mod:`repro.lint.flow.cfg`.

The engine is generic: a client subclasses :class:`ForwardAnalysis`,
provides the entry state and a per-statement transfer function, and
gets back the fixpoint *before*-state of every statement (keyed by
statement identity).  States are ``{name: frozenset(flags)}`` maps;
the join is pointwise set union, so the lattice has finite height
(``|names| x |flags|``) and the worklist terminates.

Used by :mod:`repro.lint.flow.escape` to track frozen / mutable /
escaped-into-payload facts through branches and loops -- e.g. a vector
that escapes into a payload inside a loop body is already ESCAPED when
the next iteration mutates it, which a single linear scan would miss.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List

from repro.lint.flow.cfg import CFG, Block

__all__ = ["ForwardAnalysis", "State", "join_states"]

#: Abstract state: local name -> set of domain flags.
State = Dict[str, FrozenSet[str]]


def join_states(a: State, b: State) -> State:
    """Pointwise union -- the may-analysis join."""
    out = dict(a)
    for name, flags in b.items():
        prev = out.get(name)
        out[name] = flags if prev is None else prev | flags
    return out


class ForwardAnalysis:
    """Worklist fixpoint over a CFG; subclasses define the transfer."""

    def entry_state(self, func: ast.AST) -> State:
        return {}

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        raise NotImplementedError

    def run(self, cfg: CFG) -> Dict[int, State]:
        """Fixpoint; returns ``id(stmt) -> state before stmt``."""
        block_in: Dict[int, State] = {cfg.entry.bid: self.entry_state(cfg.func)}
        block_out: Dict[int, State] = {}
        worklist: List[Block] = [cfg.entry]
        while worklist:
            block = worklist.pop()
            state = block_in.get(block.bid, {})
            for stmt in block.stmts:
                state = self.transfer(stmt, state)
            old_out = block_out.get(block.bid)
            if old_out == state and old_out is not None:
                continue
            block_out[block.bid] = state
            for succ in block.succs:
                merged = join_states(block_in.get(succ.bid, {}), state)
                if merged != block_in.get(succ.bid):
                    block_in[succ.bid] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        # second pass: record the before-state of every statement
        before: Dict[int, State] = {}
        for block in cfg.blocks:
            state = block_in.get(block.bid, {})
            for stmt in block.stmts:
                before[id(stmt)] = state
                state = self.transfer(stmt, state)
        return before
