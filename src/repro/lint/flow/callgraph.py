"""Module-granular call graph with zone-aware transitive queries.

Each analyzed module contributes a :class:`ModuleInfo`: its functions
(top-level and methods, keyed by qualified name), its import table,
and per-function summaries --

- ``sources``: direct RL001-style nondeterminism (wall clock, entropy,
  unseeded randomness) and RL002-style set iteration, minus any site
  the module's own ``# reprolint: disable=`` comments sanction;
- ``allocs``: ``list(...)`` / ``tuple(...)`` vector allocations;
- ``calls``: outgoing call references (plain names, dotted
  module-function names, and ``self.method(...)``);
- ``mutates_params``: parameter positions the body mutates in place
  (``vc_join_inplace`` style);
- ``returns_frozen``: every return value is provably immutable.

Resolution is deliberately conservative: only plain function names,
``module.function`` chains through the import table, and
``self.method`` against same-module class bodies resolve.  Duck-typed
attribute calls (``self.protocol.flat_deps(...)``) stay unresolved and
are skipped by the consuming rules, which keeps the analysis free of
speculative edges -- a finding always names a concrete chain.

Zone reachability: :meth:`CallGraph.nondet_path` only reports sources
that live *outside* the determinism zones -- a source inside
``sim``/``core``/``protocols``/``sweep`` is already flagged at its own
site by syntactic RL001/RL002, and double-reporting it transitively
would only add noise.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.context import DETERMINISM_ZONES, ModuleContext, dotted_name
from repro.lint.rules.determinism import (
    NondeterministicCallRule,
    _collect_set_bindings,
    _is_set_expr,
)
from repro.lint.suppress import parse_suppressions

__all__ = ["CallGraph", "FuncInfo", "ModuleInfo"]

#: Directive codes that sanction a nondeterminism source at its site.
_SOURCE_WAIVERS = {"RL001", "RL002", "RL103", "all"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "sort", "reverse", "add", "discard",
}

_ALLOC_NAMES = {"list", "tuple"}

_detector = NondeterministicCallRule()


def _shallow_walk(root: ast.AST):
    """``ast.walk`` that does not descend into nested defs/classes."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_frozen_expr(node: Optional[ast.AST]) -> bool:
    if node is None:
        return True  # bare `return` -> None
    if isinstance(node, (ast.Constant, ast.Tuple)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("tuple", "frozenset")
    return False


class FuncInfo:
    """Summary of one function/method body."""

    def __init__(self, module: "ModuleInfo", qualname: str,
                 node: ast.AST, cls_name: Optional[str]):
        self.module = module
        self.qualname = qualname
        self.node = node
        self.cls_name = cls_name
        self.lineno = node.lineno
        #: (line, human description) of direct nondeterminism sources.
        self.sources: List[Tuple[int, str]] = []
        #: (line, "list"/"tuple") of vector allocations.
        self.allocs: List[Tuple[int, str]] = []
        #: (call node, kind, name); kind is "plain" or "self".
        self.calls: List[Tuple[ast.Call, str, str]] = []
        self.mutates_params: Set[int] = set()
        self.returns_frozen = False
        self._summarize()

    @property
    def label(self) -> str:
        return f"{self.module.display}:{self.qualname}"

    def _summarize(self) -> None:
        node = self.node
        params = [a.arg for a in node.args.posonlyargs
                  + node.args.args + node.args.kwonlyargs]
        param_index = {p: i for i, p in enumerate(params)}
        set_names = self.module.set_names
        waived = self.module.source_waived_lines
        returns: List[ast.Return] = []
        for sub in _shallow_walk(node):
            if isinstance(sub, ast.Call):
                self._summarize_call(sub, waived)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                if self._unordered(sub.iter, set_names) \
                        and sub.iter.lineno not in waived:
                    self.sources.append(
                        (sub.iter.lineno, "set iteration"))
            elif isinstance(sub, (ast.ListComp, ast.SetComp,
                                  ast.DictComp, ast.GeneratorExp)):
                for gen in sub.generators:
                    if self._unordered(gen.iter, set_names) \
                            and gen.iter.lineno not in waived:
                        self.sources.append(
                            (gen.iter.lineno, "set iteration"))
            elif isinstance(sub, ast.Return):
                returns.append(sub)
            self._summarize_mutation(sub, param_index)
        self.returns_frozen = bool(returns) and all(
            _is_frozen_expr(r.value) for r in returns
        )

    def _summarize_call(self, call: ast.Call, waived: Set[int]) -> None:
        desc = _detector._violation(call)
        if desc is not None:
            if call.lineno not in waived:
                self.sources.append((call.lineno, desc))
            return
        name = dotted_name(call.func)
        if name is None:
            return
        if name in _ALLOC_NAMES:
            self.allocs.append((call.lineno, name))
            return
        if "." not in name:
            self.calls.append((call, "plain", name))
        elif name.startswith("self.") and name.count(".") == 1:
            self.calls.append((call, "self", name.split(".", 1)[1]))
        else:
            root = name.split(".", 1)[0]
            if root != "self":
                self.calls.append((call, "plain", name))

    def _summarize_mutation(
        self, sub: ast.AST, param_index: Dict[str, int]
    ) -> None:
        targets: Sequence[ast.AST] = ()
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, ast.AugAssign):
            targets = (sub.target,)
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)) \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in param_index:
                self.mutates_params.add(param_index[target.value.id])
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in param_index):
            self.mutates_params.add(param_index[sub.func.value.id])

    @staticmethod
    def _unordered(it: ast.AST, set_names: Set[str]) -> bool:
        if _is_set_expr(it):
            return True
        name = dotted_name(it)
        return name is not None and name in set_names


class ModuleInfo:
    """Per-module facts: functions, imports, suppression waivers."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.path = ctx.path
        self.zone = ctx.zone
        self.dotted = _dotted_module(ctx.path)
        self.display = ctx.path.name
        self.set_names = _collect_set_bindings(ctx.tree)
        self.source_waived_lines = self._waived_lines(ctx)
        #: local name -> (module string, remote name) from `from X import y`.
        self.import_from: Dict[str, Tuple[str, str]] = {}
        #: alias -> module string from `import X [as y]`.
        self.import_mod: Dict[str, str] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.functions: Dict[str, FuncInfo] = {}
        self._collect()
        #: AST identity -> summary, for rules that walk the tree.
        self.by_node: Dict[int, FuncInfo] = {
            id(fn.node): fn for fn in self.functions.values()
        }

    @staticmethod
    def _waived_lines(ctx: ModuleContext) -> Set[int]:
        table = parse_suppressions(str(ctx.path), ctx.source)
        return {
            line for line, entry in table.entries()
            if entry & _SOURCE_WAIVERS
        }

    def _collect(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.import_from[alias.asname or alias.name] = (
                        node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_mod[alias.asname or alias.name] = alias.name
        for node in self.ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = FuncInfo(
                    self, node.name, node, None)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{node.name}.{item.name}"
                        self.functions[qual] = FuncInfo(
                            self, qual, item, node.name)

    def base_names(self, cls_name: str) -> List[str]:
        cls = self.classes.get(cls_name)
        if cls is None:
            return []
        out = []
        for base in cls.bases:
            name = dotted_name(base)
            if name:
                out.append(name.rsplit(".", 1)[-1])
        return out


def _dotted_module(path: Path) -> str:
    parts = list(path.parts)
    parts[-1] = path.stem
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif len(parts) > 4:
        parts = parts[-4:]
    return ".".join(parts)


class CallGraph:
    """Cross-module resolution plus memoized transitive queries."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        #: dotted suffix -> module; ambiguous suffixes resolve to None.
        self.by_suffix: Dict[str, Optional[ModuleInfo]] = {}
        for mod in self.modules:
            segs = mod.dotted.split(".")
            for i in range(len(segs)):
                suffix = ".".join(segs[i:])
                if suffix in self.by_suffix \
                        and self.by_suffix[suffix] is not mod:
                    self.by_suffix[suffix] = None
                else:
                    self.by_suffix[suffix] = mod
        self._nondet_memo: Dict[int, Optional[Tuple[str, List[str]]]] = {}
        self._alloc_memo: Dict[int, Optional[Tuple[str, List[str]]]] = {}

    # -- resolution ---------------------------------------------------------

    def module_by_ref(self, ref: str) -> Optional[ModuleInfo]:
        mod = self.by_suffix.get(ref)
        if mod is not None:
            return mod
        # relative-import spelling: match by trailing segments
        segs = ref.lstrip(".").split(".")
        for i in range(len(segs)):
            mod = self.by_suffix.get(".".join(segs[i:]))
            if mod is not None:
                return mod
        return None

    def resolve(self, caller: FuncInfo, kind: str,
                name: str) -> Optional[FuncInfo]:
        mod = caller.module
        if kind == "self":
            return self._resolve_method(mod, caller.cls_name, name)
        if "." not in name:
            target = mod.functions.get(name)
            if target is not None and target.cls_name is None:
                return target
            imported = mod.import_from.get(name)
            if imported is not None:
                target_mod = self.module_by_ref(imported[0])
                if target_mod is not None:
                    fn = target_mod.functions.get(imported[1])
                    if fn is not None and fn.cls_name is None:
                        return fn
            return None
        # dotted: `pkg.mod.fn(...)` through the plain-import table
        prefix, fname = name.rsplit(".", 1)
        module_ref = mod.import_mod.get(prefix, prefix)
        target_mod = self.module_by_ref(module_ref)
        if target_mod is not None:
            fn = target_mod.functions.get(fname)
            if fn is not None and fn.cls_name is None:
                return fn
        return None

    def _resolve_method(self, mod: ModuleInfo, cls_name: Optional[str],
                        meth: str, _depth: int = 0) -> Optional[FuncInfo]:
        if cls_name is None or _depth > 8:
            return None
        fn = mod.functions.get(f"{cls_name}.{meth}")
        if fn is not None:
            return fn
        for base in mod.base_names(cls_name):
            fn = self._resolve_method(mod, base, meth, _depth + 1)
            if fn is not None:
                return fn
        return None

    # -- transitive queries -------------------------------------------------

    def nondet_path(
        self, fn: FuncInfo
    ) -> Optional[Tuple[str, List[str]]]:
        """(source description, call chain) if ``fn`` transitively
        reaches a nondeterminism source outside the determinism zones."""
        return self._search(fn, self._nondet_memo, self._nondet_local, set())

    def alloc_path(
        self, fn: FuncInfo
    ) -> Optional[Tuple[str, List[str]]]:
        """(allocation description, call chain) if ``fn`` transitively
        performs a list/tuple vector allocation."""
        return self._search(fn, self._alloc_memo, self._alloc_local, set())

    @staticmethod
    def _nondet_local(fn: FuncInfo) -> Optional[str]:
        if fn.module.zone in DETERMINISM_ZONES:
            return None  # syntactic RL001/RL002 already owns this site
        if fn.sources:
            line, desc = fn.sources[0]
            return f"{desc} at {fn.module.display}:{line}"
        return None

    @staticmethod
    def _alloc_local(fn: FuncInfo) -> Optional[str]:
        if fn.allocs:
            line, name = fn.allocs[0]
            return f"{name}(...) at {fn.module.display}:{line}"
        return None

    def _search(self, fn, memo, local, visiting):
        key = id(fn)
        if key in memo:
            return memo[key]
        if key in visiting:
            return None  # cycle; resolved by the outermost frame
        visiting.add(key)
        result = None
        desc = local(fn)
        if desc is not None:
            result = (desc, [fn.label])
        else:
            for _call, kind, name in fn.calls:
                callee = self.resolve(fn, kind, name)
                if callee is None:
                    continue
                sub = self._search(callee, memo, local, visiting)
                if sub is not None:
                    result = (sub[0], [fn.label] + sub[1])
                    break
        visiting.discard(key)
        memo[key] = result
        return result
