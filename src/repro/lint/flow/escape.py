"""Frozen / mutable / escaped-into-payload abstract domain.

The domain tracks, per local name, a set of flags:

``FROZEN``
    provably immutable (constants, tuple literals, ``tuple(...)`` /
    ``frozenset(...)``, calls whose summary says every return value is
    frozen);
``MUTABLE``
    a list/dict/set (literal, comprehension, ``[0] * n``, ``list()``,
    ``sorted()``, ``.copy()``...);
``LIVE``
    aliases live protocol state (``self.attr`` bound to a mutable
    container in ``__init__`` -- the same class model RL003 uses);
``ESCAPED``
    reachable from an in-flight message payload (placed bare into a
    ``payload={...}`` dict or stored through ``<msg>.payload[...]``);
``PAYLOAD``
    derived from an *incoming* payload access.

Escaping **live** mutable state is a finding at the escape site (the
receiver and the sender would share one object).  Escaping a *fresh*
mutable is only a finding if the function later mutates it -- the
flow-sensitive part: rebinding the name (``vec = tuple(vec)``) clears
the taint, and an escape inside a loop body taints the next iteration
through the back edge.

The module also builds the whole-program **payload key summary**: for
every key ever stored into a payload, the join of the abstract values
shipped under it.  The receive-side check only fires when a key can
actually carry a mutable object -- which is how the analysis *proves*
the repo's tuple-on-the-wire discipline safe instead of re-flagging
every suppressed RL003 site.
"""

from __future__ import annotations

import ast
from typing import (
    Dict, Iterator, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING,
)

from repro.lint.context import dotted_name
from repro.lint.flow.dataflow import ForwardAnalysis, State

if TYPE_CHECKING:  # annotation-only: breaks the callgraph import cycle
    from repro.lint.flow.callgraph import CallGraph, FuncInfo, ModuleInfo
from repro.lint.rules.aliasing import (
    _ClassModel,
    _is_payload_access,
    _MESSAGE_CTORS,
)

__all__ = [
    "ESCAPED", "FROZEN", "LIVE", "MUTABLE", "PAYLOAD",
    "EscapeAnalysis", "PayloadSummary", "classify_expr",
    "iter_local_mutations", "iter_payload_placements", "key_token",
]

FROZEN = "frozen"
MUTABLE = "mutable"
LIVE = "live"
ESCAPED = "escaped"
PAYLOAD = "payload"

_FRESH_MUTABLE_CALLS = {"list", "dict", "set", "sorted"}
_FROZEN_CALLS = {"tuple", "frozenset"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "sort", "reverse", "add", "discard",
}


def key_token(expr: ast.AST) -> Optional[str]:
    """Stable identity of a payload key expression.

    String constants key by value; names and attributes key by their
    identifier (``VT_KEY`` on both the send and receive side), which
    matches without resolving the constant's value.
    """
    if isinstance(expr, ast.Constant):
        return repr(expr.value)
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return isinstance(node.left, ast.List) \
            or isinstance(node.right, ast.List)
    return False


def classify_expr(
    expr: ast.AST,
    env: State,
    model: Optional[_ClassModel],
    fn: Optional[FuncInfo],
    graph: Optional[CallGraph],
    payload_keys: Optional["PayloadSummary"] = None,
) -> frozenset:
    """Abstract value of ``expr`` under local environment ``env``."""
    if isinstance(expr, (ast.Constant, ast.Tuple)):
        return frozenset((FROZEN,))
    if _is_mutable_container(expr):
        return frozenset((MUTABLE,))
    if isinstance(expr, ast.IfExp):
        return classify_expr(expr.body, env, model, fn, graph,
                             payload_keys) \
            | classify_expr(expr.orelse, env, model, fn, graph,
                            payload_keys)
    if isinstance(expr, ast.Name):
        return frozenset(env.get(expr.id, ()))
    if _is_payload_access(expr):
        flags = {PAYLOAD}
        if payload_keys is not None:
            verdict = payload_keys.lookup(_payload_key_of(expr))
            if verdict == MUTABLE:
                flags.add(MUTABLE)
            elif verdict == FROZEN:
                flags.add(FROZEN)
        return frozenset(flags)
    if isinstance(expr, ast.Attribute):
        name = dotted_name(expr)
        if name and name.startswith("self.") and model is not None \
                and model.is_mutable_vec(expr):
            return frozenset((MUTABLE, LIVE))
        return frozenset()
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name in _FROZEN_CALLS:
            return frozenset((FROZEN,))
        if name in _FRESH_MUTABLE_CALLS or name in ("copy.copy",
                                                    "copy.deepcopy"):
            return frozenset((MUTABLE,))
        if isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "copy":
            return frozenset((MUTABLE,))
        callee = _resolve_call(expr, fn, graph)
        if callee is not None and callee.returns_frozen:
            return frozenset((FROZEN,))
        return frozenset()
    return frozenset()


def _payload_key_of(expr: ast.AST) -> Optional[str]:
    """The key token of a ``payload[...]`` / ``payload.get(...)``."""
    if isinstance(expr, ast.Subscript):
        return key_token(expr.slice)
    if isinstance(expr, ast.Call) and expr.args:
        return key_token(expr.args[0])
    return None


def _resolve_call(
    call: ast.Call, fn: Optional[FuncInfo], graph: Optional[CallGraph]
) -> Optional[FuncInfo]:
    if fn is None or graph is None:
        return None
    name = dotted_name(call.func)
    if name is None:
        return None
    if name.startswith("self.") and name.count(".") == 1:
        return graph.resolve(fn, "self", name.split(".", 1)[1])
    if "." not in name or not name.startswith("self."):
        return graph.resolve(fn, "plain", name)
    return None


# -- payload placements and mutations (shared by transfer + rule) -----------

def iter_payload_placements(
    stmt: ast.AST,
) -> Iterator[Tuple[Optional[str], ast.AST, ast.AST]]:
    """(key token, value expression, anchor node) for every spot where
    ``stmt`` places a value into an outgoing payload: message-ctor
    ``payload={...}`` dicts and ``<msg>.payload[key] = value`` stores."""
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript) \
                    and isinstance(target.value, ast.Attribute) \
                    and target.value.attr == "payload":
                yield key_token(target.slice), stmt.value, stmt
    for node in ast.walk(stmt):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MESSAGE_CTORS):
            continue
        for kw in node.keywords:
            if kw.arg != "payload" or not isinstance(kw.value, ast.Dict):
                continue
            for key, value in zip(kw.value.keys, kw.value.values):
                yield (key_token(key) if key is not None else None,
                       value, value)


def iter_local_mutations(
    stmt: ast.AST, fn: Optional[FuncInfo], graph: Optional[CallGraph]
) -> Iterator[Tuple[str, ast.AST]]:
    """(local name, anchor node) for in-place mutations of locals:
    mutating method calls, subscript/attribute stores, and calls into
    summarized functions that mutate the argument position."""
    targets: Sequence[ast.AST] = ()
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, ast.AugAssign):
        targets = (stmt.target,)
    for target in targets:
        if isinstance(target, (ast.Subscript, ast.Attribute)) \
                and isinstance(target.value, ast.Name):
            yield target.value.id, stmt
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATING_METHODS \
                and isinstance(node.func.value, ast.Name):
            yield node.func.value.id, node
        callee = _resolve_call(node, fn, graph)
        if callee is not None and callee.mutates_params:
            for idx in callee.mutates_params:
                if idx < len(node.args) \
                        and isinstance(node.args[idx], ast.Name):
                    yield node.args[idx].id, node


# -- the dataflow client ----------------------------------------------------

class EscapeAnalysis(ForwardAnalysis):
    """Forward may-analysis binding the domain to one function."""

    def __init__(self, model: Optional[_ClassModel], fn: Optional[FuncInfo],
                 graph: Optional[CallGraph],
                 payload_keys: Optional["PayloadSummary"]):
        self.model = model
        self.fn = fn
        self.graph = graph
        self.payload_keys = payload_keys

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        out = dict(state)
        if isinstance(stmt, ast.Assign):
            value_flags = classify_expr(
                stmt.value, out, self.model, self.fn, self.graph,
                self.payload_keys)
            for target in stmt.targets:
                self._bind(target, value_flags, out)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value_flags = classify_expr(
                stmt.value, out, self.model, self.fn, self.graph,
                self.payload_keys)
            self._bind(stmt.target, value_flags, out)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, frozenset(), out)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, frozenset(), out)
        elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
            out[stmt.name] = frozenset()
        # escape marking: any bare non-frozen local placed in a payload
        for _key, value, _anchor in iter_payload_placements(stmt):
            if isinstance(value, ast.Name):
                flags = out.get(value.id, frozenset())
                if FROZEN not in flags:
                    out[value.id] = frozenset(flags) | {ESCAPED}
        return out

    @staticmethod
    def _bind(target: ast.AST, flags: frozenset, out: State) -> None:
        if isinstance(target, ast.Name):
            out[target.id] = flags
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                EscapeAnalysis._bind(elt, frozenset(), out)
        # subscript/attribute targets mutate, they don't bind


# -- whole-program payload key summary --------------------------------------

class PayloadSummary:
    """Join of the abstract values ever shipped under each payload key."""

    def __init__(self):
        self._keys: Dict[str, str] = {}

    def record(self, token: Optional[str], verdict: str) -> None:
        if token is None:
            return
        prev = self._keys.get(token)
        self._keys[token] = _join_verdict(prev, verdict)

    def lookup(self, token: Optional[str]) -> Optional[str]:
        """``mutable`` / ``frozen`` / ``unknown`` / None (never seen).

        Never-seen keys are treated leniently by callers: a single-file
        lint cannot see the sender, and an absent sender must not turn
        every receive into a finding.
        """
        if token is None:
            return None
        return self._keys.get(token)

    @classmethod
    def build(cls, modules: Sequence[ModuleInfo],
              graph: CallGraph) -> "PayloadSummary":
        summary = cls()
        for mod in modules:
            models = {
                name: _ClassModel(node)
                for name, node in mod.classes.items()
            }
            for fn in mod.functions.values():
                model = models.get(fn.cls_name) if fn.cls_name else None
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.stmt):
                        continue
                    for token, value, _anchor in \
                            iter_payload_placements(node):
                        summary.record(
                            token,
                            _coarse_verdict(value, fn, model, graph))
        return summary


def _join_verdict(prev: Optional[str], new: str) -> str:
    order = {FROZEN: 0, "unknown": 1, MUTABLE: 2}
    if prev is None:
        return new
    return prev if order[prev] >= order[new] else new


def _coarse_verdict(
    value: ast.AST, fn: FuncInfo, model: Optional[_ClassModel],
    graph: CallGraph, _depth: int = 0,
) -> str:
    """Flow-insensitive classification used for the key summary."""
    if _depth > 4:
        return "unknown"
    if isinstance(value, (ast.Constant, ast.Tuple)):
        return FROZEN
    if _is_mutable_container(value):
        return MUTABLE
    if isinstance(value, ast.Attribute):
        if model is not None and model.is_mutable_vec(value):
            return MUTABLE
        return "unknown"
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in _FROZEN_CALLS:
            return FROZEN
        if name in _FRESH_MUTABLE_CALLS:
            return MUTABLE
        callee = _resolve_call(value, fn, graph)
        if callee is not None and callee.returns_frozen:
            return FROZEN
        return "unknown"
    if isinstance(value, ast.Name):
        verdicts: List[str] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id == value.id \
                            and node.value is not value:
                        verdicts.append(_coarse_verdict(
                            node.value, fn, model, graph, _depth + 1))
            elif isinstance(node, ast.AnnAssign) \
                    and node.value is not None \
                    and node.value is not value \
                    and isinstance(node.target, ast.Name) \
                    and node.target.id == value.id:
                verdicts.append(_coarse_verdict(
                    node.value, fn, model, graph, _depth + 1))
        if not verdicts:
            return "unknown"
        out: Optional[str] = None
        for v in verdicts:
            out = _join_verdict(out, v)
        return out
    return "unknown"
