"""Command-line interface: ``repro-dsm``.

Subcommands:

- ``artifacts [name ...]``  print regenerated paper tables/figures;
- ``run``                   run one protocol on a random workload,
  verify it, and print metrics (+ optional space-time diagram;
  ``--trace-out``/``--metrics-out`` export a Perfetto trace and a
  metrics snapshot, see docs/observability.md);
- ``obs FILE``              summarize a saved ``--metrics-out`` file;
- ``compare``               all protocols on one identical schedule;
- ``sweep AXIS``            delay sweeps (Q1a-Q1c, Q3); ``--jobs N``
  parallelizes across worker processes and ``--cache-dir``/``--no-cache``
  control the content-addressed result cache (byte-identical output
  either way, see docs/performance.md);
- ``scenario NAME``         run an H1 figure scenario and show the
  sequence at p3 plus the delay audit;
- ``critpath [NAME]``       profile an H1 scenario's write delays:
  per-dependency blocked-time attribution, necessity split, and the
  critical dependency chain, per protocol (see docs/observability.md);
- ``check``                 model-check a protocol over *all* message
  interleavings of small workloads (safety/optimality/liveness/
  convergence/isolation invariants, optional fault injection, witness
  export and byte-identical ``--replay``; see docs/model-checking.md);
- ``serve``                 boot a multi-process causally consistent
  KV deployment (one OS process per replica, binary wire protocol,
  key-space sharding; ``--duration`` runs a one-shot load + drain +
  conformance cycle, see docs/serving.md);
- ``loadgen``               drive open-loop load against an
  already-running ``serve`` deployment and report ops/s + p50/p99;
- ``bench compare``         diff the current ``BENCH_*.json`` reports
  against the committed perf baseline (the CI regression gate);
- ``lint [PATH ...]``       run the reprolint static analyzer
  (determinism, vector-clock aliasing, protocol contract, obs gating,
  cross-node isolation; see docs/static-analysis.md).

Examples::

    repro-dsm artifacts table2 fig3
    repro-dsm run -p optp -n 5 --ops 20 --seed 3 --diagram
    repro-dsm compare -n 6 --seeds 0 1 2
    repro-dsm sweep processes
    repro-dsm scenario fig3 -p anbkh
    repro-dsm critpath fig3 --json critpath.json
    repro-dsm check -p optp -w h1 pair chain
    repro-dsm check -p anbkh -w fig3 --stats-out verdicts.json
    repro-dsm check --replay witness.json
    repro-dsm bench compare --json bench_compare.json
    repro-dsm lint --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import check_run
from repro.analysis.metrics import RunMetrics, comparison_table
from repro.paperfigs import (
    ARTIFACTS,
    compare_on_schedule,
    render_sweep,
    sweep_latency_spread,
    sweep_processes,
    sweep_write_fraction,
    sweep_zipf,
)
from repro.paperfigs.render import sequence_at
from repro.paperfigs.spacetime import render_spacetime
from repro.protocols import PROTOCOLS
from repro.sim import SeededLatency, run_schedule
from repro.workloads import ALL_SCENARIOS, WorkloadConfig, random_schedule

SWEEPS = {
    "processes": sweep_processes,
    "write-fraction": sweep_write_fraction,
    "latency": sweep_latency_spread,
    "zipf": sweep_zipf,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dsm",
        description="Causally consistent DSM reproduction "
        "(Baldoni-Milani-Tucci, IPPS 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_art = sub.add_parser("artifacts", help="print paper tables/figures")
    p_art.add_argument("names", nargs="*", metavar="NAME",
                       help=f"subset of {list(ARTIFACTS)} (default: all)")

    p_run = sub.add_parser("run", help="run + verify one protocol")
    p_run.add_argument("-p", "--protocol", default="optp",
                       choices=sorted(PROTOCOLS))
    p_run.add_argument("-n", "--processes", type=int, default=4)
    p_run.add_argument("--ops", type=int, default=15,
                       help="operations per process")
    p_run.add_argument("--variables", type=int, default=4)
    p_run.add_argument("--write-fraction", type=float, default=0.6)
    p_run.add_argument("--zipf", type=float, default=0.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--latency-mean", type=float, default=2.0,
                       help="exponential latency mean")
    p_run.add_argument("--fifo", action="store_true",
                       help="FIFO channels (default: non-FIFO)")
    p_run.add_argument("--diagram", action="store_true",
                       help="print the space-time diagram")
    p_run.add_argument("--dump-trace", metavar="PATH",
                       help="write the run's trace as JSON-lines to PATH")
    p_run.add_argument("--trace-out", metavar="PATH",
                       help="write a Perfetto/Chrome trace_event JSON "
                       "rendering of the run (enables observability)")
    p_run.add_argument("--metrics-out", metavar="PATH",
                       help="write the run's metrics-registry snapshot "
                       "as JSON (enables observability)")

    p_cmp = sub.add_parser("compare", help="all protocols, one schedule")
    p_cmp.add_argument("-n", "--processes", type=int, default=5)
    p_cmp.add_argument("--ops", type=int, default=15)
    p_cmp.add_argument("--write-fraction", type=float, default=0.6)
    p_cmp.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    p_cmp.add_argument("--protocols", nargs="+",
                       default=sorted(PROTOCOLS), choices=sorted(PROTOCOLS))

    p_sweep = sub.add_parser("sweep", help="delay sweeps (Q1/Q3)")
    p_sweep.add_argument("axis", choices=sorted(SWEEPS))
    p_sweep.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    p_sweep.add_argument("--format", choices=["table", "csv", "json"],
                         default="table")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (output is byte-identical "
                         "to --jobs 1; see docs/performance.md)")
    p_sweep.add_argument("--cache-dir", default="artifacts/runcache",
                         metavar="DIR",
                         help="content-addressed result cache root "
                         "(default: %(default)s)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="skip the result cache (neither read nor "
                         "written)")
    p_sweep.add_argument("--stats-out", metavar="PATH",
                         help="write runner stats (jobs, cache hits/misses, "
                         "sim seconds) as JSON to PATH")
    p_sweep.add_argument("--progress", action="store_true",
                         help="stream live progress snapshots (completions, "
                         "cache hit rate) to stderr; results unchanged")

    p_replay = sub.add_parser(
        "replay", help="re-audit an archived trace (JSON-lines dump)"
    )
    p_replay.add_argument("path", help="trace file from run --dump-trace")
    p_replay.add_argument("--diagram", action="store_true")

    p_rep = sub.add_parser("report", help="full reproduction report (markdown)")
    p_rep.add_argument("--out", metavar="PATH",
                       help="write to PATH instead of stdout")
    p_rep.add_argument("--quick", action="store_true",
                       help="smaller sweeps (fast sanity run)")
    p_rep.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the report's sweeps")
    p_rep.add_argument("--cache-dir", default="artifacts/runcache",
                       metavar="DIR", help="sweep result cache root")
    p_rep.add_argument("--no-cache", action="store_true",
                       help="skip the sweep result cache")

    p_obs = sub.add_parser(
        "obs", help="summarize a saved metrics file (run --metrics-out)"
    )
    p_obs.add_argument("path", help="metrics JSON from run --metrics-out")

    p_scen = sub.add_parser("scenario", help="run an H1 figure scenario")
    p_scen.add_argument("name", choices=sorted(ALL_SCENARIOS))
    p_scen.add_argument("-p", "--protocol", default="optp",
                        choices=sorted(PROTOCOLS))
    p_scen.add_argument("--diagram", action="store_true")

    p_crit = sub.add_parser(
        "critpath",
        help="critical-path profile of an H1 scenario's write delays",
    )
    p_crit.add_argument("scenario", nargs="?", default="fig3",
                        choices=sorted(ALL_SCENARIOS),
                        help="H1 scenario (default: fig3, the "
                        "false-causality run)")
    p_crit.add_argument("--protocols", nargs="+",
                        default=["optp", "anbkh"],
                        choices=sorted(PROTOCOLS),
                        help="protocols to profile (default: optp anbkh)")
    p_crit.add_argument("--top", type=int, default=5,
                        help="blocking edges to list per protocol")
    p_crit.add_argument("--json", metavar="PATH",
                        help="write the per-protocol reports as JSON")

    p_chk = sub.add_parser(
        "check", help="model-check a protocol over all interleavings"
    )
    p_chk.add_argument("-p", "--protocol", default="optp",
                       choices=sorted(PROTOCOLS))
    p_chk.add_argument("-w", "--workload", nargs="+", default=["h1"],
                       metavar="NAME",
                       help="canned checker workload(s); see "
                       "docs/model-checking.md (default: h1)")
    p_chk.add_argument("--faults", default="none", metavar="SPEC",
                       help="fault adapters: none | dup:N,drop:N"
                       "[,noretransmit][,dedup|nodedup],crash[:N]"
                       "[,norecover][,snap:N][,losetail:N] -- crash "
                       "explores process crashes; recovery replays the "
                       "durable snapshot+WAL (losetail:N injects the "
                       "BrokenRecovery mutation) (default: %(default)s)")
    p_chk.add_argument("--mode", choices=["exhaustive", "walk"],
                       default="exhaustive")
    p_chk.add_argument("--max-states", type=int, default=200_000)
    p_chk.add_argument("--max-depth", type=int, default=80)
    p_chk.add_argument("--walks", type=int, default=64,
                       help="random walks in --mode walk")
    p_chk.add_argument("--seed", type=int, default=0,
                       help="walk-mode RNG seed")
    p_chk.add_argument("--timer-budget", type=int, default=3,
                       help="timer firings per process (timer-driven "
                       "protocols)")
    p_chk.add_argument("--expect-optimal", choices=["auto", "yes", "no"],
                       default="auto",
                       help="treat unnecessary delays as violations "
                       "(auto: yes for Theorem-4 protocols)")
    p_chk.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes across workloads")
    p_chk.add_argument("--cache-dir", default="artifacts/runcache",
                       metavar="DIR", help="verdict cache root "
                       "(default: %(default)s)")
    p_chk.add_argument("--no-cache", action="store_true",
                       help="skip the verdict cache")
    p_chk.add_argument("--stats-out", metavar="PATH",
                       help="write verdicts + runner stats as JSON")
    p_chk.add_argument("--witness-out", metavar="PATH",
                       help="write the first violation as a replayable "
                       "witness (minimized choice path)")
    p_chk.add_argument("--replay", metavar="WITNESS",
                       help="replay a witness file instead of checking; "
                       "exits 0 iff the recorded run reproduces "
                       "byte-identically")
    p_chk.add_argument("--progress", action="store_true",
                       help="stream live progress snapshots (states/s, "
                       "prune ratio, shard completion) to stderr; the "
                       "verdict is unchanged")

    p_bench = sub.add_parser(
        "bench", help="benchmark artifact utilities"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_bcmp = bench_sub.add_parser(
        "compare",
        help="diff current BENCH_*.json reports against the committed "
        "baseline (exit 1 on regression)",
    )
    p_bcmp.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline document (default: "
                        "artifacts/bench_baseline.json)")
    p_bcmp.add_argument("--bench-dir", default=".", metavar="DIR",
                        help="directory holding the BENCH_*.json reports "
                        "(default: the repo root, where the benchmark "
                        "suites write them)")
    p_bcmp.add_argument("--json", metavar="PATH",
                        help="write the per-metric verdicts as JSON")
    p_bcmp.add_argument("--update", action="store_true",
                        help="rewrite the baseline's recorded values from "
                        "the current reports instead of comparing")

    p_lint = sub.add_parser(
        "lint", help="static analysis (determinism & protocol contract)"
    )
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories (default: the "
                        "installed repro package)")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument("--select", metavar="CODES",
                        help="run only these rule codes, comma-separated "
                        "(e.g. RL001,RL003)")
    p_lint.add_argument("--ignore", metavar="CODES",
                        help="skip these rule codes, comma-separated")
    p_lint.add_argument("--catalog", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--flow", action="store_true",
                        help="enable the interprocedural flow rules "
                        "(RL101-RL104: payload escape, VC monotonicity, "
                        "transitive nondeterminism, transitive hot-path "
                        "allocation)")

    p_srv = sub.add_parser(
        "serve",
        help="boot a multi-process causally consistent KV deployment",
    )
    p_srv.add_argument("-p", "--protocol", default="optp",
                       help="protocol to serve (must support live serving; "
                       "see repro.serve.SERVABLE_PROTOCOLS)")
    p_srv.add_argument("--group-size", type=int, default=3, metavar="N",
                       help="replicas per shard group (default 3)")
    p_srv.add_argument("--shards", type=int, default=1,
                       help="replica groups the key space is sharded over")
    p_srv.add_argument("--rundir", required=True, metavar="DIR",
                       help="run directory (sockets, cluster.json, logs)")
    p_srv.add_argument("--transport", choices=["unix", "tcp"],
                       default="unix")
    p_srv.add_argument("--port-base", type=int, default=7400,
                       help="first TCP port (tcp transport only)")
    p_srv.add_argument("--duration", type=float, default=0.0,
                       help="one-shot mode: drive the built-in load "
                       "generator for this many seconds, then drain and "
                       "stop (0 = serve until interrupted)")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="load-generator processes (one-shot mode)")
    p_srv.add_argument("--batch", type=int, default=64,
                       help="ops per REQUEST frame")
    p_srv.add_argument("--pipeline", type=int, default=4,
                       help="concurrent sessions per load worker")
    p_srv.add_argument("--read-fraction", type=float, default=0.9)
    p_srv.add_argument("--keys", type=int, default=64)
    p_srv.add_argument("--rate", type=float, default=0.0,
                       help="target ops/s per worker (0 = saturate)")
    p_srv.add_argument("--wal-dir", metavar="DIR",
                       help="make replicas durable: journal every op to "
                       "a write-ahead log + snapshots under DIR; a "
                       "restarted replica recovers its pre-crash state "
                       "(docs/fault-tolerance.md)")
    p_srv.add_argument("--chaos", action="store_true",
                       help="one-shot kill-and-recover drill: SIGKILL "
                       "one replica mid-load, restart it, verify "
                       "recovery (implies --wal-dir under the rundir; "
                       "needs --duration > 0)")
    p_srv.add_argument("--kill-after", type=float, default=1.0,
                       help="chaos: seconds of load before the kill")
    p_srv.add_argument("--down-time", type=float, default=0.5,
                       help="chaos: seconds the victim stays down")
    p_srv.add_argument("--record", action="store_true",
                       help="record per-node event logs for conformance "
                       "replay (costs throughput)")
    p_srv.add_argument("--verify", action="store_true",
                       help="after the run, merge the recorded logs and "
                       "replay the paper's checkers (implies --record)")
    p_srv.add_argument("--json", metavar="PATH", dest="json_out",
                       help="write the full run report as JSON")
    p_srv.add_argument("--trace-out", metavar="PATH",
                       help="write a Perfetto/Chrome trace of the merged "
                       "group-0 event log (implies --record)")

    p_lg = sub.add_parser(
        "loadgen",
        help="drive load against an already-running serve deployment",
    )
    p_lg.add_argument("--spec", required=True, metavar="PATH",
                      help="cluster.json written by `repro-dsm serve`")
    p_lg.add_argument("--duration", type=float, default=3.0)
    p_lg.add_argument("--workers", type=int, default=1)
    p_lg.add_argument("--batch", type=int, default=64)
    p_lg.add_argument("--pipeline", type=int, default=4)
    p_lg.add_argument("--read-fraction", type=float, default=0.9)
    p_lg.add_argument("--keys", type=int, default=64)
    p_lg.add_argument("--rate", type=float, default=0.0,
                      help="target ops/s per worker (0 = saturate)")
    p_lg.add_argument("--json", metavar="PATH", dest="json_out",
                      help="write the summary as JSON")

    return parser


def cmd_artifacts(args: argparse.Namespace) -> int:
    names = args.names or list(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts {unknown}; known: {list(ARTIFACTS)}",
              file=sys.stderr)
        return 2
    for name in names:
        print("=" * 72)
        print(ARTIFACTS[name]())
        print()
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cfg = WorkloadConfig(
        n_processes=args.processes,
        ops_per_process=args.ops,
        n_variables=args.variables,
        write_fraction=args.write_fraction,
        zipf_s=args.zipf,
        seed=args.seed,
    )
    obs = None
    if args.trace_out or args.metrics_out:
        from repro.obs import Obs

        obs = Obs.recording()
    result = run_schedule(
        args.protocol,
        args.processes,
        random_schedule(cfg),
        latency=SeededLatency(args.seed, dist="exponential",
                              mean=args.latency_mean),
        fifo=args.fifo,
        record_state=True,
        obs=obs,
    )
    report = check_run(result)
    print(report.summary())
    metrics = RunMetrics.of(result, report)
    print(comparison_table([metrics]))
    if args.diagram:
        print()
        print(render_spacetime(result.trace, result.history))
    if args.dump_trace:
        from pathlib import Path

        from repro.sim.serialize import trace_to_jsonl

        Path(args.dump_trace).write_text(trace_to_jsonl(result.trace))
        print(f"trace written to {args.dump_trace}")
    if args.trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace_out, result.trace, result.spans,
                           protocol=args.protocol)
        print(f"Perfetto trace written to {args.trace_out} "
              "(open in ui.perfetto.dev)")
    if args.metrics_out:
        from pathlib import Path

        Path(args.metrics_out).write_text(obs.registry.to_json(
            protocol=args.protocol,
            n_processes=args.processes,
            duration=result.duration,
            seed=args.seed,
        ))
        print(f"metrics written to {args.metrics_out}")
    return 0 if report.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    all_metrics = []
    for seed in args.seeds:
        cfg = WorkloadConfig(
            n_processes=args.processes,
            ops_per_process=args.ops,
            write_fraction=args.write_fraction,
            seed=seed,
        )
        all_metrics += compare_on_schedule(
            random_schedule(cfg),
            args.processes,
            protocols=args.protocols,
            latency_seed=seed,
        )
    print(comparison_table(
        all_metrics,
        title=f"n={args.processes} ops={args.ops} seeds={args.seeds}",
    ))
    return 0


def _make_runner(args: argparse.Namespace, progress=None):
    """A SweepRunner configured from --jobs/--cache-dir/--no-cache."""
    from repro.sweep import RunCache, SweepRunner

    cache = None if args.no_cache else RunCache(args.cache_dir)
    return SweepRunner(jobs=args.jobs, cache=cache, progress=progress)


def cmd_sweep(args: argparse.Namespace) -> int:
    progress = None
    if getattr(args, "progress", False):
        from repro.obs import ProgressSink

        progress = ProgressSink(label=f"sweep:{args.axis}",
                                rate_fields=("done",))
    runner = _make_runner(args, progress=progress)
    rows = SWEEPS[args.axis](seeds=tuple(args.seeds), runner=runner)
    if progress is not None:
        progress.close()
    stats = runner.stats.to_dict()
    print(
        f"sweep: jobs={stats['jobs']} runs={stats['runs']} "
        f"cache_hits={stats['cache_hits']} "
        f"cache_misses={stats['cache_misses']} "
        f"sim_seconds={stats['sim_seconds']}",
        file=sys.stderr,
    )
    if args.stats_out:
        import json
        from pathlib import Path

        doc = dict(stats)
        if progress is not None:
            doc["progress"] = progress.snapshot()
        Path(args.stats_out).write_text(json.dumps(doc, indent=2) + "\n")
    if args.format == "csv":
        from repro.analysis.export import sweep_to_csv

        print(sweep_to_csv(rows), end="")
    elif args.format == "json":
        from repro.analysis.export import sweep_to_json

        print(sweep_to_json(rows))
    else:
        print(render_sweep(rows, title=f"sweep: {args.axis}"))
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    scen = ALL_SCENARIOS[args.name]()
    result = run_schedule(args.protocol, 3, scen.schedule,
                          latency=scen.latency, record_state=True)
    report = check_run(result)
    print(f"{scen.name}: {scen.description}")
    print(f"protocol: {args.protocol}")
    print()
    print("sequence at p3:")
    print("  " + sequence_at(result.trace, result.history, 2))
    print()
    print(report.summary())
    for audit in report.unnecessary_delays:
        print(f"  UNNECESSARY delay of {audit.wid} at p{audit.process + 1}")
    if args.diagram:
        print()
        print(render_spacetime(result.trace, result.history))
    return 0 if report.ok else 1


def cmd_critpath(args: argparse.Namespace) -> int:
    """Profile where an H1 scenario's write delays land on the clock.

    Runs each protocol on the same scenario with span recording, then
    prints blocked-time attribution, the Theorem-4 necessity split, and
    the critical dependency chain.  On ``fig3`` (the false-causality
    run) ANBKH attributes unnecessary blocked time while OptP attributes
    exactly zero -- the paper's optimality claim in milliseconds.
    """
    import json
    from pathlib import Path

    from repro.obs import Obs, analyze_critical_paths

    scen = ALL_SCENARIOS[args.scenario]()
    print(f"{scen.name}: {scen.description}")
    print()
    docs = {}
    for protocol in args.protocols:
        obs = Obs.recording()
        result = run_schedule(protocol, 3, scen.schedule,
                              latency=scen.latency, record_state=True,
                              obs=obs)
        report = analyze_critical_paths(result)
        print(report.render(top=args.top))
        print()
        docs[protocol] = report.to_dict()
    if args.json:
        Path(args.json).write_text(json.dumps(
            {"scenario": scen.name, "reports": docs},
            indent=2, sort_keys=True) + "\n")
        print(f"critpath reports written to {args.json}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench compare``: exit 0 when every metric holds, 1 on any
    regression, 2 when the baseline itself is unreadable."""
    import json
    from pathlib import Path

    from repro.obs import compare_benchmarks, load_baseline, update_baseline
    from repro.obs.benchcmp import DEFAULT_BASELINE

    baseline_path = Path(args.baseline or DEFAULT_BASELINE)
    try:
        baseline = load_baseline(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    if args.update:
        refreshed = update_baseline(baseline, Path(args.bench_dir))
        baseline_path.write_text(
            json.dumps(refreshed, indent=2, sort_keys=True) + "\n")
        print(f"baseline values refreshed from {args.bench_dir} -> "
              f"{baseline_path} (review the diff before committing)")
        return 0
    comparison = compare_benchmarks(baseline, Path(args.bench_dir))
    print(comparison.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(comparison.to_dict(), indent=2, sort_keys=True)
            + "\n")
    return 0 if comparison.ok else 1


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-run the stats-independent checkers on an archived trace:
    legality, safety, the delay audit, session guarantees, and causal
    closure at the full cut."""
    from pathlib import Path

    from repro.analysis.checker import audit_delays, check_safety
    from repro.analysis.cuts import closure_violations, full_cut
    from repro.analysis.sessions import check_sessions
    from repro.model.legality import check_causal_consistency
    from repro.sim.result import RunResult
    from repro.sim.serialize import trace_from_jsonl

    trace = trace_from_jsonl(Path(args.path).read_text())
    result = RunResult(
        protocol_name=f"replay:{args.path}",
        n_processes=trace.n_processes,
        trace=trace,
        duration=trace.events[-1].time if len(trace) else 0.0,
        messages_sent=0,
        bytes_estimate=0,
        stores=[{} for _ in range(trace.n_processes)],
        protocol_stats=[{} for _ in range(trace.n_processes)],
    )
    history = result.history
    legality = check_causal_consistency(history)
    safety = check_safety(result)
    audits = audit_delays(result)
    unnecessary = [a for a in audits if not a.necessary]
    sessions = check_sessions(history)
    closure = closure_violations(trace, history, full_cut(trace))
    print(f"events: {len(trace)}  processes: {trace.n_processes}  "
          f"writes: {result.writes_issued}")
    print(f"legality: {legality.summary()}")
    print(f"safety:   {'ok' if not safety else safety}")
    print(f"delays:   {len(audits)} (unnecessary: {len(unnecessary)})")
    print(f"sessions: {sessions.summary()}")
    print(f"closure:  {'ok' if not closure else closure}")
    if args.diagram:
        print()
        print(render_spacetime(trace, history))
    ok = bool(legality) and not safety and not closure and sessions.ok
    return 0 if ok else 1


def cmd_obs(args: argparse.Namespace) -> int:
    """Summarize a saved metrics file (``run --metrics-out``)."""
    import json
    from pathlib import Path

    from repro.obs import summarize_metrics

    try:
        doc = json.loads(Path(args.path).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics file {args.path}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict) or "metrics" not in doc:
        print(f"{args.path} is not a metrics file (missing 'metrics' key)",
              file=sys.stderr)
        return 2
    print(summarize_metrics(doc))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.paperfigs.report import build_report

    text = build_report(quick=args.quick, runner=_make_runner(args))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Model-check: exit 0 when every config is clean, 1 on violations,
    2 on bad usage.  ``--replay`` instead re-executes a witness and
    exits 0 iff it reproduces byte-identically."""
    import json
    from pathlib import Path

    from repro.mck import (
        CheckConfig,
        build_witness,
        check_sharded,
        load_witness,
        parse_faults,
        replay_witness,
        run_checks,
        workload_by_name,
    )

    if args.replay:
        try:
            doc = load_witness(args.replay)
            outcome, problems = replay_witness(doc)
        except (OSError, ValueError) as exc:
            print(f"cannot replay {args.replay}: {exc}", file=sys.stderr)
            return 2
        spec = doc["config"]
        print(f"witness: {spec['protocol']}/{spec['workload']['name']} "
              f"choices={len(doc['choices'])} status={outcome.status}")
        for finding in outcome.findings:
            print(f"  {finding}")
        if problems:
            print("NOT reproduced:")
            for p in problems:
                print(f"  {p}")
            return 1
        print("reproduced byte-identically")
        return 0

    try:
        faults = parse_faults(args.faults)
        workloads = [workload_by_name(name) for name in args.workload]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    expect = {"auto": None, "yes": True, "no": False}[args.expect_optimal]
    configs = [
        CheckConfig(
            protocol=args.protocol,
            workload=w,
            faults=faults,
            expect_optimal=expect,
            mode=args.mode,
            max_states=args.max_states,
            max_depth=args.max_depth,
            walks=args.walks,
            seed=args.seed,
            timer_budget=args.timer_budget,
        )
        for w in workloads
    ]
    cache = None
    if not args.no_cache:
        from repro.sweep import RunCache

        cache = RunCache(args.cache_dir)
    progress = None
    if args.progress:
        from repro.obs import ProgressSink

        progress = ProgressSink(label=f"check:{args.protocol}")
    if args.jobs > 1 and len(configs) == 1:
        # One big check: shard its DFS across the pool instead of
        # leaving jobs-1 workers idle (repro.mck.shard; verdict is
        # exactly the serial one).
        result, stats = check_sharded(configs[0], jobs=args.jobs,
                                      cache=cache, progress=progress)
        results = [result]
    else:
        results, stats = run_checks(configs, jobs=args.jobs, cache=cache,
                                    progress=progress)
    if progress is not None:
        progress.close()
    failed = False
    for config, r in zip(configs, results):
        verdict = "OK" if r.ok else f"VIOLATED ({r.violations_seen})"
        # wall time survives only on the inline path; decoded results
        # (cache hits, pool workers) aggregate it in stats.sim_seconds.
        rate = (f" ({r.states_per_sec:,.0f} states/s)"
                if r.wall > 0 else "")
        print(f"{r.protocol_name}/{r.workload_name} mode={r.mode} "
              f"faults={args.faults}: {verdict}  states={r.states} "
              f"transitions={r.transitions} "
              f"terminals={r.terminals} prunes={r.prunes} "
              f"unnecessary_delays={r.unnecessary_delays}"
              f"{' LIMIT-HIT' if r.state_limit_hit else ''}{rate}")
        for v in r.violations[:5]:
            print(f"  {v.finding}  [{len(v.choices)} choices]")
        if len(r.violations) > 5:
            print(f"  ... and {len(r.violations) - 5} more recorded")
        if not r.ok:
            failed = True
            if args.witness_out:
                doc = build_witness(config, r.violations[0])
                save = Path(args.witness_out)
                save.write_text(json.dumps(doc, sort_keys=True, indent=1)
                                + "\n")
                print(f"  witness written to {args.witness_out} "
                      f"({len(doc['choices'])} choices, minimized)")
                args.witness_out = None  # first violation only
    if args.stats_out:
        doc = {
            "checks": [r.verdict_dict() for r in results],
            "stats": stats.to_dict(),
        }
        if progress is not None:
            doc["progress"] = progress.snapshot()
        Path(args.stats_out).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"verdicts written to {args.stats_out}", file=sys.stderr)
    return 1 if failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint: exit 0 when clean, 1 on findings, 2 on bad usage."""
    from pathlib import Path

    from repro.lint import lint_paths, rule_catalog

    if args.catalog:
        for rule in rule_catalog():
            print(f"{rule.code}  {rule.name:<22} {rule.summary}")
        return 0
    paths = args.paths
    if not paths:
        import repro

        paths = [Path(repro.__file__).parent]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    def codes(raw):
        return [c for c in raw.split(",") if c] if raw else None

    try:
        report = lint_paths(paths, select=codes(args.select),
                            ignore=codes(args.ignore), flow=args.flow)
    except ValueError as exc:  # unknown rule codes
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.to_text())
    return 0 if report.ok else 1


def _print_load_summary(load: dict) -> None:
    print(f"ops          {load['ops']}  "
          f"({load['reads']} reads / {load['writes']} writes, "
          f"{load['batches']} batches)")
    print(f"elapsed      {load['elapsed']}s")
    print(f"throughput   {load['ops_per_sec']} ops/s")
    print(f"read  p50/p99   {load['read_p50_ms']} / "
          f"{load['read_p99_ms']} ms")
    print(f"write p50/p99   {load['write_p50_ms']} / "
          f"{load['write_p99_ms']} ms")


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serve.harness import ServedCluster, serve_and_load, serve_chaos
    from repro.serve.loadgen import LoadgenConfig
    from repro.serve.server import SERVABLE_PROTOCOLS

    if args.protocol not in SERVABLE_PROTOCOLS:
        print(f"protocol {args.protocol!r} is not servable; pick one of "
              f"{sorted(SERVABLE_PROTOCOLS)}", file=sys.stderr)
        return 2
    verify = args.verify or bool(args.trace_out)
    record = args.record or verify
    rundir = Path(args.rundir)
    wal_dir = Path(args.wal_dir) if args.wal_dir else None
    cfg = LoadgenConfig(
        duration=args.duration, batch=args.batch, pipeline=args.pipeline,
        read_fraction=args.read_fraction, keys=args.keys, rate=args.rate,
    )

    if args.chaos:
        if args.duration <= 0:
            print("--chaos needs --duration > 0", file=sys.stderr)
            return 2
        report = serve_chaos(
            args.protocol, group_size=args.group_size, rundir=rundir,
            duration=args.duration, kill_after=args.kill_after,
            down_time=args.down_time, workers=args.workers,
            record=record, verify=verify, transport=args.transport,
            port_base=args.port_base, loadgen=cfg,
        )
        _print_load_summary(report["load"])
        print(f"victim g0n{report['victim']}: recovered="
              f"{report['recovered']} recovery={report['recovery_us']}us "
              f"wal_records={report['wal_records']} "
              f"restart_wall={report['restart_wall_s']}s")
    elif args.duration > 0:
        report = serve_and_load(
            args.protocol, group_size=args.group_size, shards=args.shards,
            rundir=rundir, duration=args.duration, workers=args.workers,
            record=record, verify=verify, transport=args.transport,
            port_base=args.port_base, loadgen=cfg, wal_dir=wal_dir,
        )
        _print_load_summary(report["load"])
    else:
        cluster = ServedCluster.start(
            args.protocol, group_size=args.group_size, shards=args.shards,
            rundir=rundir, record=record, transport=args.transport,
            port_base=args.port_base, wal_dir=wal_dir,
        )
        print(f"serving {args.protocol}: {args.shards} shard(s) x "
              f"{args.group_size} replicas (spec: {rundir / 'cluster.json'})")
        for g in range(cluster.spec.n_shards):
            for i in range(cluster.spec.group_size):
                print(f"  g{g}n{i}  {cluster.spec.endpoint(g, i)}")
        print("Ctrl-C to drain and stop.")
        try:
            import time

            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            try:
                cluster.quiesce()
                cluster.stop()
            finally:
                cluster.kill()
        report = {
            "protocol": args.protocol,
            "group_size": args.group_size,
            "shards": args.shards,
            "node_stats": [s["stats"] for s in cluster.statuses],
        }
        if verify:
            report["conformance"] = cluster.verify()

    if verify:
        conf = report["conformance"]
        print(f"conformance  {'OK' if conf['ok'] else 'FAILED'} "
              f"({len(conf['groups'])} group(s) replayed)")
    if args.trace_out:
        from repro.obs.export import write_chrome_trace
        from repro.sim.serialize import trace_from_jsonl

        trace = trace_from_jsonl(
            Path(report["conformance"]["groups"][0]["trace_path"]).read_text()
        )
        write_chrome_trace(args.trace_out, trace, protocol=args.protocol)
        print(f"perfetto trace -> {args.trace_out}")
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(report, indent=2,
                                                  default=str))
    return 0 if (not verify or report["conformance"]["ok"]) else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serve.harness import drive_load
    from repro.serve.loadgen import LoadgenConfig
    from repro.serve.shard import ClusterSpec

    spec_path = Path(args.spec)
    if not spec_path.exists():
        print(f"no such spec: {spec_path}", file=sys.stderr)
        return 2
    spec = ClusterSpec.load(spec_path)
    cfg = LoadgenConfig(
        duration=args.duration, batch=args.batch, pipeline=args.pipeline,
        read_fraction=args.read_fraction, keys=args.keys, rate=args.rate,
    )
    load = drive_load(spec, cfg, workers=args.workers,
                      rundir=spec_path.parent)
    _print_load_summary(load)
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(load, indent=2))
    return 0


COMMANDS = {
    "artifacts": cmd_artifacts,
    "run": cmd_run,
    "compare": cmd_compare,
    "obs": cmd_obs,
    "replay": cmd_replay,
    "report": cmd_report,
    "sweep": cmd_sweep,
    "scenario": cmd_scenario,
    "critpath": cmd_critpath,
    "check": cmd_check,
    "bench": cmd_bench,
    "lint": cmd_lint,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
