"""Protocols implementing (or compared against) the class 𝒫 of Section 3.

- :class:`repro.core.optp.OptPProtocol` -- the paper's contribution
  (safe + write-delay optimal + live), re-exported here;
- :class:`ANBKHProtocol` -- the Ahamad et al. baseline (safe, not
  optimal: false causality, Section 3.6 / Figure 3);
- :class:`WSReceiverProtocol` -- receiver-side writing semantics on top
  of OptP vectors ([2, 14] + footnote 8; leaves 𝒫);
- :class:`JimenezTokenProtocol` -- sender-side writing semantics via a
  circulating token ([7]; leaves 𝒫).

``PROTOCOLS`` maps protocol names to constructors for the benchmark
sweeps and examples.
"""

from typing import Callable, Dict

from repro.core.optp import OptPProtocol
from repro.protocols.anbkh import ANBKHProtocol
from repro.protocols.base import (
    BROADCAST,
    ControlMessage,
    Disposition,
    Message,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.protocols.gossip import GossipOptPProtocol
from repro.protocols.jimenez import JimenezTokenProtocol
from repro.protocols.partial import (
    PartialReplicationProtocol,
    ReplicationMap,
    partial_factory,
)
from repro.protocols.sequencer import SequencerProtocol
from repro.protocols.ws_receiver import WSReceiverProtocol

#: Registry of all shipped protocols, keyed by their ``name``.
PROTOCOLS: Dict[str, Callable[[int, int], Protocol]] = {
    OptPProtocol.name: OptPProtocol,
    ANBKHProtocol.name: ANBKHProtocol,
    WSReceiverProtocol.name: WSReceiverProtocol,
    JimenezTokenProtocol.name: JimenezTokenProtocol,
    SequencerProtocol.name: SequencerProtocol,
    GossipOptPProtocol.name: GossipOptPProtocol,
}

__all__ = [
    "ANBKHProtocol",
    "BROADCAST",
    "ControlMessage",
    "Disposition",
    "GossipOptPProtocol",
    "JimenezTokenProtocol",
    "Message",
    "OptPProtocol",
    "Outgoing",
    "PROTOCOLS",
    "PartialReplicationProtocol",
    "ReplicationMap",
    "partial_factory",
    "Protocol",
    "ReadOutcome",
    "SequencerProtocol",
    "UpdateMessage",
    "WSReceiverProtocol",
    "WriteOutcome",
]
