"""OptP over anti-entropy (gossip) propagation.

Footnote 5 of the paper: "Note that the communication mechanism used
to propagate the operation from one process to another one (e.g.
broadcast, multicast, point-to-point) does not matter at this
abstraction level."  This protocol takes the claim seriously: the exact
``Write_co`` machinery and activation predicate of OptP, but writes are
not broadcast at all -- they propagate by periodic **pull-style
anti-entropy**:

- every ``timer_interval`` simulated units a process sends a *digest*
  (its ``Apply`` vector -- a complete description of the per-sender
  write prefixes it holds) to the next peer on a deterministic
  round-robin ring;
- the digest's receiver answers with exactly the logged writes the
  requester is missing, each as a normal OptP update message (original
  writer in the ``sender`` field, the write's ``Write_co`` attached);
- receivers run OptP's unchanged classify/apply; duplicates (a write
  already applied, obtained from another peer meanwhile) are discarded.

Safety/optimality carry over verbatim (the predicate never sees
*where* a message came from); liveness holds because the ring visits
every pair-direction within ``n - 1`` rounds and digests describe
complete prefixes.  The log is garbage-collected against a **stability
vector** (the componentwise minimum of the freshest Apply vector heard
from every process): a write every replica is known to hold can never
be requested again, so dropping it is safe -- and because digest
vectors are monotone, even digests that arrive out of order can only
under-request, never ask for a collected entry.  What changes is the
*performance envelope*:
propagation latency is governed by gossip rounds instead of one hop,
and traffic trades per-write fanout for periodic digests --
``benchmarks/test_bench_gossip.py`` measures both against broadcast
OptP.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.core.base import (
    ControlMessage,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.optp import WRITE_CO_KEY
from repro.model.operations import WriteId

DIGEST_KIND = "digest"


class GossipOptPProtocol(Protocol):
    """OptP semantics, anti-entropy propagation (extension, footnote 5)."""

    name = "gossip-optp"
    in_class_p = True
    timer_interval = 1.0

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        n = n_processes
        self.apply_vec: List[int] = [0] * n
        self.write_co: List[int] = [0] * n
        self.last_write_on: Dict[Hashable, Tuple[int, ...]] = {}
        #: writes applied locally and not yet stable, keyed by id --
        #: the anti-entropy answer set
        self.log: Dict[WriteId, Tuple[Hashable, Any, Tuple[int, ...]]] = {}
        #: freshest Apply vector heard from each process (digests are
        #: monotone, so componentwise max is safe); feeds the stability
        #: vector that garbage-collects the log
        self.known_apply: List[List[int]] = [[0] * n for _ in range(n)]
        # intentional: this process's own digest row must track its live
        # Apply vector, so it is an alias by design, never a stale copy.
        self.known_apply[process_id] = self.apply_vec  # reprolint: disable=RL003
        self._round = 0
        self.duplicates = 0
        self.gc_dropped = 0

    # -- operations (identical to OptP except: no broadcast) -------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        i = self.process_id
        self.write_co[i] += 1
        wid = self.next_wid()
        vec = tuple(self.write_co)
        self.store_put(variable, value, wid)
        self.apply_vec[i] += 1
        self.last_write_on[variable] = vec
        self.log[wid] = (variable, value, vec)
        return WriteOutcome(wid=wid, outgoing=())

    def read(self, variable: Hashable) -> ReadOutcome:
        lwo = self.last_write_on.get(variable)
        if lwo is not None:
            for t, v in enumerate(lwo):
                if v > self.write_co[t]:
                    self.write_co[t] = v
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- anti-entropy ------------------------------------------------------------

    def _next_peer(self) -> int:
        """Deterministic round-robin over the other processes."""
        offset = 1 + self._round % (self.n_processes - 1)
        return (self.process_id + offset) % self.n_processes

    def on_timer(self) -> Sequence[Outgoing]:
        if self.n_processes == 1:
            return ()
        peer = self._next_peer()
        self._round += 1
        digest = ControlMessage(
            sender=self.process_id,
            kind=DIGEST_KIND,
            payload={
                "apply": tuple(self.apply_vec),
                # stable per-message latency keying
                "batch_seq": self._round,
            },
        )
        return (Outgoing(digest, peer),)

    def on_control(self, msg: ControlMessage) -> Sequence[Outgoing]:
        if msg.kind != DIGEST_KIND:
            raise ValueError(f"unknown control kind {msg.kind!r}")
        requester = msg.sender
        theirs = msg.payload["apply"]
        self._note_peer_progress(requester, theirs)
        out: List[Outgoing] = []
        # everything we hold beyond the requester's per-writer prefixes
        for wid, (variable, value, vec) in self.log.items():
            if wid.seq > theirs[wid.process]:
                update = UpdateMessage(
                    sender=wid.process,  # the original writer
                    wid=wid,
                    variable=variable,
                    value=value,
                    payload={WRITE_CO_KEY: vec},
                )
                out.append(Outgoing(update, requester))
        return out

    def _note_peer_progress(self, peer: int, apply_vec) -> None:
        """Fold a peer's digest into the stability computation and GC
        log entries every replica is known to have applied.

        A write ``wid`` is *stable* when ``wid.seq <= min over all
        processes of known_apply[p][wid.process]`` -- then no digest
        can ever again ask for it.  (A silent/crashed peer freezes its
        row at the last heard value, so stability stalls rather than
        over-collecting -- GC is safe, merely not live, under faults.)
        """
        row = self.known_apply[peer]
        for t, v in enumerate(apply_vec):
            if v > row[t]:
                row[t] = v
        stability = [
            min(self.known_apply[p][t] for p in range(self.n_processes))
            for t in range(self.n_processes)
        ]
        stale = [
            wid for wid in self.log if wid.seq <= stability[wid.process]
        ]
        for wid in stale:
            del self.log[wid]
        self.gc_dropped += len(stale)

    # -- message handling (OptP's predicate + duplicate discard) ------------------

    def classify(self, msg: UpdateMessage) -> Disposition:
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        if msg.wid.seq <= self.apply_vec[u]:
            # already applied (another peer delivered it first)
            return Disposition.DISCARD
        if self.apply_vec[u] != w_co[u] - 1:
            return Disposition.BUFFER
        for t in range(self.n_processes):
            if t != u and w_co[t] > self.apply_vec[t]:
                return Disposition.BUFFER
        return Disposition.APPLY

    def apply_update(self, msg: UpdateMessage) -> None:
        u = msg.sender
        w_co = tuple(msg.payload[WRITE_CO_KEY])
        self.store_put(msg.variable, msg.value, msg.wid)
        self.apply_vec[u] += 1
        self.last_write_on[msg.variable] = w_co
        self.log[msg.wid] = (msg.variable, msg.value, w_co)

    def discard_update(self, msg: UpdateMessage) -> None:
        self.duplicates += 1

    # -- introspection ---------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "write_co": tuple(self.write_co),
            "apply": tuple(self.apply_vec),
            "log_size": len(self.log),
        }

    def stats(self) -> Dict[str, int]:
        return {
            "duplicates": self.duplicates,
            "rounds": self._round,
            "gc_dropped": self.gc_dropped,
            "log_size": len(self.log),
        }
