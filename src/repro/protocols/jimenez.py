"""Sender-side writing semantics: the token protocol of Jimenez et al.

Section 3.6 of the paper describes the protocol of [7] (Jimenez,
Fernandez, Cholvi, *A parametrized algorithm that implements
sequential, causal, and cache memory consistency*, 2001):

    "The protocol proposed in [7] applies writing semantics at the
    sender side.  This is done using a token system that allows a
    process p_i to [...] send its set of updates only when t_i = i.
    When a process p performs several write operations on the same
    variable x and then t_i = i, it only sends the update message
    corresponding to the last write operation on x it has executed.
    This means that the other processes only see the last write of x
    done by p, missing all previous p's writes on x."

Rendition implemented here
--------------------------

- A single token circulates on the logical ring ``p_0 -> p_1 -> ... ->
  p_{n-1} -> p_0`` (injected at ``p_0`` by :meth:`bootstrap`).
- Writes apply locally at once (reads stay wait-free) and are parked in
  a per-variable *pending* slot; a newer local write to the same
  variable **suppresses** the parked one (the sender-side overwrite).
- On token receipt the holder broadcasts its pending updates as one
  atomic *batch* (a control message), stamped with a global batch
  sequence number carried by the token, then forwards the token.
- Receivers apply batches in batch-sequence order, buffering
  out-of-order ones.  Token order totally orders batches, and a write
  always rides a batch no earlier than every write it causally depends
  on, so batch-order application is causally safe; applying each batch
  atomically keeps mixed-variable dependencies (a suppressed ``w(x)``
  causally before a sent ``w(y)``) invisible to readers.

Bookkeeping differences from class 𝒫 (and hence from OptP/ANBKH):
suppressed writes are **never propagated at all**, so liveness in the
paper's sense fails by design (`in_class_p = False`); batch buffering
is counted as a write delay for every write inside a delayed batch.
Propagation latency is dominated by token rotation -- the comparison
benchmark (`Q3`) shows the trade: near-zero receiver delays and reduced
traffic vs. token-bound staleness and lost intermediate writes.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.model.operations import WriteId
from repro.core.base import (
    BROADCAST,
    ControlMessage,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)

TOKEN_KIND = "token"
BATCH_KIND = "batch"


class JimenezTokenProtocol(Protocol):
    """Token-based causal DSM with sender-side writing semantics ([7])."""

    name = "jimenez-token"
    in_class_p = False

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        #: last unpropagated local write per variable, in issue order of
        #: the *surviving* write (dict insertion order, re-inserted on
        #: overwrite so batch order respects ->po among survivors).
        self.pending: Dict[Hashable, Tuple[WriteId, Any]] = {}
        #: batches with seq > next expected, waiting for their turn.
        self.batch_buffer: Dict[int, ControlMessage] = {}
        self.next_batch = 0
        self.suppressed = 0
        self.batches_sent = 0
        self.batch_delays = 0  # writes inside out-of-order (buffered) batches

    # -- bootstrap ----------------------------------------------------------

    def bootstrap(self) -> Sequence[Outgoing]:
        """Process 0 starts holding the token: it immediately flushes
        (trivially empty) and forwards the token to process 1.

        With a single process there is nothing to propagate and no ring
        to circulate on: the token machinery is disabled entirely.
        """
        if self.process_id == 0 and self.n_processes > 1:
            return self._flush_and_forward(batch_seq=0)
        return ()

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        wid = self.next_wid()
        self.store_put(variable, value, wid)
        if self.n_processes > 1:
            if variable in self.pending:
                self.suppressed += 1
                del self.pending[variable]  # re-insert at the end (issue order)
            self.pending[variable] = (wid, value)
        return WriteOutcome(wid=wid, outgoing=())

    def read(self, variable: Hashable) -> ReadOutcome:
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- token / batch handling ----------------------------------------------

    def on_control(self, msg: ControlMessage) -> Sequence[Outgoing]:
        if msg.kind == TOKEN_KIND:
            return self._flush_and_forward(batch_seq=msg.payload["batch_seq"])
        if msg.kind == BATCH_KIND:
            return self._accept_batch(msg)
        raise ValueError(f"unknown control kind {msg.kind!r}")

    def _flush_and_forward(self, batch_seq: int) -> Sequence[Outgoing]:
        """Token arrived: broadcast pending writes as batch ``batch_seq``,
        feed our own batch through the ordinary sequencing path (the
        token can outrun earlier batch messages, so ``next_batch`` may
        lag behind ``batch_seq``), then forward the token."""
        writes = tuple(
            (wid, var, value) for var, (wid, value) in self.pending.items()
        )
        self.pending.clear()
        batch = ControlMessage(
            sender=self.process_id,
            kind=BATCH_KIND,
            payload={"batch_seq": batch_seq, "writes": writes},
        )
        self.batches_sent += 1
        followups: List[Outgoing] = [Outgoing(batch, BROADCAST)]
        self._accept_batch(batch)
        token = ControlMessage(
            sender=self.process_id,
            kind=TOKEN_KIND,
            payload={"batch_seq": batch_seq + 1},
        )
        next_holder = (self.process_id + 1) % self.n_processes
        followups.append(Outgoing(token, next_holder))
        return followups

    def _accept_batch(self, msg: ControlMessage) -> Sequence[Outgoing]:
        seq = msg.payload["batch_seq"]
        if seq < self.next_batch:
            raise AssertionError(
                f"duplicate batch {seq} (next expected {self.next_batch})"
            )
        if seq != self.next_batch:
            self.batch_buffer[seq] = msg
            if msg.sender != self.process_id:
                self.batch_delays += len(msg.payload["writes"])
            return ()
        self._apply_batch(msg)
        self._drain_buffered()
        return ()

    def _drain_buffered(self) -> None:
        while self.next_batch in self.batch_buffer:
            self._apply_batch(self.batch_buffer.pop(self.next_batch))

    def _apply_batch(self, msg: ControlMessage) -> None:
        """Apply all writes of a batch atomically, in batch order.

        Our own batches advance the cursor without touching the store:
        their writes were applied locally at write() time.
        """
        assert msg.payload["batch_seq"] == self.next_batch
        if msg.sender != self.process_id:
            for wid, variable, value in msg.payload["writes"]:
                self.store_put(variable, value, wid)
                self.record_apply(wid, variable, value)
        self.next_batch += 1

    # -- unused update-message hooks -------------------------------------------

    def classify(self, msg: UpdateMessage) -> Disposition:  # pragma: no cover
        raise NotImplementedError(
            "JimenezTokenProtocol propagates writes via control batches"
        )

    def apply_update(self, msg: UpdateMessage) -> None:  # pragma: no cover
        raise NotImplementedError(
            "JimenezTokenProtocol propagates writes via control batches"
        )

    # -- introspection ------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "pending": dict(self.pending),
            "next_batch": self.next_batch,
            "suppressed": self.suppressed,
        }

    def stats(self) -> Dict[str, int]:
        return {
            "suppressed": self.suppressed,
            "batches_sent": self.batches_sent,
            "batch_delays": self.batch_delays,
        }

    def missing_applies(self) -> int:
        return self.suppressed * (self.n_processes - 1)
