"""Compatibility re-export: the class-𝒫 framework lives in
:mod:`repro.core.base` (it is part of the paper's formalism, and keeping
it inside :mod:`repro.core` avoids a package-import cycle with the
protocol implementations)."""

from repro.core.base import (
    BROADCAST,
    ControlMessage,
    Disposition,
    Message,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)

__all__ = [
    "BROADCAST",
    "ControlMessage",
    "Disposition",
    "Message",
    "Outgoing",
    "Protocol",
    "ReadOutcome",
    "UpdateMessage",
    "WriteOutcome",
]
