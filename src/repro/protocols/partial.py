"""Partially replicated causal DSM (the setting of Raynal-Singhal [14]).

The paper (and OptP) assume every process replicates every variable.
Reference [14] — *Exploiting Write Semantics in Implementing Partially
Replicated Causal Objects* — works in the setting this module
implements: each variable ``x`` is held by a subset ``replicas(x)`` of
the processes; writes are multicast to holders only; processes read and
write only variables they hold.  The challenge is that causal
dependencies may pass *through* variables a replica does not hold::

    w(x) ->co w(y) ->co w(z)     replica d holds {x, z} but not y

``d`` never receives ``w(y)``, yet must still apply ``w(x)`` before
``w(z)``.

Mechanism (OptP's idea, projected per destination)
--------------------------------------------------

Exactly like :mod:`repro.protocols.ws_receiver`, every update message
for ``w`` carries ``VP``: per variable, the vector of per-process write
counts inside ``w``'s causal past (exact under componentwise-max
merging, because per-process writes are prefixes).  A holder ``d`` of
``x`` derives the *relevant* dependency vector itself::

    rel(t) = sum over y in held(d) of VP[y][t]      (own write excluded)

and applies ``w`` iff ``rel(t) <= AppliedRel[t]`` for every ``t``,
where ``AppliedRel[t]`` counts the writes of ``p_t`` applied at ``d``
(all of which are on variables ``d`` holds).  Because each process's
writes on ``held(d)`` form a subsequence of its write sequence and
``rel`` counts its prefixes, the condition forces per-sender
subsequence order and (transitively, since ``VP`` flows through reads
of *any* variable) the full ``->co`` restriction to ``d``'s held
writes — the partial-replication analogue of ``X_co-safe``.  Delays
happen only when a *held* causal predecessor is missing: the protocol
inherits OptP's optimality in the projected sense (checked by the
standard delay audit, which only ever demands held predecessors since
unheld ones are never applied anywhere... at that replica).

Class-𝒫 membership: **no** by the paper's letter (a write is applied
only at its holders).  The shortfall is exact and reported via
``stats()['unreplicated']`` / ``missing_applies()`` so the substrate's
quiescence and the liveness checker stay balanced.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.base import (
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.flatstate import FlatDeps, FlatProgress
from repro.core.vectorclock import vc_join_inplace
from repro.model.operations import WriteId

VAR_PAST_KEY = "var_past"


class ReplicationMap:
    """Static assignment ``variable -> frozenset(holder process ids)``.

    All processes know the full map (standard for static partial
    replication schemes).  Unknown variables raise — a workload that
    touches an unmapped variable is a configuration bug, not data.
    """

    def __init__(self, assignment: Mapping[Hashable, Sequence[int]],
                 n_processes: int):
        self.n_processes = n_processes
        self._holders: Dict[Hashable, FrozenSet[int]] = {}
        for var, procs in assignment.items():
            holders = frozenset(procs)
            if not holders:
                raise ValueError(f"variable {var!r} has no replicas")
            for p in sorted(holders):
                if not 0 <= p < n_processes:
                    raise ValueError(
                        f"replica {p} of {var!r} out of range [0, {n_processes})"
                    )
            self._holders[var] = holders

    @classmethod
    def round_robin(cls, variables: Sequence[Hashable], n_processes: int,
                    k: int) -> "ReplicationMap":
        """``k`` holders per variable, spread round-robin."""
        if not 1 <= k <= n_processes:
            raise ValueError("need 1 <= k <= n_processes")
        assignment = {}
        for idx, var in enumerate(variables):
            assignment[var] = [(idx + j) % n_processes for j in range(k)]
        return cls(assignment, n_processes)

    @classmethod
    def full(cls, variables: Sequence[Hashable], n_processes: int) -> "ReplicationMap":
        """Degenerate full replication (for differential testing)."""
        return cls({v: range(n_processes) for v in variables}, n_processes)

    def holders(self, variable: Hashable) -> FrozenSet[int]:
        try:
            return self._holders[variable]
        except KeyError:
            raise KeyError(f"variable {variable!r} not in the replication map")

    def held_by(self, process: int) -> FrozenSet[Hashable]:
        return frozenset(
            v for v, hs in self._holders.items() if process in hs
        )

    def variables(self) -> FrozenSet[Hashable]:
        return frozenset(self._holders)


class PartialReplicationProtocol(Protocol):
    """Causally consistent DSM over a static partial replication map."""

    name = "partial"
    in_class_p = False
    supports_flat_state = True

    def __init__(self, process_id: int, n_processes: int,
                 replication: ReplicationMap):
        super().__init__(process_id, n_processes)
        if replication.n_processes != n_processes:
            raise ValueError("replication map sized for a different cluster")
        self.replication = replication
        self.held = replication.held_by(process_id)
        #: per-variable causal-past vectors (exact; see module docstring)
        self.var_past: Dict[Hashable, List[int]] = {}
        #: writes of p_t applied here (all on held variables)
        self.applied_rel: List[int] = [0] * n_processes
        #: last applied write's VP map per variable, in wire form (the
        #: sorted immutable pairs tuple shipped in payloads).
        self.last_var_past_on: Dict[
            Hashable, Tuple[Tuple[Hashable, Tuple[int, ...]], ...]
        ] = {}
        self.unreplicated = 0
        self._fp: Optional[FlatProgress] = None

    # -- helpers ---------------------------------------------------------------

    def _vp_row(self, var: Hashable) -> List[int]:
        row = self.var_past.get(var)
        if row is None:
            row = [0] * self.n_processes
            self.var_past[var] = row
        return row

    def _frozen_var_past(self) -> Tuple[Tuple[Hashable, Tuple[int, ...]], ...]:
        """Wire form of the VP map: sorted, deeply immutable pairs (the
        payload contract -- in-flight messages are shared across
        receivers; see :mod:`repro.protocols.ws_receiver`)."""
        return tuple(sorted(
            ((var, tuple(vec)) for var, vec in self.var_past.items()),
            key=lambda pair: repr(pair[0]),
        ))

    def _check_held(self, variable: Hashable, op: str) -> None:
        if variable not in self.held:
            raise PermissionError(
                f"p{self.process_id} does not replicate {variable!r} "
                f"(cannot {op}; holders: "
                f"{sorted(self.replication.holders(variable))})"
            )

    def _rel(self, vp: Tuple[Tuple[Hashable, Tuple[int, ...]], ...],
             sender: int) -> List[int]:
        """Dependency counts restricted to this replica's held set,
        excluding the carried write itself."""
        rel = [0] * self.n_processes
        for var, vec in vp:
            if var in self.held:
                for t, v in enumerate(vec):
                    rel[t] += v
        rel[sender] -= 1  # the write itself
        return rel

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        self._check_held(variable, "write")
        i = self.process_id
        self._vp_row(variable)[i] += 1
        wid = self.next_wid()
        vp = self._frozen_var_past()
        msg = UpdateMessage(
            sender=i,
            wid=wid,
            variable=variable,
            value=value,
            payload={VAR_PAST_KEY: vp},
        )
        self.store_put(variable, value, wid)
        if self._fp is None:
            self.applied_rel[i] += 1
        else:
            self._fp.advance(i)
        # the wire pairs tuple doubles as the read-merge source; no
        # per-write dict rebuild (immutable, so sharing is safe)
        self.last_var_past_on[variable] = vp  # reprolint: disable=RL003
        holders = self.replication.holders(variable)
        self.unreplicated += self.n_processes - len(holders)
        outgoing = tuple(
            Outgoing(msg, dest) for dest in sorted(holders) if dest != i
        )
        return WriteOutcome(wid=wid, outgoing=outgoing)

    def read(self, variable: Hashable) -> ReadOutcome:
        self._check_held(variable, "read")
        last = self.last_var_past_on.get(variable)
        if last is not None:
            for var, vec in last:
                vc_join_inplace(self._vp_row(var), vec)
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- message handling -------------------------------------------------------

    def classify(self, msg: UpdateMessage) -> Disposition:
        rel = self._rel(msg.payload[VAR_PAST_KEY], msg.sender)
        for t in range(self.n_processes):
            if rel[t] > self.applied_rel[t]:
                return Disposition.BUFFER
        return Disposition.APPLY

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        """Held-restricted dependencies as explicit apply events.

        ``rel[t]`` counts the writes of ``p_t`` on *held* variables in
        the message's causal past; the t-th obligation is satisfied
        when the ``rel[t]``-th such write applies here.  Apply events
        are therefore keyed by this replica's per-sender *applied
        count* (see :meth:`apply_event`), not by global write sequence
        numbers -- p_t's held writes form a subsequence of its write
        sequence."""
        rel = self._rel(msg.payload[VAR_PAST_KEY], msg.sender)
        return [
            (t, rel[t])
            for t in range(self.n_processes)
            if rel[t] > self.applied_rel[t]
        ]

    def apply_event(self, msg: UpdateMessage) -> Tuple[int, int]:
        # Called right after apply_update: applied_rel[sender] already
        # counts the apply that just happened.
        return (msg.sender, self.applied_rel[msg.sender])

    def apply_update(self, msg: UpdateMessage) -> None:
        # NOTE: the write's causal knowledge (its VP map, including
        # counts for variables we do not hold) is stored but NOT merged
        # into our own var_past here -- merging happens at *read* time
        # only, exactly like OptP's line-1 read merge.  Merging on
        # apply would make our later writes claim dependence on writes
        # we merely applied, reintroducing the false causality the
        # paper eliminates.
        self.store_put(msg.variable, msg.value, msg.wid)
        if self._fp is None:
            self.applied_rel[msg.sender] += 1
        else:
            self._fp.advance(msg.sender)
        # The wire VP is a deeply immutable sorted pairs tuple (payload
        # contract), so storing it bare is alias-safe -- and drops the
        # per-delivery dict rebuild this hot path used to pay.
        self.last_var_past_on[msg.variable] = msg.payload[VAR_PAST_KEY]  # reprolint: disable=RL003

    # -- flat-state backend -------------------------------------------------------

    def enable_flat_state(self) -> None:
        if self._fp is None:
            self._fp = FlatProgress(self.applied_rel)

    def flat_progress(self) -> FlatProgress:
        return self._fp

    def flat_deps(self, msg: UpdateMessage) -> FlatDeps:
        """Receiver-side requirement row: the held-restricted ``rel``
        counts.  No pivot -- the scalar predicate is pure ``>=`` (a
        duplicate that slips past node-level dedup re-applies under
        both backends, keeping flat byte-identical to scalar)."""
        return FlatDeps.from_counts(
            self._rel(msg.payload[VAR_PAST_KEY], msg.sender), None
        )

    # -- introspection ------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "applied_rel": tuple(self.applied_rel),
            "held": tuple(sorted(map(str, self.held))),
        }

    def stats(self) -> Dict[str, int]:
        return {"unreplicated": self.unreplicated}

    def missing_applies(self) -> int:
        return self.unreplicated


def partial_factory(replication: ReplicationMap):
    """A cluster-compatible factory binding the replication map."""

    def make(process_id: int, n_processes: int) -> PartialReplicationProtocol:
        return PartialReplicationProtocol(process_id, n_processes, replication)

    return make
