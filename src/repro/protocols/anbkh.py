"""ANBKH -- the Ahamad/Neiger/Burns/Kohli/Hutto causal memory protocol.

Reference implementation of the protocol of [1] (Ahamad et al.,
*Causal memory: definitions, implementation and programming*,
Distributed Computing 9(1), 1995), as characterized in Section 3.6 of
the reproduced paper:

    "To get causal consistent histories ANBKH orders all apply events
    at each process according to the happened-before relation of their
    corresponding send events. [...] This is obtained by causally
    ordering message deliveries through a Fidge-Mattern system of
    vector clocks which considers apply events as relevant ones."

Concretely this is Birman-Schiper-Stephenson causal broadcast: each
process keeps a vector ``VC`` where ``VC[j]`` counts the writes of
``p_j`` applied locally.  A write by ``p_i`` increments ``VC[i]`` and
broadcasts the new vector ``VT``; a receiver ``p_k`` delays the message
until ``VT[i] = VC[i] + 1`` (next-in-order from the sender) and
``VT[t] <= VC[t]`` for all ``t != i`` (everything the sender had
applied before sending is applied here too).

Because the sender's ``VC`` merges *every* apply that preceded the
send -- whether or not the sender ever read those values -- the
enabling set is

    X_ANBKH(apply_k(w)) = { apply_k(w') : send(w') -> send(w) }

a superset of ``X_co-safe``: the protocol is safe but **not**
write-delay optimal (paper, Section 3.6, Figure 3 / Table 2 -- the
"false causality" phenomenon of Tarafdar-Garg [15]).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.base import (
    BROADCAST,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.flatstate import FlatDeps, FlatProgress

#: Payload key for the Fidge-Mattern timestamp of the send event.
VT_KEY = "vt"


class ANBKHProtocol(Protocol):
    """Causal memory via Fidge-Mattern causal broadcast (safe, not optimal)."""

    name = "anbkh"
    in_class_p = True
    supports_flat_state = True
    supports_snapshot = True

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        #: vc[j] = number of writes of p_j applied locally.
        self.vc: List[int] = [0] * n_processes
        self._fp: Optional[FlatProgress] = None

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        i = self.process_id
        fp = self._fp
        if fp is None:
            self.vc[i] += 1
        else:
            fp.advance(i)
        wid = self.next_wid()
        assert wid.seq == self.vc[i]
        vt = tuple(self.vc)
        msg = UpdateMessage(
            sender=i,
            wid=wid,
            variable=variable,
            value=value,
            payload={VT_KEY: vt},
            flat_deps=None if fp is None else self._make_flat_deps(vt, i),
        )
        self.store_put(variable, value, wid)
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg, BROADCAST),))

    def read(self, variable: Hashable) -> ReadOutcome:
        # Reads are purely local; unlike OptP there is no clock merge on
        # read -- causal dependencies are (over-)captured by the apply
        # history folded into vc at send time.
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- message handling -------------------------------------------------------

    def classify(self, msg: UpdateMessage) -> Disposition:
        u = msg.sender
        vt = msg.payload[VT_KEY]
        if vt[u] != self.vc[u] + 1:
            return Disposition.BUFFER
        for t in range(self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                return Disposition.BUFFER
        return Disposition.APPLY

    def apply_update(self, msg: UpdateMessage) -> None:
        self.store_put(msg.variable, msg.value, msg.wid)
        if self._fp is None:
            self.vc[msg.sender] += 1
        else:
            self._fp.advance(msg.sender)

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        """The BSS delivery condition as explicit apply events:
        ``VT[u] = VC[u] + 1`` waits for the apply of ``p_u``'s write
        number ``VT[u] - 1``; ``VT[t] <= VC[t]`` waits for ``p_t``'s
        write number ``VT[t]``.  Dependencies on this process itself
        cannot be pending (the sender cannot have applied more of our
        writes than we issued), so only remote applies are listed."""
        u = msg.sender
        vt = msg.payload[VT_KEY]
        deps: List[Tuple[int, int]] = []
        if self.vc[u] + 1 < vt[u]:
            deps.append((u, vt[u] - 1))
        for t in range(self.n_processes):
            if t != u and vt[t] > self.vc[t]:
                deps.append((t, vt[t]))
        return deps

    # -- flat-state backend -----------------------------------------------------

    @staticmethod
    def _make_flat_deps(vt: Tuple[int, ...], sender: int) -> FlatDeps:
        """The BSS delivery condition as a requirement row:
        ``VC[t] >= VT[t]`` for ``t != u``, ``VC[u]`` exactly
        ``VT[u] - 1`` (pivot; overshoot = duplicate)."""
        counts = list(vt)
        counts[sender] -= 1
        return FlatDeps.from_counts(counts, sender)

    def enable_flat_state(self) -> None:
        if self._fp is None:
            self._fp = FlatProgress(self.vc)

    def flat_progress(self) -> FlatProgress:
        return self._fp

    def flat_deps(self, msg: UpdateMessage) -> FlatDeps:
        return self._make_flat_deps(msg.payload[VT_KEY], msg.sender)

    # -- durability ---------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        return {
            "store": [(var, value, wid)
                      for var, (value, wid) in self._store.items()],
            "write_seq": self._write_seq,
            "vc": tuple(self.vc),
        }

    def restore_state(self, doc: Dict[str, Any]) -> None:
        self._store.clear()
        for var, value, wid in doc["store"]:
            self._store[var] = (value, wid)
        self._write_seq = doc["write_seq"]
        # in place: the flat backend's FlatProgress wraps this list.
        # Snapshot restore legitimately rewrites the whole vector --
        # the monotonicity discipline applies to live protocol steps.
        self.vc[:] = doc["vc"]  # reprolint: disable=RL102
        if self._fp is not None:
            self._fp.mark_dirty()

    # -- introspection ------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {"vc": tuple(self.vc)}


def vt_of(msg: UpdateMessage) -> Tuple[int, ...]:
    """The Fidge-Mattern timestamp piggybacked on an ANBKH message."""
    return msg.payload[VT_KEY]
