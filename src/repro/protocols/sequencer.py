"""A totally-ordered (sequencer-based) DSM baseline.

Not from the reproduced paper -- an **extension baseline** quantifying
its introduction's claim that causal memory is "a low latency
abstraction with respect to stronger consistency criteria such as
sequential and atomic consistency, as it admits more executions and,
hence, more concurrency."  This protocol applies *every* write
everywhere in one global order (a strict superset of ``->co``), so
every reordering the network produces costs a write delay; comparing
its delay counts with OptP's measures the price of total order on
identical message schedules (``benchmarks/test_bench_consistency_spectrum.py``).

Mechanism
---------

- Process 0 doubles as the **sequencer**.  A writer sends its write to
  the sequencer as a control request and does **not** apply it to the
  ordered replica yet (``WriteOutcome.local_apply=False``).  Reads
  return the globally ordered state -- except that a process always
  sees its *own* pending writes (store-buffer forwarding): without it,
  reading a variable right after writing it would return the older
  stamped value, violating Definition 1 (the own write causally
  precedes the read by program order).  Forwarding preserves causal
  consistency: same-sender stamping respects issue order, so anything
  causally derived from a forwarded read is still sequenced after it.
- The sequencer stamps requests with a global sequence number (holding
  out-of-order same-sender requests until the gap fills, so ``->po`` is
  respected even on non-FIFO channels) and broadcasts the stamped
  update; it applies the update locally at stamping time.
- Every other process -- *including the original writer* -- applies
  stamped updates in stamp order, buffering gaps (each gap is a write
  delay, Definition 3).

Class-𝒫 membership: yes -- every write is applied at every process
(liveness follows from reliable channels exactly as in Theorem 5).
Safety w.r.t. ``->co``: the stamp order is a linear extension of
``->co`` (see the argument above), so apply orders embed it.  Write
delay optimality: decidedly **not** -- the point of the baseline.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.base import (
    BROADCAST,
    ControlMessage,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.flatstate import FlatDeps, FlatProgress
from repro.model.operations import WriteId

#: Control kind for write requests travelling to the sequencer.
WREQ_KIND = "wreq"
#: Payload key of the global sequence number on stamped updates.
GSN_KEY = "gsn"
#: The process acting as sequencer.
SEQUENCER = 0


class SequencerProtocol(Protocol):
    """Totally-ordered DSM via a fixed sequencer (extension baseline)."""

    name = "sequencer"
    in_class_p = True
    supports_flat_state = True

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        #: next stamp to hand out (sequencer only)
        self.next_gsn = 0
        #: next stamp to apply locally
        self.next_apply_gsn = 0
        self._fp: Optional[FlatProgress] = None
        #: sequencer: per-sender next expected write seq (gap handling)
        self.expected_seq: List[int] = [1] * n_processes
        #: sequencer: out-of-order write requests, per sender by seq
        self.parked: Dict[Tuple[int, int], ControlMessage] = {}
        #: own writes not yet stamped, forwarded to local reads
        self.pending_own: Dict[Hashable, Tuple[Any, WriteId]] = {}

    @property
    def is_sequencer(self) -> bool:
        return self.process_id == SEQUENCER

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        wid = self.next_wid()
        if self.is_sequencer:
            # Stamp own writes immediately: apply locally + broadcast.
            outgoing = self._stamp_and_broadcast(wid, variable, value)
            return WriteOutcome(wid=wid, outgoing=tuple(outgoing),
                                local_apply=True)
        req = ControlMessage(
            sender=self.process_id,
            kind=WREQ_KIND,
            payload={"wid": wid, "variable": variable, "value": value,
                     # reuse batch_seq slot for stable latency keying
                     "batch_seq": wid.seq},
        )
        self.pending_own[variable] = (value, wid)
        return WriteOutcome(
            wid=wid,
            outgoing=(Outgoing(req, SEQUENCER),),
            local_apply=False,
        )

    def read(self, variable: Hashable) -> ReadOutcome:
        pending = self.pending_own.get(variable)
        if pending is not None:
            value, wid = pending
            return ReadOutcome(value=value, read_from=wid)
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- sequencer ----------------------------------------------------------------

    def on_control(self, msg: ControlMessage) -> Sequence[Outgoing]:
        if msg.kind != WREQ_KIND:
            raise ValueError(f"unknown control kind {msg.kind!r}")
        if not self.is_sequencer:
            raise AssertionError("write request delivered to non-sequencer")
        wid: WriteId = msg.payload["wid"]
        sender = wid.process
        if wid.seq != self.expected_seq[sender]:
            # Same-sender requests can overtake each other on non-FIFO
            # channels; park until the gap fills so stamping respects ->po.
            self.parked[(sender, wid.seq)] = msg
            return ()
        out: List[Outgoing] = []
        out += self._stamp_request(msg)
        # drain any parked successors this unblocks
        while (sender, self.expected_seq[sender]) in self.parked:
            nxt = self.parked.pop((sender, self.expected_seq[sender]))
            out += self._stamp_request(nxt)
        return out

    def _stamp_request(self, msg: ControlMessage) -> List[Outgoing]:
        wid: WriteId = msg.payload["wid"]
        self.expected_seq[wid.process] += 1
        return self._stamp_and_broadcast(
            wid, msg.payload["variable"], msg.payload["value"]
        )

    def _stamp_and_broadcast(
        self, wid: WriteId, variable: Hashable, value: Any
    ) -> List[Outgoing]:
        gsn = self.next_gsn
        self.next_gsn += 1
        update = UpdateMessage(
            sender=SEQUENCER,
            wid=wid,
            variable=variable,
            value=value,
            payload={GSN_KEY: gsn},
            flat_deps=None if self._fp is None
            else FlatDeps.from_counts([gsn], 0),
        )
        # The sequencer's own replica applies at stamping time.
        assert gsn == self.next_apply_gsn
        self.store_put(variable, value, wid)
        if self._fp is not None:
            self._fp.advance(0)
        self.next_apply_gsn += 1
        if wid.process == SEQUENCER:
            # write(): the WRITE trace event covers this local apply
            pass
        else:
            self.record_apply(wid, variable, value)
        return [Outgoing(update, BROADCAST)]

    # -- receivers ------------------------------------------------------------------

    def classify(self, msg: UpdateMessage) -> Disposition:
        if msg.payload[GSN_KEY] == self.next_apply_gsn:
            return Disposition.APPLY
        return Disposition.BUFFER

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        """Stamp order is a single chain: update ``gsn`` waits only for
        the apply of update ``gsn - 1``.  A stamped update with
        ``gsn < next_apply_gsn`` (a network duplicate) has no pending
        dependency and can never apply: empty list = dead-park."""
        gsn = msg.payload[GSN_KEY]
        if gsn > self.next_apply_gsn:
            return [(SEQUENCER, gsn - 1)]
        return []

    def apply_event(self, msg: UpdateMessage) -> Tuple[int, int]:
        """Wakeup keys follow the global stamp order, not per-writer
        sequence numbers (every stamped update has sender SEQUENCER)."""
        return (SEQUENCER, msg.payload[GSN_KEY])

    def apply_update(self, msg: UpdateMessage) -> None:
        assert msg.payload[GSN_KEY] == self.next_apply_gsn
        self.store_put(msg.variable, msg.value, msg.wid)
        if self._fp is not None:
            self._fp.advance(0)
        self.next_apply_gsn += 1
        pending = self.pending_own.get(msg.variable)
        if pending is not None and pending[1] == msg.wid:
            # our own write came back stamped; stop forwarding it
            del self.pending_own[msg.variable]

    # -- flat-state backend -------------------------------------------------------------

    def enable_flat_state(self) -> None:
        # One-component progress: the stamp chain.  next_apply_gsn
        # stays the authoritative scalar; the flat view mirrors it so
        # the scheduler's counting index never touches the int attr.
        if self._fp is None:
            self._fp = FlatProgress([self.next_apply_gsn])

    def flat_progress(self) -> FlatProgress:
        return self._fp

    def flat_deps(self, msg: UpdateMessage) -> FlatDeps:
        return FlatDeps.from_counts([msg.payload[GSN_KEY]], 0)

    def flat_dep_key(self, component: int, required: int) -> Tuple[int, int]:
        """Requirement ``next_apply_gsn >= gsn`` is satisfied by the
        apply of stamp ``gsn - 1`` (whose apply_event key is
        ``(SEQUENCER, gsn - 1)``)."""
        return (SEQUENCER, required - 1)

    # -- introspection ------------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "next_gsn": self.next_gsn,
            "next_apply_gsn": self.next_apply_gsn,
        }
