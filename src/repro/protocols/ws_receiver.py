"""Receiver-side writing semantics on top of OptP vectors.

Section 3.6 of the paper discusses protocols [2, 14] (Baldoni et al.
OPODIS 2002; Raynal-Singhal) that exploit the *writing semantics*
notion of Raynal-Ahamad: a process may apply a write ``w(x)`` even
though a causally earlier ``w'(x)`` has not been applied yet, provided
no write ``w''(y)`` on a *different* variable sits causally between
them -- ``w`` then *overwrites* ``w'``, whose message is discarded on
(late) arrival.  Such protocols leave class 𝒫 (some writes are never
applied at some processes) but can trade write delays for skipped
applies.  Footnote 8 of the paper notes writing semantics is orthogonal
to optimality and "could be applied also to the protocol presented in
the next section" -- which is exactly what this module does: OptP's
``Write_co`` machinery extended with per-variable causal-past counters.

Mechanism
---------

Each update message for a write ``w`` on ``x`` piggybacks, in addition
to ``W = w.Write_co``:

- ``VP``: a map ``variable -> vector`` where ``VP[y][t]`` counts the
  writes of ``p_t`` **on y** in ``w``'s causal past (own write
  included for ``y = x, t = sender``).

Because a process's writes are totally ordered by ``->po``, the writes
of ``p_t`` inside any causal past form a *prefix* of ``p_t``'s write
sequence; hence per-variable counts over prefixes merge exactly under
componentwise max (the same argument as for ``Write_co`` itself), and
``VP`` stays exact when merged on reads.

The receiver keeps ``Apply[t]`` (writes of ``p_t`` applied *or
skipped*) and ``ApplyOn[y][t]`` (ditto, restricted to writes on ``y``).
An incoming ``w(x)`` with sender ``u`` is applicable-with-overwrite iff
for every ``t`` the number of missing causal predecessors from ``p_t``
equals the number of missing causal predecessors from ``p_t`` **on
x**::

    missing(t)   = W[t] - Apply[t]            (W[u]-1 for t = u)
    missing_x(t) = VP[x][t] - ApplyOn[x][t]   (VP[x][u]-1 for t = u)

    deliverable  iff  forall t:  missing(t) == missing_x(t) >= 0

When all ``missing(t)`` are zero this degenerates to OptP's own
activation predicate; when positive, every missing predecessor is a
write on ``x`` overwritten by ``w``, so the receiver jumps its counters
forward (marking them skipped) and applies ``w`` directly.  Messages
arriving for already-skipped writes (``seq <= Apply[sender]``) are
discarded.

The equality check is sound: ``Apply``/``ApplyOn`` always describe an
exact per-sender prefix, and the condition forces each missing write to
be on ``x`` and in ``w``'s causal past, which (inductively) rules out
any interposed write on a different variable -- the precise overwrite
precondition of Raynal-Ahamad.  The price is the ``VP`` payload: one
vector per variable written in the causal past (the overhead metric in
``benchmarks/test_bench_writing_semantics.py`` makes this cost visible).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from repro.model.operations import WriteId
from repro.core.base import (
    BROADCAST,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.vectorclock import vc_join_inplace

WRITE_CO_KEY = "write_co"
VAR_PAST_KEY = "var_past"

#: wire form of the VP map: sorted ((variable, vector), ...) pairs --
#: deeply immutable, as the payload contract requires.
VarPastWire = Tuple[Tuple[Hashable, Tuple[int, ...]], ...]


def _vp_get(pairs: VarPastWire, variable: Hashable,
            default: Tuple[int, ...]) -> Tuple[int, ...]:
    """Look up one variable's vector in the wire-form VP (linear scan:
    the pairs list is as short as the causal past's variable set)."""
    for var, vec in pairs:
        if var == variable:
            return vec
    return default


class WSReceiverProtocol(Protocol):
    """OptP extended with receiver-side writing semantics ([2,14] style).

    Not in class 𝒫: overwritten writes are *skipped* (never applied) at
    some processes.  Counters: ``stats()['skipped']`` (writes logically
    overwritten at this replica) and ``stats()['discarded']`` (messages
    of already-skipped writes dropped on arrival).
    """

    name = "ws-receiver"
    in_class_p = False

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        n = n_processes
        self.write_co: List[int] = [0] * n
        self.apply_vec: List[int] = [0] * n           # applied-or-skipped
        self.var_past: Dict[Hashable, List[int]] = {}  # my causal past, per var
        self.apply_on: Dict[Hashable, List[int]] = {}  # applied-or-skipped per var
        self.last_write_on: Dict[Hashable, Tuple[int, ...]] = {}
        #: last applied write's VP map per variable, in wire form (the
        #: sorted immutable pairs tuple shipped in payloads).
        self.last_var_past_on: Dict[Hashable, VarPastWire] = {}
        self.skipped = 0
        self.discarded = 0

    # -- small helpers ---------------------------------------------------------

    def _vp_row(self, table: Dict[Hashable, List[int]], var: Hashable) -> List[int]:
        row = table.get(var)
        if row is None:
            row = [0] * self.n_processes
            table[var] = row
        return row

    def _frozen_var_past(self) -> Tuple[Tuple[Hashable, Tuple[int, ...]], ...]:
        """The VP map as a deeply immutable tuple of (variable, vector)
        pairs, sorted for determinism.  Payload values must be immutable
        (see :class:`repro.core.base.UpdateMessage`): in-flight messages
        are shared across receivers, and the model checker's isolation
        invariant flags any mutable container smuggled through one."""
        return tuple(sorted(
            ((var, tuple(vec)) for var, vec in self.var_past.items()),
            key=lambda pair: repr(pair[0]),
        ))

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        i = self.process_id
        self.write_co[i] += 1
        self._vp_row(self.var_past, variable)[i] += 1
        wid = self.next_wid()
        assert wid.seq == self.write_co[i]
        w_vec = tuple(self.write_co)
        vp = self._frozen_var_past()
        msg = UpdateMessage(
            sender=i,
            wid=wid,
            variable=variable,
            value=value,
            payload={WRITE_CO_KEY: w_vec, VAR_PAST_KEY: vp},
        )
        self.store_put(variable, value, wid)
        self.apply_vec[i] += 1
        self._vp_row(self.apply_on, variable)[i] += 1
        self.last_write_on[variable] = w_vec
        # the wire pairs tuple doubles as the read-merge source; no
        # per-write dict rebuild (immutable, so sharing is safe)
        self.last_var_past_on[variable] = vp  # reprolint: disable=RL003
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg, BROADCAST),))

    def read(self, variable: Hashable) -> ReadOutcome:
        lwo = self.last_write_on.get(variable)
        if lwo is not None:
            vc_join_inplace(self.write_co, lwo)
            for var, vec in self.last_var_past_on[variable]:
                vc_join_inplace(self._vp_row(self.var_past, var), vec)
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- message handling -------------------------------------------------------

    def _missing_counts(self, msg: UpdateMessage) -> Tuple[List[int], List[int]]:
        """Per-process (missing, missing-on-x) counts for ``msg``.

        ``missing[t]`` is the number of writes of ``p_t`` in the
        message's causal past not yet applied-or-skipped here; clamped
        at zero when this replica is already *ahead* of the message's
        past for ``p_t`` (writes concurrent with the message may have
        been applied -- they impose no obligation).
        """
        u = msg.sender
        w = msg.payload[WRITE_CO_KEY]
        vp_x = _vp_get(msg.payload[VAR_PAST_KEY], msg.variable,
                       (0,) * self.n_processes)
        apply_x = self.apply_on.get(msg.variable, [0] * self.n_processes)
        missing = []
        missing_x = []
        for t in range(self.n_processes):
            past = w[t] - (1 if t == u else 0)
            past_x = vp_x[t] - (1 if t == u else 0)
            m = past - self.apply_vec[t]
            if m <= 0:
                missing.append(0)
                missing_x.append(0)
            else:
                missing.append(m)
                missing_x.append(past_x - apply_x[t])
        return missing, missing_x

    def classify(self, msg: UpdateMessage) -> Disposition:
        u = msg.sender
        if msg.wid.seq <= self.apply_vec[u]:
            # The write was already skipped (overwritten) here.
            return Disposition.DISCARD
        missing, missing_x = self._missing_counts(msg)
        if all(m == mx for m, mx in zip(missing, missing_x)):
            return Disposition.APPLY
        return Disposition.BUFFER

    def apply_update(self, msg: UpdateMessage) -> None:
        u = msg.sender
        w = msg.payload[WRITE_CO_KEY]
        vp_x = _vp_get(msg.payload[VAR_PAST_KEY], msg.variable,
                       (0,) * self.n_processes)
        missing, _ = self._missing_counts(msg)
        self.skipped += sum(missing)

        self.store_put(msg.variable, msg.value, msg.wid)
        # Jump Apply (and ApplyOn[x]) to cover the skipped prefix plus,
        # for the sender, the applied write itself -- a componentwise
        # max against the message's past.
        vc_join_inplace(self.apply_vec, w)
        vc_join_inplace(self._vp_row(self.apply_on, msg.variable), vp_x)
        # Both wire values are deeply immutable (payload contract), so
        # storing them bare is alias-safe -- and drops the per-delivery
        # tuple/dict rebuilds this hot path used to pay.
        self.last_write_on[msg.variable] = w  # reprolint: disable=RL003
        self.last_var_past_on[msg.variable] = msg.payload[VAR_PAST_KEY]  # reprolint: disable=RL003

    def discard_update(self, msg: UpdateMessage) -> None:
        self.discarded += 1

    # -- introspection ------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "write_co": tuple(self.write_co),
            "apply": tuple(self.apply_vec),
            "skipped": self.skipped,
            "discarded": self.discarded,
        }

    def stats(self) -> Dict[str, int]:
        return {"skipped": self.skipped, "discarded": self.discarded}

    def missing_applies(self) -> int:
        return self.skipped
