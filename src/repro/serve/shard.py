"""Key-space sharding: variables -> replica groups.

One *replica group* is a full causal replica set running the chosen
protocol among themselves (group-internal n-process broadcast, exactly
the paper's system model).  A deployment is one or more groups; each
variable is owned by exactly one group, chosen by a stable hash of its
name.  Causal consistency is therefore per-key-range across groups and
full within a group -- the standard sharded-causal deployment shape
(see ROADMAP item 2 / Xiang & Vaidya for the cross-shard story).

:class:`ClusterSpec` is the deployment descriptor shared by servers,
clients, and the load generator: protocol, group topology, and one
endpoint string per node (``unix:/path/to.sock`` or
``tcp:host:port``).  It round-trips through JSON so ``repro-dsm
serve`` can publish it for ``repro-dsm loadgen``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, List, Tuple, Union

__all__ = ["ClusterSpec", "parse_endpoint", "shard_of"]


def shard_of(variable: Hashable, n_shards: int) -> int:
    """Stable shard index for a variable (crc32 of its spelling).

    Deterministic across processes and runs -- clients and servers must
    agree on ownership without coordination, so nothing here may depend
    on ``PYTHONHASHSEED``.
    """
    if n_shards == 1:
        return 0
    name = variable if isinstance(variable, str) else repr(variable)
    return zlib.crc32(name.encode("utf-8")) % n_shards


def parse_endpoint(endpoint: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """``"unix:/p.sock"`` -> ``("unix", "/p.sock")``;
    ``"tcp:host:port"`` -> ``("tcp", (host, port))``."""
    scheme, _, rest = endpoint.partition(":")
    if scheme == "unix" and rest:
        return "unix", rest
    if scheme == "tcp":
        host, _, port = rest.rpartition(":")
        if host and port.isdigit():
            return "tcp", (host, int(port))
    raise ValueError(f"bad endpoint {endpoint!r} "
                     "(want unix:/path or tcp:host:port)")


@dataclass(frozen=True)
class ClusterSpec:
    """The deployment: protocol + per-group node endpoints."""

    protocol: str
    #: ``groups[g][i]`` is node i of replica group g.
    groups: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a deployment needs at least one group")
        sizes = {len(g) for g in self.groups}
        if len(sizes) != 1:
            raise ValueError(f"uneven group sizes {sorted(sizes)}")
        if min(sizes) < 1:
            raise ValueError("empty replica group")

    @property
    def n_shards(self) -> int:
        return len(self.groups)

    @property
    def group_size(self) -> int:
        return len(self.groups[0])

    @property
    def total_nodes(self) -> int:
        return self.n_shards * self.group_size

    def group_for(self, variable: Hashable) -> int:
        return shard_of(variable, self.n_shards)

    def endpoint(self, group: int, node: int) -> str:
        return self.groups[group][node]

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": 1,
                "protocol": self.protocol,
                "groups": [list(g) for g in self.groups],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        doc = json.loads(text)
        if doc.get("version") != 1:
            raise ValueError(f"unknown cluster spec version {doc.get('version')!r}")
        return cls(
            protocol=doc["protocol"],
            groups=tuple(tuple(g) for g in doc["groups"]),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterSpec":
        return cls.from_json(Path(path).read_text())

    # -- construction helpers ----------------------------------------------

    @classmethod
    def local_uds(cls, rundir: Union[str, Path], protocol: str,
                  n_shards: int, group_size: int) -> "ClusterSpec":
        """Predetermined socket paths under ``rundir`` (no port races)."""
        root = Path(rundir)
        groups: List[Tuple[str, ...]] = []
        for g in range(n_shards):
            groups.append(tuple(
                f"unix:{root / f'g{g}n{i}.sock'}" for i in range(group_size)
            ))
        return cls(protocol=protocol, groups=tuple(groups))

    @classmethod
    def local_tcp(cls, protocol: str, n_shards: int, group_size: int,
                  *, host: str = "127.0.0.1",
                  port_base: int = 7400) -> "ClusterSpec":
        groups: List[Tuple[str, ...]] = []
        port = port_base
        for _ in range(n_shards):
            row = []
            for _ in range(group_size):
                row.append(f"tcp:{host}:{port}")
                port += 1
            groups.append(tuple(row))
        return cls(protocol=protocol, groups=tuple(groups))
