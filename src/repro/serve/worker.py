"""Module-level process entry points for the serving layer.

Replica and load-generator processes are spawned with the ``spawn``
multiprocessing context, so every entry point here must be a plain
importable top-level function with picklable arguments (reprolint
RL008 checks exactly this for the ``serve`` zone).  Results travel
through files rather than pipes: each child writes JSON under the run
directory and exits, which keeps the parent's collection logic
identical whether a child is alive, finished, or crashed.
"""

from __future__ import annotations

import asyncio
import json
import signal
from pathlib import Path
from typing import Any, Dict

from repro.serve.loadgen import LoadgenConfig, run_worker
from repro.serve.server import ReplicaServer
from repro.serve.shard import ClusterSpec

__all__ = ["loadgen_main", "node_main"]


def node_main(spec_json: str, group: int, node_id: int, rundir: str,
              record: bool, batch_window: float,
              wal_dir: "str | None" = None) -> None:
    """Run one replica server until an admin shutdown."""
    # A terminal Ctrl-C signals the whole foreground process group.
    # Replicas must survive it: the parent catches the interrupt and
    # coordinates the two-phase drain/shutdown over the admin plane.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    spec = ClusterSpec.from_json(spec_json)
    root = Path(rundir)
    server = ReplicaServer(
        spec, group, node_id,
        record=record,
        rundir=root,
        wal_dir=Path(wal_dir) if wal_dir is not None else None,
        batch_window=batch_window,
    )
    ready = root / f"node-g{group}n{node_id}.ready"
    asyncio.run(server.run(ready_path=ready))


def loadgen_main(spec_json: str, cfg: Dict[str, Any], worker_id: int,
                 out_path: str) -> None:
    """Run one load-generator worker; write its result JSON."""
    spec = ClusterSpec.from_json(spec_json)
    result = asyncio.run(
        run_worker(spec, LoadgenConfig(**cfg), worker_id=worker_id)
    )
    Path(out_path).write_text(json.dumps(result))
