"""The serving layer's single sanctioned wall-clock site.

Everything under ``repro.serve`` is a *determinism zone* for reprolint
(RL001): replayable components must never read ambient time, because
the recorded trace -- not the clock -- is the source of truth for the
conformance replay (``docs/serving.md``).  Live servers and load
generators, however, legitimately need a monotonic clock for
timestamps and latency measurement.  Those reads are funnelled through
this module so the suppression is auditable in exactly one place:
every other ``repro.serve`` module takes a ``clock`` callable and can
be driven by a fake clock in tests.
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds on the process-shared monotonic clock.

    On Linux this reads ``CLOCK_MONOTONIC``, whose epoch is
    machine-wide: timestamps taken by different replica processes on
    one host are mutually comparable, which is what lets
    :mod:`repro.serve.merge` order per-node event logs by time.  (The
    gated merge does not *trust* that comparability -- causal order
    wins over timestamps -- but it makes the common case exact.)
    """
    return time.monotonic()  # reprolint: disable=RL001
