"""Length-prefixed binary wire codec for the serving layer.

The sim's :func:`repro.sim.network.estimate_size` guessed message
sizes; the serving layer actually puts bytes on a socket, so the codec
is the single source of truth for both: live connections frame with
it, and the simulator's overhead metrics call :func:`encoded_size` to
charge *exact* wire bytes per message (falling back to the old
heuristic only for payload values the codec cannot express).

Wire format (``docs/serving.md`` has the full tables):

- **Frame**: ``u32 big-endian body length`` + body.  The first body
  byte is the frame type (:data:`FRAME_HELLO` ...).
- **Varints**: unsigned LEB128; signed integers are zigzag-mapped
  first.  Vector clocks are a count + one varint per component, so an
  n=3 OptP ``Write_co`` costs 4 bytes instead of JSON's ~12.
- **Values**: one tag byte + tag-specific body.  Tuples of
  non-negative ints (the vector-clock shape every registry protocol
  piggybacks) take the dedicated :data:`TAG_VEC` fast path;
  :class:`~repro.model.operations.WriteId` and ``BOTTOM`` have native
  tags, so protocol payloads round-trip without pickle.
- **Interning**: peer links carry many updates for few variables, so
  update bodies reference per-connection interned variable ids -- a
  name is spelled out once per connection, then costs one varint.
  :func:`encode_message` (the stateless entry point used for sizing
  and tests) uses a fresh table per message, which makes its output
  deterministic and self-contained.

Nothing here performs I/O; framing against asyncio streams lives in
:func:`read_frame` / :func:`write_frame` which only touch the stream
APIs.  The module is a reprolint hot path (RL006) and determinism
zone (RL001/RL002): no clocks, no set iteration, no instrumentation.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.core.base import ControlMessage, Message, UpdateMessage
from repro.model.operations import BOTTOM, WriteId

__all__ = [
    "CodecError",
    "FRAME_HELLO",
    "FRAME_MSG_BATCH",
    "FRAME_PEER_WELCOME",
    "FRAME_REQUEST",
    "FRAME_RESPONSE",
    "FRAME_STOP",
    "FRAME_STOPPED",
    "MAX_FRAME",
    "OP_READ",
    "OP_WRITE",
    "VarReader",
    "VarWriter",
    "decode_message",
    "decode_request",
    "decode_response",
    "encode_message",
    "encode_request",
    "encode_response",
    "encoded_size",
    "read_frame",
    "write_frame",
]


class CodecError(ValueError):
    """Malformed or unsupported wire data."""


# -- frame types ------------------------------------------------------------

FRAME_HELLO = 0x01      #: role + sender id, first frame on every connection
FRAME_MSG_BATCH = 0x02  #: peer->peer: n protocol messages (micro-batch)
FRAME_REQUEST = 0x03    #: client->server: session vector + n ops
FRAME_RESPONSE = 0x04   #: server->client: progress vector + n results
FRAME_STOP = 0x05       #: admin->server: flush, dump, shut down
FRAME_STOPPED = 0x06    #: server->admin: shutdown acknowledged
FRAME_PEER_WELCOME = 0x07  #: peer HELLO reply: applied count for the dialer

#: Connection roles carried by HELLO.
ROLE_CLIENT = 0
ROLE_PEER = 1
ROLE_ADMIN = 2

#: Client op kinds inside a REQUEST frame.
OP_READ = 0
OP_WRITE = 1

#: Hard ceiling on one frame body; a longer length prefix means a
#: corrupt or hostile stream, not a big message.
MAX_FRAME = 16 << 20

_LEN = struct.Struct(">I")
_F64 = struct.Struct(">d")

# -- value tags -------------------------------------------------------------

_T_NONE = 0
_T_BOTTOM = 1
_T_FALSE = 2
_T_TRUE = 3
_T_INT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_TUPLE = 8
_T_LIST = 9
_T_DICT = 10
_T_WID = 11
_T_VEC = 12     #: tuple of non-negative ints (vector clocks)

_M_UPDATE = 0
_M_CONTROL = 1


# -- varints ----------------------------------------------------------------

def write_uvarint(buf: bytearray, value: int) -> None:
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative {value}")
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


class VarReader:
    """Cursor over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def u8(self) -> int:
        try:
            b = self.data[self.pos]
        except IndexError:
            raise CodecError("truncated frame") from None
        self.pos += 1
        return b

    def uvarint(self) -> int:
        shift = 0
        out = 0
        while True:
            b = self.u8()
            out |= (b & 0x7F) << shift
            if not b & 0x80:
                return out
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")

    def svarint(self) -> int:
        z = self.uvarint()
        return (z >> 1) if not z & 1 else -((z + 1) >> 1)

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError("truncated frame")
        out = self.data[self.pos:end]
        self.pos = end
        return out

    def done(self) -> bool:
        return self.pos >= len(self.data)


class VarWriter:
    """Append-only body builder (a thin bytearray facade)."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        self.buf.append(value)

    def uvarint(self, value: int) -> None:
        write_uvarint(self.buf, value)

    def svarint(self, value: int) -> None:
        write_uvarint(self.buf, _zigzag(value))

    def raw(self, data: bytes) -> None:
        self.buf += data

    def getvalue(self) -> bytes:
        return bytes(self.buf)


# -- values -----------------------------------------------------------------

def _is_vec(value: tuple) -> bool:
    for item in value:
        if type(item) is not int or item < 0:
            return False
    return True


def encode_value(w: VarWriter, value: Any) -> None:
    if value is None:
        w.u8(_T_NONE)
    elif value is BOTTOM:
        w.u8(_T_BOTTOM)
    elif value is False:
        w.u8(_T_FALSE)
    elif value is True:
        w.u8(_T_TRUE)
    elif type(value) is int:
        w.u8(_T_INT)
        w.svarint(value)
    elif type(value) is float:
        w.u8(_T_FLOAT)
        w.raw(_F64.pack(value))
    elif type(value) is str:
        data = value.encode("utf-8")
        w.u8(_T_STR)
        w.uvarint(len(data))
        w.raw(data)
    elif type(value) is bytes:
        w.u8(_T_BYTES)
        w.uvarint(len(value))
        w.raw(value)
    elif type(value) is WriteId:
        w.u8(_T_WID)
        w.uvarint(value.process)
        w.uvarint(value.seq)
    elif type(value) is tuple:
        if value and _is_vec(value):
            w.u8(_T_VEC)
            w.uvarint(len(value))
            for item in value:
                w.uvarint(item)
        else:
            w.u8(_T_TUPLE)
            w.uvarint(len(value))
            for item in value:
                encode_value(w, item)
    elif type(value) is list:
        w.u8(_T_LIST)
        w.uvarint(len(value))
        for item in value:
            encode_value(w, item)
    elif type(value) is dict:
        w.u8(_T_DICT)
        w.uvarint(len(value))
        for key, item in value.items():
            encode_value(w, key)
            encode_value(w, item)
    else:
        raise CodecError(f"unencodable value of type {type(value).__name__}")


def decode_value(r: VarReader) -> Any:
    tag = r.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_BOTTOM:
        return BOTTOM
    if tag == _T_FALSE:
        return False
    if tag == _T_TRUE:
        return True
    if tag == _T_INT:
        return r.svarint()
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return r.take(r.uvarint()).decode("utf-8")
    if tag == _T_BYTES:
        return r.take(r.uvarint())
    if tag == _T_WID:
        return WriteId(r.uvarint(), r.uvarint())
    if tag == _T_VEC:
        return tuple(r.uvarint() for _ in range(r.uvarint()))
    if tag == _T_TUPLE:
        return tuple(decode_value(r) for _ in range(r.uvarint()))
    if tag == _T_LIST:
        return [decode_value(r) for _ in range(r.uvarint())]
    if tag == _T_DICT:
        n = r.uvarint()
        out = {}
        for _ in range(n):
            key = decode_value(r)
            out[key] = decode_value(r)
        return out
    raise CodecError(f"unknown value tag {tag}")


def write_vec(w: VarWriter, vec: Tuple[int, ...]) -> None:
    w.uvarint(len(vec))
    for item in vec:
        w.uvarint(item)


def read_vec(r: VarReader) -> Tuple[int, ...]:
    return tuple(r.uvarint() for _ in range(r.uvarint()))


# -- variable interning -----------------------------------------------------

class InternEncoder:
    """Sender-side variable table: a name costs its UTF-8 spelling the
    first time it crosses a connection, one varint afterwards."""

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}

    def write(self, w: VarWriter, variable: Any) -> None:
        if type(variable) is not str:
            # non-string variables (tests use ints/tuples) skip the
            # intern table and ride the generic value encoding
            w.uvarint(1)
            encode_value(w, variable)
            return
        known = self._ids.get(variable)
        if known is not None:
            w.uvarint(known + 2)
        else:
            self._ids[variable] = len(self._ids)
            w.uvarint(0)
            data = variable.encode("utf-8")
            w.uvarint(len(data))
            w.raw(data)


class InternDecoder:
    """Receiver-side mirror of :class:`InternEncoder`."""

    __slots__ = ("_names",)

    def __init__(self) -> None:
        self._names: List[str] = []

    def read(self, r: VarReader) -> Any:
        code = r.uvarint()
        if code == 0:
            name = r.take(r.uvarint()).decode("utf-8")
            self._names.append(name)
            return name
        if code == 1:
            return decode_value(r)
        idx = code - 2
        try:
            return self._names[idx]
        except IndexError:
            raise CodecError(f"undefined interned variable id {idx}") from None


# -- protocol messages ------------------------------------------------------

def encode_message_into(w: VarWriter, message: Message,
                        intern: InternEncoder) -> None:
    if isinstance(message, UpdateMessage):
        w.u8(_M_UPDATE)
        w.uvarint(message.sender)
        w.uvarint(message.wid.process)
        w.uvarint(message.wid.seq)
        intern.write(w, message.variable)
        encode_value(w, message.value)
        payload = message.payload
        w.uvarint(len(payload))
        for key, value in payload.items():
            if type(key) is not str:
                raise CodecError(f"non-string payload key {key!r}")
            data = key.encode("utf-8")
            w.uvarint(len(data))
            w.raw(data)
            encode_value(w, value)
    elif isinstance(message, ControlMessage):
        w.u8(_M_CONTROL)
        w.uvarint(message.sender)
        data = message.kind.encode("utf-8")
        w.uvarint(len(data))
        w.raw(data)
        encode_value(w, dict(message.payload))
    else:
        raise CodecError(f"unknown message type {type(message).__name__}")


def decode_message_from(r: VarReader, intern: InternDecoder) -> Message:
    tag = r.u8()
    if tag == _M_UPDATE:
        sender = r.uvarint()
        wid = WriteId(r.uvarint(), r.uvarint())
        variable = intern.read(r)
        value = decode_value(r)
        n = r.uvarint()
        payload = {}
        for _ in range(n):
            key = r.take(r.uvarint()).decode("utf-8")
            payload[key] = decode_value(r)
        return UpdateMessage(sender=sender, wid=wid, variable=variable,
                             value=value, payload=payload)
    if tag == _M_CONTROL:
        sender = r.uvarint()
        kind = r.take(r.uvarint()).decode("utf-8")
        payload = decode_value(r)
        if type(payload) is not dict:
            raise CodecError("control payload must decode to a dict")
        return ControlMessage(sender=sender, kind=kind, payload=payload)
    raise CodecError(f"unknown message tag {tag}")


def encode_message(message: Message) -> bytes:
    """Stateless single-message encoding (fresh intern table).

    This is the canonical form: deterministic, self-contained, and the
    size oracle for :func:`repro.sim.network.estimate_size`.  Live peer
    links use :meth:`InternEncoder.write` with a per-connection table,
    so steady-state frames are strictly smaller than this bound.
    """
    w = VarWriter()
    encode_message_into(w, message, InternEncoder())
    return w.getvalue()


def decode_message(data: bytes) -> Message:
    r = VarReader(data)
    message = decode_message_from(r, InternDecoder())
    if not r.done():
        raise CodecError("trailing bytes after message")
    return message


def encoded_size(message: Message) -> Optional[int]:
    """Exact canonical wire size in bytes, or None when some payload
    value falls outside the codec's vocabulary (the caller falls back
    to the heuristic estimate)."""
    try:
        return len(encode_message(message))
    except CodecError:
        return None


# -- client request / response ----------------------------------------------

def encode_request(session: Tuple[int, ...],
                   ops: List[Tuple[int, Any, Any]]) -> bytes:
    """Body of one REQUEST frame.

    ``ops`` is ``[(OP_READ, variable, None) | (OP_WRITE, variable,
    value), ...]``; results come back positionally in the matching
    RESPONSE frame, so there are no per-op request ids on the wire.
    """
    w = VarWriter()
    w.u8(FRAME_REQUEST)
    write_vec(w, session)
    w.uvarint(len(ops))
    for kind, variable, value in ops:
        w.u8(kind)
        encode_value(w, variable)
        if kind == OP_WRITE:
            encode_value(w, value)
    return w.getvalue()


def decode_request(data: bytes) -> Tuple[Tuple[int, ...],
                                         List[Tuple[int, Any, Any]]]:
    r = VarReader(data)
    if r.u8() != FRAME_REQUEST:
        raise CodecError("not a REQUEST frame")
    session = read_vec(r)
    ops = []
    for _ in range(r.uvarint()):
        kind = r.u8()
        variable = decode_value(r)
        if kind == OP_WRITE:
            ops.append((kind, variable, decode_value(r)))
        elif kind == OP_READ:
            ops.append((kind, variable, None))
        else:
            raise CodecError(f"unknown op kind {kind}")
    return session, ops


def encode_response(progress: Tuple[int, ...],
                    results: List[Tuple[int, Any]]) -> bytes:
    """Body of one RESPONSE frame.

    ``results`` mirrors the request's ops: ``(OP_WRITE, seq)`` acks a
    write with the issued :class:`WriteId` sequence number,
    ``(OP_READ, value)`` carries the read value.  ``progress`` is the
    server's applied vector *after* the batch -- the client folds it
    into its session vector (max per component).
    """
    w = VarWriter()
    w.u8(FRAME_RESPONSE)
    write_vec(w, progress)
    w.uvarint(len(results))
    for kind, value in results:
        w.u8(kind)
        if kind == OP_WRITE:
            w.uvarint(value)
        else:
            encode_value(w, value)
    return w.getvalue()


def decode_response(data: bytes) -> Tuple[Tuple[int, ...],
                                          List[Tuple[int, Any]]]:
    r = VarReader(data)
    if r.u8() != FRAME_RESPONSE:
        raise CodecError("not a RESPONSE frame")
    progress = read_vec(r)
    results = []
    for _ in range(r.uvarint()):
        kind = r.u8()
        if kind == OP_WRITE:
            results.append((kind, r.uvarint()))
        elif kind == OP_READ:
            results.append((kind, decode_value(r)))
        else:
            raise CodecError(f"unknown result kind {kind}")
    return progress, results


# -- framing ----------------------------------------------------------------

def frame(body: bytes) -> bytes:
    """Length-prefix one frame body for the wire."""
    if len(body) > MAX_FRAME:
        raise CodecError(f"frame body of {len(body)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + body


def write_frame(writer, body: bytes) -> None:
    """Queue one frame on an asyncio StreamWriter (no drain)."""
    writer.write(frame(body))


async def read_frame(reader) -> Optional[bytes]:
    """Read one frame body; None on clean EOF at a frame boundary.

    ``asyncio.IncompleteReadError`` subclasses ``EOFError``, so both a
    polite close and a reset land in the same branches.
    """
    try:
        header = await reader.readexactly(4)
    except (EOFError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise CodecError(f"frame length {length} exceeds MAX_FRAME")
    try:
        return await reader.readexactly(length)
    except (EOFError, ConnectionError):
        raise CodecError("connection closed mid-frame") from None
