"""Deployment harness: boot, drive, drain, verify -- one call.

This is the shared machinery behind ``repro-dsm serve`` /
``repro-dsm loadgen``, the serve benchmark, and the CI smoke job:

1. spawn one OS process per replica (``spawn`` context, entry points
   in :mod:`repro.serve.worker`), publish the :class:`ClusterSpec`;
2. drive load (worker subprocesses, or in-process when ``workers=1``);
3. *quiesce*: poll every node's admin plane until all applied vectors
   match the issued-write targets and every buffer is empty -- only a
   drained deployment can claim the Theorem-5 liveness property;
4. two-phase shutdown: nodes flush, dump their event logs + stats,
   acknowledge, exit;
5. when recording: merge each group's logs
   (:func:`repro.serve.merge.merge_node_logs`) and replay them through
   the full oracle stack (:func:`~repro.serve.conformance.verify_live_trace`),
   archive the merged trace as JSONL and optionally as a Perfetto
   trace.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.serve import codec
from repro.serve.codec import (
    FRAME_HELLO,
    FRAME_STOP,
    FRAME_STOPPED,
    ROLE_ADMIN,
    CodecError,
    VarReader,
    VarWriter,
    read_frame,
    write_frame,
)
from repro.serve.conformance import verify_live_trace
from repro.serve.loadgen import LoadgenConfig, run_worker, summarize_workers
from repro.serve.merge import load_node_log, merge_node_logs
from repro.serve.server import STOP_QUERY, STOP_SHUTDOWN
from repro.serve.shard import ClusterSpec, parse_endpoint
from repro.serve.timebase import monotonic
from repro.serve.worker import loadgen_main, node_main

__all__ = ["ServedCluster", "drive_load", "serve_and_load", "serve_chaos"]

_READY_TIMEOUT = 30.0
_QUIESCE_TIMEOUT = 30.0
_JOIN_TIMEOUT = 10.0


async def _admin_call(endpoint: str, mode: int) -> Dict[str, Any]:
    """One admin round trip: HELLO, STOP(mode), parse STOPPED."""
    scheme, addr = parse_endpoint(endpoint)
    if scheme == "unix":
        reader, writer = await asyncio.open_unix_connection(addr)
    else:
        reader, writer = await asyncio.open_connection(*addr)
    try:
        hello = VarWriter()
        hello.u8(FRAME_HELLO)
        hello.u8(ROLE_ADMIN)
        hello.uvarint(0)
        write_frame(writer, hello.getvalue())
        stop = VarWriter()
        stop.u8(FRAME_STOP)
        stop.u8(mode)
        write_frame(writer, stop.getvalue())
        await writer.drain()
        body = await read_frame(reader)
        if body is None:
            raise ConnectionError(f"{endpoint}: closed during admin call")
        r = VarReader(body)
        if r.u8() != FRAME_STOPPED:
            raise CodecError("expected STOPPED")
        return codec.decode_value(r)
    finally:
        writer.close()


def drive_load(spec: ClusterSpec, cfg: LoadgenConfig, *,
               workers: int = 1,
               rundir: Optional[Path] = None) -> Dict[str, Any]:
    """Drive a (already running) deployment; returns the merged report.

    ``workers == 1`` runs in-process; more workers spawn one load
    process each, writing result JSON under ``rundir``.
    """
    if workers <= 1:
        results = [asyncio.run(run_worker(spec, cfg, worker_id=0))]
    else:
        if rundir is None:
            raise ValueError("multi-worker load needs a rundir")
        ctx = multiprocessing.get_context("spawn")
        spec_json = spec.to_json()
        outs = []
        procs = []
        for w in range(workers):
            out = Path(rundir) / f"loadgen-{w}.json"
            outs.append(out)
            proc = ctx.Process(
                target=loadgen_main,
                args=(spec_json, cfg.__dict__, w, str(out)),
                name=f"repro-loadgen-{w}",
            )
            proc.start()
            procs.append(proc)
        for proc in procs:
            proc.join(timeout=cfg.duration + 60.0)
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"{proc.name} failed (exit {proc.exitcode})"
                )
        results = [json.loads(out.read_text()) for out in outs]
    return summarize_workers(results)


class ServedCluster:
    """A running multi-process deployment under parent control."""

    def __init__(self, spec: ClusterSpec, rundir: Path,
                 procs: List[multiprocessing.process.BaseProcess],
                 record: bool, *,
                 wal_dir: Optional[Path] = None,
                 batch_window: float = 0.0005):
        self.spec = spec
        self.rundir = rundir
        self.procs = procs
        self.record = record
        self.wal_dir = wal_dir
        self.batch_window = batch_window
        self.statuses: List[Dict[str, Any]] = []

    # -- boot ---------------------------------------------------------------

    def _spawn_node(self, group: int, node: int
                    ) -> multiprocessing.process.BaseProcess:
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=node_main,
            args=(self.spec.to_json(), group, node, str(self.rundir),
                  self.record, self.batch_window,
                  str(self.wal_dir) if self.wal_dir is not None else None),
            name=f"repro-serve-g{group}n{node}",
        )
        proc.start()
        return proc

    @classmethod
    def start(
        cls,
        protocol: str = "optp",
        *,
        group_size: int = 3,
        shards: int = 1,
        rundir: Path,
        record: bool = False,
        transport: str = "unix",
        port_base: int = 7400,
        batch_window: float = 0.0005,
        wal_dir: Optional[Path] = None,
    ) -> "ServedCluster":
        from repro.serve.server import SERVABLE_PROTOCOLS

        if protocol not in SERVABLE_PROTOCOLS:
            raise ValueError(
                f"protocol {protocol!r} is not servable "
                f"(supported: {', '.join(SERVABLE_PROTOCOLS)})"
            )
        rundir = Path(rundir)
        rundir.mkdir(parents=True, exist_ok=True)
        if transport == "unix":
            spec = ClusterSpec.local_uds(rundir, protocol, shards, group_size)
        elif transport == "tcp":
            spec = ClusterSpec.local_tcp(protocol, shards, group_size,
                                         port_base=port_base)
        else:
            raise ValueError(f"unknown transport {transport!r}")
        spec.save(rundir / "cluster.json")
        cluster = cls(spec, rundir, [], record,
                      wal_dir=Path(wal_dir) if wal_dir is not None else None,
                      batch_window=batch_window)
        for g in range(shards):
            for i in range(group_size):
                cluster.procs.append(cluster._spawn_node(g, i))
        try:
            cluster._wait_ready()
        except Exception:
            cluster.kill()
            raise
        return cluster

    def _wait_ready(self) -> None:
        deadline = monotonic() + _READY_TIMEOUT
        pending = [
            self.rundir / f"node-g{g}n{i}.ready"
            for g in range(self.spec.n_shards)
            for i in range(self.spec.group_size)
        ]
        import time

        while pending:
            pending = [p for p in pending if not p.exists()]
            if not pending:
                return
            for proc in self.procs:
                if proc.exitcode is not None:
                    raise RuntimeError(
                        f"replica {proc.name} died during startup "
                        f"(exit {proc.exitcode})"
                    )
            if monotonic() > deadline:
                raise TimeoutError(
                    f"replicas not ready within {_READY_TIMEOUT}s: "
                    + ", ".join(p.name for p in pending)
                )
            time.sleep(0.02)

    # -- load ---------------------------------------------------------------

    def run_load(self, cfg: LoadgenConfig, *, workers: int = 1
                 ) -> Dict[str, Any]:
        """Drive the deployment; returns the merged loadgen report."""
        return drive_load(self.spec, cfg, workers=workers,
                          rundir=self.rundir)

    # -- drain / stop -------------------------------------------------------

    def _endpoints(self) -> List[str]:
        return [
            self.spec.endpoint(g, i)
            for g in range(self.spec.n_shards)
            for i in range(self.spec.group_size)
        ]

    def quiesce(self, timeout: float = _QUIESCE_TIMEOUT) -> None:
        """Poll until every group has fully propagated every write."""
        deadline = monotonic() + timeout

        async def _poll() -> bool:
            quiet = True
            for g in range(self.spec.n_shards):
                statuses = []
                for i in range(self.spec.group_size):
                    statuses.append(
                        await _admin_call(self.spec.endpoint(g, i),
                                          STOP_QUERY)
                    )
                target = [statuses[j]["applied"][j]
                          for j in range(self.spec.group_size)]
                for status in statuses:
                    if (status["buffered"] != 0
                            or list(status["applied"]) != target):
                        quiet = False
            return quiet

        while True:
            if asyncio.run(_poll()):
                return
            if monotonic() > deadline:
                raise TimeoutError(
                    f"deployment failed to quiesce within {timeout}s"
                )
            import time

            time.sleep(0.02)

    def stop(self) -> List[Dict[str, Any]]:
        """Two-phase shutdown; returns final node statuses."""

        async def _stop_all() -> List[Dict[str, Any]]:
            out = []
            for endpoint in self._endpoints():
                out.append(await _admin_call(endpoint, STOP_SHUTDOWN))
            return out

        self.statuses = asyncio.run(_stop_all())
        for proc in self.procs:
            proc.join(timeout=_JOIN_TIMEOUT)
        self.kill()
        return self.statuses

    def kill(self) -> None:
        """Terminate whatever is still running (idempotent)."""
        for proc in self.procs:
            if proc.exitcode is None:
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.exitcode is None:
                proc.kill()
                proc.join(timeout=2.0)

    # -- crash injection ----------------------------------------------------

    def kill_node(self, group: int, node: int) -> None:
        """SIGKILL one replica mid-flight: no flush, no goodbye, no
        dump -- the crash-stop model, for real."""
        proc = self.procs[group * self.spec.group_size + node]
        proc.kill()
        proc.join(timeout=_JOIN_TIMEOUT)
        (self.rundir / f"node-g{group}n{node}.ready").unlink(missing_ok=True)

    def restart_node(self, group: int, node: int) -> None:
        """Respawn a killed replica; returns once it reports ready,
        i.e. recovered from its WAL and re-linked with its peers."""
        idx = group * self.spec.group_size + node
        if self.procs[idx].exitcode is None:
            raise RuntimeError(f"replica g{group}n{node} is still running")
        self.procs[idx] = self._spawn_node(group, node)
        self._wait_ready()

    # -- verification -------------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Merge each group's recorded logs and replay all oracles."""
        if not self.record:
            raise RuntimeError("deployment was not recording; nothing to verify")
        from repro.sim.serialize import trace_to_jsonl

        groups = []
        ok = True
        for g in range(self.spec.n_shards):
            logs = []
            for i in range(self.spec.group_size):
                path = self.rundir / f"node-g{g}n{i}.log.jsonl"
                logs.append(load_node_log(path.read_text()))
            trace = merge_node_logs(logs)
            report = verify_live_trace(
                trace,
                protocol_name=self.spec.protocol,
                expect_optimal=self.spec.protocol == "optp",
                quiescent=True,
            )
            archive = self.rundir / f"trace-g{g}.jsonl"
            archive.write_text(trace_to_jsonl(trace))
            report["trace_path"] = str(archive)
            groups.append(report)
            ok = ok and report["ok"]
        return {"ok": ok, "groups": groups}


def serve_and_load(
    protocol: str = "optp",
    *,
    group_size: int = 3,
    shards: int = 1,
    rundir: Path,
    duration: float = 3.0,
    workers: int = 1,
    record: bool = False,
    verify: bool = False,
    transport: str = "unix",
    port_base: int = 7400,
    batch_window: float = 0.0005,
    loadgen: Optional[LoadgenConfig] = None,
    wal_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Boot, load, drain, stop -- and verify when recording."""
    cfg = loadgen if loadgen is not None else LoadgenConfig()
    cfg.duration = duration
    cluster = ServedCluster.start(
        protocol,
        group_size=group_size,
        shards=shards,
        rundir=Path(rundir),
        record=record,
        transport=transport,
        port_base=port_base,
        batch_window=batch_window,
        wal_dir=wal_dir,
    )
    try:
        load_report = cluster.run_load(cfg, workers=workers)
        cluster.quiesce()
        statuses = cluster.stop()
    except Exception:
        cluster.kill()
        raise
    report: Dict[str, Any] = {
        "protocol": protocol,
        "group_size": group_size,
        "shards": shards,
        "nodes": group_size * shards,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "load": load_report,
        "node_stats": [s["stats"] for s in statuses],
    }
    if record and verify:
        report["conformance"] = cluster.verify()
    return report


def serve_chaos(
    protocol: str = "optp",
    *,
    group_size: int = 3,
    rundir: Path,
    duration: float = 4.0,
    kill_after: float = 1.0,
    down_time: float = 0.5,
    victim: int = 1,
    workers: int = 1,
    record: bool = True,
    verify: bool = True,
    transport: str = "unix",
    port_base: int = 7400,
    loadgen: Optional[LoadgenConfig] = None,
) -> Dict[str, Any]:
    """Kill-and-recover drill: boot a *durable* deployment, drive
    load, SIGKILL the ``victim`` replica mid-run, restart it, let it
    recover from its WAL and resync from its peers, then drain and
    (when recording) replay the merged trace through every oracle.

    The load generators run with ``reconnect=True`` so lanes pinned to
    the victim ride through the outage: failed batches are dropped,
    session vectors are kept, and the next batch re-establishes the
    session guarantees against the recovered replica.
    """
    rundir = Path(rundir)
    cfg = loadgen if loadgen is not None else LoadgenConfig()
    cfg.duration = duration
    cfg.reconnect = True
    cluster = ServedCluster.start(
        protocol,
        group_size=group_size,
        shards=1,
        rundir=rundir,
        record=record,
        transport=transport,
        port_base=port_base,
        wal_dir=rundir / "wal",
    )
    import time

    try:
        ctx = multiprocessing.get_context("spawn")
        spec_json = cluster.spec.to_json()
        outs: List[Path] = []
        lprocs = []
        for w in range(max(1, workers)):
            out = rundir / f"loadgen-{w}.json"
            outs.append(out)
            proc = ctx.Process(
                target=loadgen_main,
                args=(spec_json, cfg.__dict__, w, str(out)),
                name=f"repro-loadgen-{w}",
            )
            proc.start()
            lprocs.append(proc)
        time.sleep(kill_after)
        t_kill = monotonic()
        cluster.kill_node(0, victim)
        time.sleep(down_time)
        cluster.restart_node(0, victim)
        restart_wall = monotonic() - t_kill
        for proc in lprocs:
            proc.join(timeout=duration + 60.0)
            if proc.exitcode != 0:
                raise RuntimeError(
                    f"{proc.name} failed (exit {proc.exitcode})"
                )
        load_report = summarize_workers(
            [json.loads(out.read_text()) for out in outs]
        )
        cluster.quiesce()
        statuses = cluster.stop()
    except Exception:
        cluster.kill()
        raise
    recovered = statuses[victim]["stats"]
    report: Dict[str, Any] = {
        "protocol": protocol,
        "group_size": group_size,
        "victim": victim,
        "kill_after_s": kill_after,
        "down_time_s": down_time,
        "restart_wall_s": round(restart_wall, 4),
        "recovery_us": recovered.get("recovery_us", 0),
        "recovered": recovered.get("recovered", 0),
        "wal_records": recovered.get("wal_records", 0),
        "load": load_report,
        "node_stats": [s["stats"] for s in statuses],
    }
    if record and verify:
        report["conformance"] = cluster.verify()
    return report
