"""Client library: sharded, pipelined, session-consistent access.

A :class:`SessionClient` owns one connection per replica group (to a
configurable replica affinity) and one *session vector* per group --
``session[j]`` = the highest write-sequence of group-node j this
session has observed.  The guarantees, in the classic Terry et al.
vocabulary:

- **read-your-writes**: a write's response carries the server's
  applied vector including that write; it is folded into the session
  vector, so any later read (even via another replica) waits until the
  serving replica has applied it.
- **monotonic reads**: every response's progress vector is folded in
  the same way, so a session can never observe a replica state older
  than one it has already seen.

Causal consistency *across* sessions is the protocol's job (OptP
applies remote writes only after their causal past); the session
vector only bridges the client's moves between replicas, which the
paper's single-process model never has to face.

Ops are pipelined: :meth:`SessionClient.batch` ships one REQUEST frame
with many ops and multiple frames may be in flight per connection
(responses return in order).  The sync facade wraps its own event
loop per call -- use :class:`AsyncSessionClient` directly inside a
running loop (the load generator does).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.serve import codec
from repro.serve.codec import (
    FRAME_HELLO,
    OP_READ,
    OP_WRITE,
    ROLE_CLIENT,
    CodecError,
    VarWriter,
    read_frame,
    write_frame,
)
from repro.serve.shard import ClusterSpec, parse_endpoint

__all__ = ["AsyncSessionClient", "SessionClient"]


class _GroupConn:
    """One pipelined connection into one replica group."""

    def __init__(self, group: int, replica: int) -> None:
        self.group = group
        self.replica = replica
        self.reader = None
        self.writer = None
        #: response futures in request order (frame-level pipelining).
        self.inflight: "asyncio.Queue[asyncio.Future]" = None  # type: ignore
        self.reader_task: Optional[asyncio.Task] = None

    async def connect(self, endpoint: str) -> None:
        scheme, addr = parse_endpoint(endpoint)
        if scheme == "unix":
            self.reader, self.writer = await asyncio.open_unix_connection(addr)
        else:
            self.reader, self.writer = await asyncio.open_connection(*addr)
        hello = VarWriter()
        hello.u8(FRAME_HELLO)
        hello.u8(ROLE_CLIENT)
        hello.uvarint(0)
        write_frame(self.writer, hello.getvalue())
        self.inflight = asyncio.Queue()
        self.reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        try:
            while True:
                body = await read_frame(self.reader)
                if body is None:
                    break
                fut = self.inflight.get_nowait()
                if not fut.done():
                    fut.set_result(codec.decode_response(body))
        except (CodecError, ConnectionError, asyncio.QueueEmpty) as exc:
            self._fail(exc)
            return
        self._fail(ConnectionError("server closed the connection"))

    def _fail(self, exc: Exception) -> None:
        while True:
            try:
                fut = self.inflight.get_nowait()
            except asyncio.QueueEmpty:
                return
            if not fut.done():
                fut.set_exception(exc)

    async def request(self, session: Tuple[int, ...],
                     ops: List[Tuple[int, Any, Any]]):
        fut = asyncio.get_running_loop().create_future()
        self.inflight.put_nowait(fut)
        write_frame(self.writer, codec.encode_request(session, ops))
        await self.writer.drain()
        return await fut

    async def close(self) -> None:
        if self.reader_task is not None:
            self.reader_task.cancel()
            try:
                await self.reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self.writer is not None:
            self.writer.close()

    def abort(self) -> None:
        """Tear the transport down without goodbye (tests: mid-session
        client death)."""
        if self.reader_task is not None:
            self.reader_task.cancel()
        if self.writer is not None and self.writer.transport is not None:
            self.writer.transport.abort()
        # the reader task dies by cancellation, so it will never fail
        # the in-flight futures itself
        self._fail(ConnectionError("session aborted"))


class AsyncSessionClient:
    """The asyncio client; one instance = one session."""

    def __init__(self, spec: ClusterSpec, *, replica: int = 0):
        if not 0 <= replica < spec.group_size:
            raise ValueError(f"replica {replica} out of range")
        self.spec = spec
        self.replica = replica
        #: per-group session vectors (see module docstring).
        self.sessions: List[List[int]] = [
            [0] * spec.group_size for _ in range(spec.n_shards)
        ]
        self._conns: List[Optional[_GroupConn]] = [None] * spec.n_shards

    async def connect(self) -> "AsyncSessionClient":
        for group in range(self.spec.n_shards):
            await self._conn(group)
        return self

    async def _conn(self, group: int) -> _GroupConn:
        conn = self._conns[group]
        if conn is None:
            conn = _GroupConn(group, self.replica)
            await conn.connect(self.spec.endpoint(group, self.replica))
            self._conns[group] = conn
        return conn

    def _merge(self, group: int, progress: Sequence[int]) -> None:
        session = self.sessions[group]
        for j, seen in enumerate(progress):
            if seen > session[j]:
                session[j] = seen

    # -- operations ---------------------------------------------------------

    async def put(self, variable: Hashable, value: Any) -> int:
        """Write; returns the issued write's sequence number."""
        (result,) = await self.batch([(OP_WRITE, variable, value)],
                                     group=self.spec.group_for(variable))
        return result[1]

    async def get(self, variable: Hashable) -> Any:
        """Session-consistent read (BOTTOM when never written)."""
        (result,) = await self.batch([(OP_READ, variable, None)],
                                     group=self.spec.group_for(variable))
        return result[1]

    async def batch(self, ops: List[Tuple[int, Any, Any]],
                    *, group: int) -> List[Tuple[int, Any]]:
        """Ship one REQUEST frame of ops against one group."""
        conn = await self._conn(group)
        progress, results = await conn.request(tuple(self.sessions[group]),
                                               ops)
        self._merge(group, progress)
        return results

    def split_ops(self, ops: List[Tuple[int, Any, Any]]
                  ) -> Dict[int, List[Tuple[int, Any, Any]]]:
        """Group a mixed op list by owning shard (helper for callers
        that batch across the key space)."""
        grouped: Dict[int, List[Tuple[int, Any, Any]]] = {}
        for op in ops:
            grouped.setdefault(self.spec.group_for(op[1]), []).append(op)
        return grouped

    async def close(self) -> None:
        for conn in self._conns:
            if conn is not None:
                await conn.close()

    async def reset(self) -> None:
        """Drop every connection but keep the session vectors; each
        group re-dials lazily on next use.  This is how a load
        generator rides through a replica kill/restart: the preserved
        session vector makes the recovered replica prove it has caught
        up before serving this session's reads."""
        conns, self._conns = self._conns, [None] * self.spec.n_shards
        for conn in conns:
            if conn is not None:
                await conn.close()

    def abort(self) -> None:
        for conn in self._conns:
            if conn is not None:
                conn.abort()


class SessionClient:
    """Blocking facade over :class:`AsyncSessionClient` for scripts and
    doc examples; runs a private event loop."""

    def __init__(self, spec: ClusterSpec, *, replica: int = 0):
        self._loop = asyncio.new_event_loop()
        self._client = AsyncSessionClient(spec, replica=replica)
        self._loop.run_until_complete(self._client.connect())

    def put(self, variable: Hashable, value: Any) -> int:
        return self._loop.run_until_complete(self._client.put(variable, value))

    def get(self, variable: Hashable) -> Any:
        return self._loop.run_until_complete(self._client.get(variable))

    def close(self) -> None:
        self._loop.run_until_complete(self._client.close())
        self._loop.close()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
