"""Multi-process networked serving of the causal-memory protocols.

Turns the in-process protocol engines into a real causally consistent
key-value store: each replica is a standalone OS process running an
asyncio server (:mod:`repro.serve.server`) speaking a compact binary
wire protocol (:mod:`repro.serve.codec`), with key-space sharding
across replica groups (:mod:`repro.serve.shard`), session-consistent
clients (:mod:`repro.serve.client`), deterministic open-loop load
generation (:mod:`repro.serve.loadgen`), and a deployment harness
(:mod:`repro.serve.harness`) whose recorded runs replay byte-for-byte
through the paper's conformance oracles
(:mod:`repro.serve.merge` + :mod:`repro.serve.conformance`).

See ``docs/serving.md`` for the wire format and operational guide.
"""

from repro.serve.client import AsyncSessionClient, SessionClient
from repro.serve.codec import CodecError, encoded_size
from repro.serve.harness import ServedCluster, serve_and_load, serve_chaos
from repro.serve.loadgen import LoadgenConfig, run_worker, summarize_workers
from repro.serve.merge import MergeError, merge_node_logs
from repro.serve.server import SERVABLE_PROTOCOLS, ReplicaServer
from repro.serve.shard import ClusterSpec, shard_of

__all__ = [
    "AsyncSessionClient",
    "ClusterSpec",
    "CodecError",
    "LoadgenConfig",
    "MergeError",
    "ReplicaServer",
    "SERVABLE_PROTOCOLS",
    "ServedCluster",
    "SessionClient",
    "encoded_size",
    "merge_node_logs",
    "run_worker",
    "serve_and_load",
    "serve_chaos",
    "shard_of",
    "summarize_workers",
]
