"""Replay a recorded live trace through every existing oracle.

"Fast" must also be "causally consistent": after a served run, the
merged trace (:mod:`repro.serve.merge`) is fed -- unchanged -- through

- :func:`repro.analysis.checker.check_run` (history legality, safety,
  liveness, the Definition-3 delay audit, characterization), and
- the model checker's online :class:`~repro.mck.invariants.InvariantTracker`
  (per-event legality/safety/optimality) plus its Theorem-5 liveness
  terminal check,

which are exactly the oracles the simulator and mck paths trust.  The
trace also round-trips through the JSONL archive format so a recorded
run can be re-verified later with ``repro-dsm replay``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.checker import check_run
from repro.mck.invariants import InvariantTracker
from repro.sim.result import RunResult
from repro.sim.trace import EventKind, Trace

__all__ = ["verify_live_trace"]


def verify_live_trace(trace: Trace, *, protocol_name: str,
                      expect_optimal: bool = False,
                      quiescent: bool = True) -> Dict:
    """Run both oracle stacks over a merged live trace.

    ``quiescent`` should be True only when the deployment was drained
    before dumping (every broadcast delivered) -- the Theorem-5
    every-write-applied-everywhere check is meaningless mid-flight.
    Returns a JSON-able report; ``report["ok"]`` is the gate.
    """
    n = trace.n_processes
    result = RunResult(
        protocol_name=protocol_name,
        n_processes=n,
        trace=trace,
        duration=trace.events[-1].time if len(trace) else 0.0,
        messages_sent=0,
        bytes_estimate=0,
        stores=[{} for _ in range(n)],
        protocol_stats=[{} for _ in range(n)],
    )
    report = check_run(result)

    tracker = InvariantTracker(n, expect_optimal=expect_optimal)
    findings = tracker.observe(trace, trace.events)
    if quiescent:
        findings += tracker.liveness_findings(trace.writes_issued())

    writes = len(trace.writes_issued())
    reads = sum(1 for _ in trace.of_kind(EventKind.RETURN))
    checker_problems: List[str] = []
    if not report.legality:
        checker_problems.append(report.legality.summary())
    checker_problems += report.safety_violations
    checker_problems += report.characterization_errors
    if quiescent:
        checker_problems += report.liveness_violations
        checker_ok = report.ok
    else:
        # mid-flight dump: undelivered broadcasts are expected, so the
        # Theorem-5 everywhere-applied check does not apply
        checker_ok = (
            bool(report.legality)
            and not report.safety_violations
            and report.characterization_ok is not False
        )
    return {
        "ok": checker_ok and not findings,
        "protocol": protocol_name,
        "n_processes": n,
        "events": len(trace),
        "writes": writes,
        "reads": reads,
        "delays": report.total_delays,
        "unnecessary_delays": len(report.unnecessary_delays),
        "checker_ok": checker_ok,
        "checker_problems": checker_problems,
        "invariant_findings": [str(f) for f in findings],
        "tracker_unnecessary": len(tracker.unnecessary),
    }
