"""One replica as a standalone asyncio server.

A :class:`ReplicaServer` hosts exactly the simulator's substrate -- a
:class:`repro.sim.node.Node` wrapping one registry protocol instance --
behind real sockets:

- **peer plane**: one outgoing connection per group peer carrying
  :data:`~repro.serve.codec.FRAME_MSG_BATCH` frames.  Protocol
  broadcasts are *micro-batched* Nagle-style: an update is appended to
  the per-peer buffer and the frame ships when either the batch window
  elapses (one ``call_later`` per open window) or the buffer hits its
  message/byte cap -- so the syscall count grows with *batches*, not
  ops, and stays sublinear in op count under load.
- **client plane**: pipelined REQUEST/RESPONSE frames.  A request
  carries the client session vector; writes execute immediately, reads
  first await local dominance of that vector (read-your-writes +
  monotonic reads, Section "session guarantees" of docs/serving.md)
  and responses return the server's applied vector for the client to
  fold into its session.
- **admin plane**: quiesce polling and two-phase shutdown, so a parent
  can drain the deployment before asking nodes to dump their event
  logs (which keeps the Theorem-5 liveness check meaningful).

Everything protocol-visible reuses the existing substrate unchanged:
buffering goes through the dependency-indexed scheduler, events land
in a real :class:`~repro.sim.trace.Trace` (or a no-op trace when not
recording), and the recorded log replays through every checker via
:mod:`repro.serve.merge` / :mod:`repro.serve.conformance`.

With ``wal_dir`` set the replica is *durable* (crash-recovery model,
``docs/fault-tolerance.md``): every client write, client read (OptP
reads mutate ``Write_co``, Figure 5 line 1) and peer receipt is
journaled to a CRC-framed write-ahead log before it executes, the log
is fsynced before any effect externalizes (peer flush or client
response -- group commit), and the log is periodically folded into an
atomic snapshot.  A restarted replica rebuilds its exact pre-crash
state by snapshot restore + WAL replay, re-announces its progress to
peers via :data:`~repro.serve.codec.FRAME_PEER_WELCOME`, and receives
the update suffix it missed; peer links are supervised and redial on
EOF, so the surviving replicas resync a recovered one the same way.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.base import BROADCAST, Outgoing
from repro.obs.spans import NULL_OBS, Obs
from repro.serve import codec
from repro.serve.codec import (
    FRAME_HELLO,
    FRAME_MSG_BATCH,
    FRAME_PEER_WELCOME,
    FRAME_STOP,
    FRAME_STOPPED,
    OP_READ,
    OP_WRITE,
    ROLE_ADMIN,
    ROLE_CLIENT,
    ROLE_PEER,
    CodecError,
    InternDecoder,
    InternEncoder,
    VarReader,
    VarWriter,
    read_frame,
    write_frame,
)
from repro.serve.merge import dump_node_log
from repro.serve.shard import ClusterSpec, parse_endpoint
from repro.serve.timebase import monotonic
from repro.sim.node import Node
from repro.sim.trace import NullTrace, Trace

__all__ = ["NullTrace", "ReplicaServer", "SERVABLE_PROTOCOLS"]

#: Protocols the serving layer supports: immediate local apply, pure
#: update-broadcast propagation, no timers or control traffic.  (The
#: sequencer defers local applies behind a round trip and the token /
#: gossip baselines need timers; they stay simulator-only.)
SERVABLE_PROTOCOLS = ("optp", "anbkh")

#: STOP modes (admin plane).
STOP_QUERY = 0     #: report queue depth + applied vector, keep serving
STOP_SHUTDOWN = 1  #: flush, dump, acknowledge, exit

_PEER_CONNECT_TIMEOUT = 15.0
_DRAIN_HIGH_WATER = 1 << 20


class _ServedNode(Node):
    """A :class:`Node` that reports each remote apply's message, so the
    server can maintain its applied vector (the session/progress
    vector) without touching protocol internals."""

    def __init__(self, *args, on_apply_msg=None, **kwargs):
        super().__init__(*args, **kwargs)
        self._on_apply_msg = on_apply_msg

    def _apply(self, msg):
        super()._apply(msg)
        if self._on_apply_msg is not None:
            self._on_apply_msg(msg)


class _PeerLink:
    """Outgoing half-connection to one peer with micro-batching."""

    __slots__ = ("dest", "writer", "intern", "bodies", "pending_bytes",
                 "flush_handle", "draining", "server")

    def __init__(self, server: "ReplicaServer", dest: int, writer) -> None:
        self.server = server
        self.dest = dest
        self.writer = writer
        self.intern = InternEncoder()
        self.bodies: List[bytes] = []
        self.pending_bytes = 0
        self.flush_handle: Optional[asyncio.TimerHandle] = None
        self.draining = False

    def enqueue(self, message) -> None:
        w = VarWriter()
        codec.encode_message_into(w, message, self.intern)
        body = w.getvalue()
        self.bodies.append(body)
        self.pending_bytes += len(body)
        srv = self.server
        if (len(self.bodies) >= srv.batch_max_msgs
                or self.pending_bytes >= srv.batch_max_bytes):
            self.flush()
        elif self.flush_handle is None:
            self.flush_handle = srv._loop.call_later(srv.batch_window,
                                                     self.flush)

    def flush(self) -> None:
        if self.flush_handle is not None:
            self.flush_handle.cancel()
            self.flush_handle = None
        if not self.bodies:
            return
        srv = self.server
        # Group commit: never externalize an update whose WAL record is
        # not yet durable -- a crashed-and-recovered replica must never
        # reissue a write-id a peer has already applied.
        if srv._wal is not None:
            srv._wal.sync()
        w = VarWriter()
        w.u8(FRAME_MSG_BATCH)
        w.uvarint(len(self.bodies))
        for body in self.bodies:
            w.raw(body)
        payload = w.getvalue()
        write_frame(self.writer, payload)
        srv.stats["peer_batches"] += 1
        srv.stats["peer_msgs"] += len(self.bodies)
        srv.stats["peer_bytes"] += len(payload) + 4
        if srv._obs.enabled:
            srv._m_batches.inc()
            srv._m_batch_msgs.inc(len(self.bodies))
        self.bodies.clear()
        self.pending_bytes = 0
        transport = self.writer.transport
        if (transport is not None
                and transport.get_write_buffer_size() > _DRAIN_HIGH_WATER
                and not self.draining):
            self.draining = True
            asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        try:
            await self.writer.drain()
        except ConnectionError:
            pass
        finally:
            self.draining = False

    def close(self) -> None:
        if self.flush_handle is not None:
            self.flush_handle.cancel()
            self.flush_handle = None
        try:
            self.writer.close()
        except RuntimeError:  # loop already closing
            pass


class ReplicaServer:
    """One group-replica process: protocol node + sockets + sessions."""

    def __init__(
        self,
        spec: ClusterSpec,
        group: int,
        node_id: int,
        *,
        record: bool = False,
        rundir: Optional[Path] = None,
        wal_dir: Optional[Path] = None,
        fsync_every: int = 256,
        snapshot_every: int = 4096,
        batch_window: float = 0.0005,
        batch_max_msgs: int = 256,
        batch_max_bytes: int = 64 << 10,
        obs: Obs = NULL_OBS,
    ):
        if spec.protocol not in SERVABLE_PROTOCOLS:
            raise ValueError(
                f"protocol {spec.protocol!r} is not servable "
                f"(supported: {', '.join(SERVABLE_PROTOCOLS)})"
            )
        from repro.sim.cluster import _resolve_factory

        self.spec = spec
        self.group = group
        self.node_id = node_id
        self.n = spec.group_size
        self.record = record
        self.rundir = Path(rundir) if rundir is not None else None
        self.wal_dir = Path(wal_dir) if wal_dir is not None else None
        self.fsync_every = fsync_every
        self.snapshot_every = snapshot_every
        self.batch_window = batch_window
        self.batch_max_msgs = batch_max_msgs
        self.batch_max_bytes = batch_max_bytes
        self._obs = obs

        self._t0 = monotonic()
        factory = _resolve_factory(spec.protocol)
        self.trace: Trace = Trace(self.n) if record else NullTrace(self.n)
        self.node = _ServedNode(
            factory(node_id, self.n),
            self.trace,
            clock=self._now,
            dispatch=self._dispatch,
            on_apply_msg=self._count_remote_apply,
            scheduler="auto",
            state_backend="scalar",
            # Links redial on EOF and retransmit the unacked suffix;
            # the ack only covers *applied* updates, so a retransmitted
            # update may race its buffered twin -- the at-least-once
            # guard drops it before it can double-apply.
            dedup=True,
        )
        #: applied[j] = writes issued by group-peer j applied locally;
        #: grows monotonically, so ``tuple(applied)`` is the progress
        #: vector clients fold into their session vectors.
        self.applied: List[int] = [0] * self.n
        #: own broadcast updates in issue order: ``_sent[k]`` is write
        #: k+1's update message, so a peer whose WELCOME acknowledged K
        #: applied writes needs exactly the suffix ``_sent[K:]``.
        self._sent: List[Any] = []
        self._replaying = False
        self._replay_now = 0.0
        self._wal = None
        self._wal_total = 0
        self._snap_covered = 0
        self._snap_path: Optional[Path] = None
        self._dur = None
        self._links: Dict[int, _PeerLink] = {}
        self._link_up: Dict[int, asyncio.Event] = {
            dest: asyncio.Event()
            for dest in range(self.n) if dest != node_id
        }
        self._peer_tasks: List[asyncio.Task] = []
        self._waiters: List[asyncio.Future] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._conn_tasks: List[asyncio.Task] = []
        self.stats: Dict[str, int] = {
            "writes": 0, "reads": 0, "read_waits": 0, "requests": 0,
            "peer_batches": 0, "peer_msgs": 0, "peer_bytes": 0,
            "frames_in": 0, "client_conns": 0, "client_aborts": 0,
            "peer_dials": 0, "wal_records": 0, "snapshots": 0,
            "recovered": 0, "recovery_us": 0,
        }
        if obs.enabled:
            reg = obs.registry
            label = dict(group=group, node=node_id)
            self._m_writes = reg.counter("serve.writes", **label)
            self._m_reads = reg.counter("serve.reads", **label)
            self._m_waits = reg.counter("serve.read_waits", **label)
            self._m_batches = reg.counter("serve.peer_batches", **label)
            self._m_batch_msgs = reg.counter("serve.peer_msgs", **label)
            self._m_wal = reg.counter("serve.wal_records", **label)
            self._h_recovery = reg.histogram("serve.recovery_seconds",
                                             **label)
        if self.wal_dir is not None:
            self._open_durable()

    # -- clock / progress ---------------------------------------------------

    def _now(self) -> float:
        if self._replaying:
            return self._replay_now
        return monotonic() - self._t0

    def _count_remote_apply(self, msg) -> None:
        self.applied[msg.sender] += 1
        if self._waiters:
            self._wake_waiters()

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if not fut.done():
                fut.set_result(None)

    def _dominates(self, session: Sequence[int]) -> bool:
        applied = self.applied
        for j, wanted in enumerate(session):
            if applied[j] < wanted:
                return False
        return True

    async def _await_session(self, session: Tuple[int, ...]) -> None:
        while not self._dominates(session):
            fut = self._loop.create_future()
            self._waiters.append(fut)
            await fut

    # -- durability ---------------------------------------------------------

    def _open_durable(self) -> None:
        """Recover from ``wal_dir``'s snapshot + WAL, then arm the WAL.

        :mod:`repro.durability` is imported lazily: it depends on the
        serve codec, so a module-level import here would dereference a
        partially initialized package when durability is imported
        first.
        """
        from repro import durability as dur
        self._dur = dur
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        stem = self.wal_dir / f"node-g{self.group}n{self.node_id}"
        wal_path = stem.with_suffix(".wal")
        self._snap_path = stem.with_suffix(".snap")
        t_start = monotonic()
        # In record mode the full trace must be rebuilt with original
        # timestamps, so the snapshot is ignored (the WAL is never
        # compacted; full replay is always possible) and no further
        # snapshots are taken.
        raw_snap = (None if self.record
                    else dur.read_framed_file(self._snap_path))
        res = dur.read_wal(wal_path)
        if raw_snap is not None or res.bodies:
            self._replay(dur, raw_snap, res)
            self.stats["recovered"] = 1
            self.stats["recovery_us"] = int((monotonic() - t_start) * 1e6)
            if self._obs.enabled:
                self._h_recovery.observe(monotonic() - t_start)
        if res.tail_bytes:
            # appending after a torn tail would wedge every later
            # record behind an unreadable prefix
            os.truncate(wal_path, res.valid_bytes)
        self._wal_total = len(res.bodies)
        self._snap_covered = self._wal_total
        self._wal = dur.WalWriter(wal_path, fsync_every=self.fsync_every)

    def _replay(self, dur, raw_snap: Optional[bytes], res) -> None:
        """Rebuild pre-crash state through the *live* node: replayed
        events land on the real trace (record mode) and replayed
        receipts advance ``applied`` via the normal apply hook, while
        ``_replaying`` suppresses re-externalization in
        :meth:`_dispatch` (broadcasts still append to ``_sent``, which
        is how the retransmission buffer is rebuilt)."""
        skip = 0
        last_t = 0.0
        self._replaying = True
        try:
            if raw_snap is not None:
                doc = dur.decode_snapshot(raw_snap)
                dur.restore_node(self.node, doc["node"])
                self.applied = [int(x) for x in doc["applied"]]
                self._sent = [codec.decode_message(raw)
                              for raw in doc["sent"]]
                skip = int(doc["wal_records"])
                last_t = float(doc["t"])
                self._replay_now = last_t
            for body in res.bodies[skip:]:
                rec = dur.decode_record(body)
                last_t = rec[1]
                self._replay_now = rec[1]
                dur.apply_record(self.node, rec)
            self.applied[self.node_id] = self.node.protocol.writes_issued
        except dur.RecoveryError:
            raise
        except Exception as exc:
            raise dur.RecoveryError(
                "serving-layer recovery failed",
                snapshot_seq=skip, wal_records=len(res.bodies),
                wal_tail_bytes=res.tail_bytes, detail=repr(exc)) from exc
        finally:
            self._replaying = False
        # resume the timebase where the journal left off so the
        # replica's post-recovery timestamps stay monotone
        self._t0 = monotonic() - last_t

    def _wal_append(self, body: bytes) -> None:
        self._wal.append(body)
        self._wal_total += 1
        self.stats["wal_records"] += 1
        if self._obs.enabled:
            self._m_wal.inc()

    def _maybe_snapshot(self) -> None:
        """Fold the WAL into a fresh snapshot when due.

        Callers invoke this only *between* operations -- a WAL record
        is appended before its op executes, so mid-operation the node
        lags the log by one record and a snapshot taken there would
        silently drop that op on recovery.
        """
        if (self._wal is None or self.record or not self.snapshot_every
                or self._wal_total - self._snap_covered
                < self.snapshot_every):
            return
        dur = self._dur
        doc = {
            "node": dur.snapshot_node(self.node),
            "applied": list(self.applied),
            "t": self._now(),
            "sent": [codec.encode_message(m) for m in self._sent],
            "wal_records": self._wal_total,
        }
        self._wal.sync()
        dur.write_framed_file(self._snap_path, dur.encode_snapshot(doc))
        self._snap_covered = self._wal_total
        self.stats["snapshots"] += 1

    # -- protocol plumbing --------------------------------------------------

    def _dispatch(self, sender: int, outgoing: Sequence[Outgoing]) -> None:
        for out in outgoing:
            if out.dest == BROADCAST:
                self._sent.append(out.message)
                if self._replaying:
                    continue
                for dest in range(self.n):
                    if dest != sender:
                        link = self._links.get(dest)
                        if link is not None:
                            link.enqueue(out.message)
            else:
                if self._replaying:
                    continue
                link = self._links.get(out.dest)
                if link is not None:
                    link.enqueue(out.message)

    # -- lifecycle ----------------------------------------------------------

    async def run(self, *, ready_path: Optional[Path] = None) -> None:
        """Listen, link up with peers, serve until shutdown.

        ``ready_path`` is touched once the listener is bound AND every
        peer link is up -- a client arriving after the ready file
        exists can never catch the replica without its broadcast
        links.  (Every replica listens before dialing, so gating ready
        on the dials cannot deadlock.)
        """
        self._loop = asyncio.get_running_loop()
        await self._listen()
        await self._connect_peers()
        self.node.start()
        if ready_path is not None:
            Path(ready_path).write_text("ready\n")
        await self._stop.wait()
        await self._teardown()

    async def _listen(self) -> None:
        scheme, addr = parse_endpoint(self.spec.endpoint(self.group,
                                                         self.node_id))
        if scheme == "unix":
            # a restarted replica inherits its predecessor's socket path
            try:
                os.unlink(addr)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=addr)
        else:
            host, port = addr
            self._server = await asyncio.start_server(
                self._on_connection, host=host, port=port)

    async def _connect_peers(self) -> None:
        for dest in sorted(self._link_up):
            self._peer_tasks.append(
                self._loop.create_task(self._peer_supervisor(dest)))
        deadline = monotonic() + _PEER_CONNECT_TIMEOUT
        for dest in sorted(self._link_up):
            try:
                await asyncio.wait_for(
                    self._link_up[dest].wait(),
                    timeout=max(0.01, deadline - monotonic()))
            except asyncio.TimeoutError:
                raise TimeoutError(
                    f"g{self.group}n{self.node_id}: peer {dest} "
                    f"unreachable within {_PEER_CONNECT_TIMEOUT}s"
                ) from None

    async def _peer_supervisor(self, dest: int) -> None:
        """Own the outgoing link to ``dest``: dial (with retry), resync
        against the peer's WELCOME ack, then watch for EOF and redial.

        Registration and suffix retransmission happen with no ``await``
        between them: a broadcast dispatched while the WELCOME was in
        flight missed the not-yet-registered link but was appended to
        ``_sent``, so the acked suffix covers it exactly once.
        """
        scheme, addr = parse_endpoint(self.spec.endpoint(self.group, dest))
        while not self._stop.is_set():
            writer = None
            try:
                if scheme == "unix":
                    reader, writer = await asyncio.open_unix_connection(addr)
                else:
                    reader, writer = await asyncio.open_connection(*addr)
                hello = VarWriter()
                hello.u8(FRAME_HELLO)
                hello.u8(ROLE_PEER)
                hello.uvarint(self.node_id)
                write_frame(writer, hello.getvalue())
                body = await read_frame(reader)
                if body is None:
                    raise ConnectionError("peer closed before WELCOME")
                r = VarReader(body)
                if r.u8() != FRAME_PEER_WELCOME:
                    raise CodecError("expected PEER_WELCOME")
                acked = r.uvarint()
                link = _PeerLink(self, dest, writer)
                self._links[dest] = link
                for message in self._sent[acked:]:
                    link.enqueue(message)
                self._link_up[dest].set()
                self.stats["peer_dials"] += 1
                while True:  # nothing follows WELCOME; EOF = peer died
                    chunk = await reader.read(4096)
                    if not chunk:
                        break
            except (CodecError, ConnectionError, OSError):
                pass
            finally:
                current = self._links.get(dest)
                if current is not None and current.writer is writer:
                    self._link_up[dest].clear()
                    del self._links[dest]
                    current.close()
                elif writer is not None:
                    try:
                        writer.close()
                    except RuntimeError:
                        pass
            if not self._stop.is_set():
                await asyncio.sleep(0.05)

    async def _teardown(self) -> None:
        for task in self._peer_tasks:
            task.cancel()
        await asyncio.gather(*self._peer_tasks, return_exceptions=True)
        for dest in sorted(self._links):
            self._links[dest].close()
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._conn_tasks:
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._wal is not None:
            self._wal.sync()
            self._wal.close()

    # -- connection handling ------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.append(task)
        try:
            body = await read_frame(reader)
            if body is None:
                return
            r = VarReader(body)
            if r.u8() != FRAME_HELLO:
                raise CodecError("expected HELLO")
            role = r.u8()
            sender = r.uvarint()
            if role == ROLE_PEER:
                await self._serve_peer(reader, writer, sender)
            elif role == ROLE_CLIENT:
                await self._serve_client(reader, writer)
            elif role == ROLE_ADMIN:
                await self._serve_admin(reader, writer)
            else:
                raise CodecError(f"unknown role {role}")
        except (CodecError, ConnectionError):
            # a torn or misbehaving connection must never take the
            # replica down; sessions on other connections are unharmed
            self.stats["client_aborts"] += 1
        except asyncio.CancelledError:
            # teardown cancels connection tasks; asyncio.Server's
            # done-callback would re-raise this as an event-loop error
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass
            if task is not None and task in self._conn_tasks:
                self._conn_tasks.remove(task)

    async def _serve_peer(self, reader, writer, sender: int) -> None:
        # WELCOME tells the dialing peer how many of its writes we have
        # applied, so it retransmits exactly the suffix we are missing.
        w = VarWriter()
        w.u8(FRAME_PEER_WELCOME)
        w.uvarint(self.applied[sender])
        write_frame(writer, w.getvalue())
        await writer.drain()
        intern = InternDecoder()
        node = self.node
        while True:
            body = await read_frame(reader)
            if body is None:
                return
            self.stats["frames_in"] += 1
            r = VarReader(body)
            if r.u8() != FRAME_MSG_BATCH:
                raise CodecError("expected MSG_BATCH on peer plane")
            count = r.uvarint()
            for _ in range(count):
                message = codec.decode_message_from(r, intern)
                if self._wal is not None:
                    # duplicates are journaled too: replay routes them
                    # through the same dedup guard, so the rebuilt
                    # state cannot depend on when dedup happened
                    self._wal_append(
                        self._dur.encode_recv_record(self._now(), message))
                node.receive(message)
            self._maybe_snapshot()

    async def _serve_client(self, reader, writer) -> None:
        self.stats["client_conns"] += 1
        node = self.node
        obs_on = self._obs.enabled
        while True:
            body = await read_frame(reader)
            if body is None:
                return
            session, ops = codec.decode_request(body)
            if len(session) != self.n:
                raise CodecError(
                    f"session vector has {len(session)} components, "
                    f"group size is {self.n}"
                )
            self.stats["requests"] += 1
            results: List[Tuple[int, Any]] = []
            for kind, variable, value in ops:
                if kind == OP_WRITE:
                    if self._wal is not None:
                        self._wal_append(self._dur.encode_write_record(
                            self._now(), variable, value))
                    wid = node.do_write(variable, value)
                    self.applied[self.node_id] = wid.seq
                    self.stats["writes"] += 1
                    if obs_on:
                        self._m_writes.inc()
                    results.append((OP_WRITE, wid.seq))
                else:
                    if not self._dominates(session):
                        self.stats["read_waits"] += 1
                        if obs_on:
                            self._m_waits.inc()
                        await self._await_session(session)
                    if self._wal is not None:
                        # reads are journaled because OptP's Figure 5
                        # line 1 folds LastWriteOn into Write_co -- a
                        # read changes the causal past of later writes
                        self._wal_append(self._dur.encode_read_record(
                            self._now(), variable))
                    results.append((OP_READ, node.do_read(variable)))
                    self.stats["reads"] += 1
                    if obs_on:
                        self._m_reads.inc()
            if self._wal is not None:
                # group commit: the response acknowledges these ops
                self._wal.sync()
            write_frame(writer,
                        codec.encode_response(tuple(self.applied), results))
            await writer.drain()
            self._maybe_snapshot()

    async def _serve_admin(self, reader, writer) -> None:
        while True:
            body = await read_frame(reader)
            if body is None:
                return
            r = VarReader(body)
            if r.u8() != FRAME_STOP:
                raise CodecError("expected STOP on admin plane")
            mode = r.u8()
            if mode == STOP_QUERY:
                self._flush_links()
                write_frame(writer, self._stopped_frame())
                await writer.drain()
            elif mode == STOP_SHUTDOWN:
                self._flush_links()
                self._dump()
                write_frame(writer, self._stopped_frame())
                await writer.drain()
                self._stop.set()
                return
            else:
                raise CodecError(f"unknown STOP mode {mode}")

    # -- admin helpers ------------------------------------------------------

    def _flush_links(self) -> None:
        for dest in sorted(self._links):
            self._links[dest].flush()

    def _status(self) -> Dict[str, Any]:
        stats = dict(self.stats)
        if self._wal is not None:
            stats["wal_bytes"] = self._wal.bytes_written
            stats["wal_fsyncs"] = self._wal.fsyncs
        return {
            "group": self.group,
            "node": self.node_id,
            "applied": tuple(self.applied),
            "buffered": self.node.buffered_count,
            "writes_issued": self.node.protocol.writes_issued,
            "stats": stats,
        }

    def _stopped_frame(self) -> bytes:
        w = VarWriter()
        w.u8(FRAME_STOPPED)
        codec.encode_value(w, self._status())
        return w.getvalue()

    def _dump(self) -> None:
        if self.rundir is None:
            return
        stem = self.rundir / f"node-g{self.group}n{self.node_id}"
        if self.record:
            stem.with_suffix(".log.jsonl").write_text(
                dump_node_log(self.trace, self.node_id, self.spec.protocol)
            )
        stem.with_suffix(".stats.json").write_text(
            json.dumps(self._status(), indent=2, sort_keys=True, default=str)
        )
