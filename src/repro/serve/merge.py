"""Per-node event logs and the causally gated k-way trace merge.

Each live replica records only its *own* process's events (its ``E_i``
of Section 3.1) with machine-monotonic timestamps.  Reconstructing the
global :class:`~repro.sim.trace.Trace` the analyzers expect means
interleaving the per-node logs into one total order.  Sorting by
timestamp is almost right -- on one host ``CLOCK_MONOTONIC`` is shared
across processes, so a receipt really is stamped after its send -- but
the checkers' correctness must not hinge on clock quality.  The merge
is therefore *gated*: a k-way merge by ``(time, process, local index)``
that refuses to emit any receipt-family event (RECEIPT / BUFFER /
APPLY / DISCARD of a remote write) before the issuer's WRITE event has
been emitted.  A blocked stream simply waits while others advance.

This cannot deadlock when every per-node log is in real-time order:
a stream only blocks on another stream's WRITE event, WRITE events are
never blocked, and a cyclic wait would need some message to be
received before it was sent.  If logs are inconsistent (clock jumped
backwards mid-run, truncated file), the merge raises
:class:`MergeError` with the stuck heads rather than emitting a trace
the checkers would misjudge.

The resulting trace is *exactly* what a simulator run would have
recorded -- same event vocabulary, same per-process orders -- so
``check_run``, the mck :class:`~repro.mck.invariants.InvariantTracker`,
and the JSONL serializer all replay it unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.serialize import _decode_value, _decode_wid, _encode_value, \
    _encode_wid
from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = ["MergeError", "NodeLog", "dump_node_log", "load_node_log",
           "merge_node_logs"]

LOG_VERSION = 1

#: Event kinds that must wait for the issuer's WRITE during the merge.
_RECEIPT_FAMILY = (EventKind.RECEIPT, EventKind.BUFFER, EventKind.APPLY,
                   EventKind.DISCARD)


class MergeError(RuntimeError):
    """Node logs admit no causally consistent interleaving."""


@dataclass
class NodeLog:
    """One replica's recorded ``E_i`` plus identifying metadata."""

    process: int
    n_processes: int
    protocol: str
    #: ``(event, registers_apply)`` pairs in local (``<_i``) order;
    #: ``registers_apply`` is None except on WRITE events.
    events: List[Tuple[TraceEvent, Optional[bool]]]


def dump_node_log(trace: Trace, process: int, protocol: str) -> str:
    """Serialize one node's own events to JSONL (header line first).

    ``registers_apply`` is captured per WRITE event by asking the trace
    whether that event owns the (process, wid) apply slot -- protocols
    that defer their local apply record it as a later APPLY event.
    """
    header = {
        "version": LOG_VERSION,
        "kind": "node-log",
        "process": process,
        "n": trace.n_processes,
        "protocol": protocol,
    }
    lines = [json.dumps(header, sort_keys=True)]
    for ev in trace.process_events(process):
        doc: Dict[str, Any] = {
            "t": ev.time,
            "k": ev.kind.value,
            "wid": _encode_wid(ev.wid),
            "var": _encode_value(ev.variable),
            "val": _encode_value(ev.value),
        }
        if ev.read_from is not None:
            doc["rf"] = _encode_wid(ev.read_from)
        if ev.kind is EventKind.WRITE:
            doc["ra"] = trace.apply_event(process, ev.wid) is ev
        lines.append(json.dumps(doc, sort_keys=True))
    return "\n".join(lines) + "\n"


def load_node_log(text: str) -> NodeLog:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise MergeError("empty node log")
    header = json.loads(lines[0])
    if header.get("kind") != "node-log" or header.get("version") != LOG_VERSION:
        raise MergeError(f"bad node log header {header!r}")
    process = header["process"]
    events = []
    for idx, line in enumerate(lines[1:]):
        doc = json.loads(line)
        kind = EventKind(doc["k"])
        registers = doc.get("ra")
        ev = TraceEvent(
            seq=idx,
            time=doc["t"],
            process=process,
            kind=kind,
            wid=_decode_wid(doc.get("wid")),
            variable=_decode_value(doc.get("var")),
            value=_decode_value(doc.get("val")),
            read_from=_decode_wid(doc.get("rf")),
            state=None,
        )
        events.append((ev, registers))
    return NodeLog(
        process=process,
        n_processes=header["n"],
        protocol=header["protocol"],
        events=events,
    )


def merge_node_logs(logs: Sequence[NodeLog]) -> Trace:
    """Interleave per-node logs into one analyzable global trace."""
    if not logs:
        raise MergeError("no node logs to merge")
    n = logs[0].n_processes
    protocols = sorted({log.protocol for log in logs})
    if len(protocols) != 1:
        raise MergeError(f"mixed protocols in node logs: {protocols}")
    by_process: Dict[int, NodeLog] = {}
    for log in logs:
        if log.n_processes != n:
            raise MergeError("node logs disagree on n_processes")
        if log.process in by_process:
            raise MergeError(f"two logs for process {log.process}")
        by_process[log.process] = log
    streams = [by_process[p].events if p in by_process else []
               for p in range(n)]

    trace = Trace(n)
    heads = [0] * n
    writes_emitted: set = set()
    remaining = sum(len(s) for s in streams)

    def blocked(process: int, ev: TraceEvent) -> bool:
        return (
            ev.kind in _RECEIPT_FAMILY
            and ev.wid is not None
            and ev.wid.process != process
            and ev.wid not in writes_emitted
        )

    while remaining:
        best: Optional[Tuple[float, int]] = None
        for p in range(n):
            if heads[p] >= len(streams[p]):
                continue
            ev, _ = streams[p][heads[p]]
            if blocked(p, ev):
                continue
            key = (ev.time, p)
            if best is None or key < best:
                best = key
        if best is None:
            stuck = [
                f"p{p}: {streams[p][heads[p]][0]}"
                for p in range(n)
                if heads[p] < len(streams[p])
            ]
            raise MergeError(
                "node logs admit no causal interleaving (message received "
                "before it was sent?); stuck heads: " + "; ".join(stuck)
            )
        p = best[1]
        ev, registers = streams[p][heads[p]]
        heads[p] += 1
        remaining -= 1
        trace.record(
            ev.time,
            p,
            ev.kind,
            wid=ev.wid,
            variable=ev.variable,
            value=ev.value,
            read_from=ev.read_from,
            registers_apply=registers,
        )
        if ev.kind is EventKind.WRITE:
            writes_emitted.add(ev.wid)
    return trace
