"""Open-loop load generation against a served deployment.

One *worker* (one process) drives one :class:`ClusterSpec` deployment
through ``pipeline`` independent lanes; each lane is its own session
(own connections, own session vectors) issuing REQUEST frames of
``batch`` ops.  Two pacing modes:

- ``rate == 0`` -- saturation: every lane keeps exactly one frame in
  flight, so the worker applies constant back-to-back pressure and the
  measured rate is the deployment's capacity for this worker count.
- ``rate > 0`` -- open loop: batch k has a *scheduled* issue time
  ``t0 + k*batch/rate`` regardless of completions, and latency is
  measured from that scheduled time.  A deployment that cannot keep up
  shows queueing delay in its tail latencies instead of silently
  slowing the generator (the coordinated-omission trap).

The op mix and key choice are deterministic (error-accumulator for the
read fraction, Knuth multiplicative hashing over the key space) so two
runs of the same config issue the identical op sequence -- randomness
would buy nothing and costs reproducibility (reprolint RL001 zone).

Latency samples are decimated deterministically (every 2nd sample once
the cap is hit) to bound worker-result size; percentiles come from the
existing :class:`repro.obs.metrics.Histogram` (exact nearest-rank on
the retained samples).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.serve.client import AsyncSessionClient
from repro.serve.codec import OP_READ, OP_WRITE
from repro.serve.shard import ClusterSpec
from repro.serve.timebase import monotonic

__all__ = ["LoadgenConfig", "run_worker", "summarize_workers"]

#: Retained latency samples per (worker, op kind) before decimation.
SAMPLE_CAP = 16384

_KNUTH = 2654435761


@dataclass
class LoadgenConfig:
    duration: float = 5.0
    batch: int = 64
    pipeline: int = 4
    read_fraction: float = 0.9
    keys: int = 64
    value_size: int = 8
    rate: float = 0.0       #: target ops/s for this worker; 0 = saturate
    replica_spread: bool = True  #: lanes fan out over group replicas
    key_prefix: str = "k"
    #: ride through replica kill/restart: drop the failed batch, reset
    #: the connections (sessions survive), retry after a short pause
    reconnect: bool = False


class _Samples:
    """Bounded latency log with deterministic decimation.

    Once full, every second retained sample is dropped and the keep
    stride doubles -- the survivors stay uniformly spread over time.
    """

    __slots__ = ("values", "stride", "_phase", "count")

    def __init__(self) -> None:
        self.values: List[float] = []
        self.stride = 1
        self._phase = 0
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        self._phase += 1
        if self._phase >= self.stride:
            self._phase = 0
            self.values.append(value)
            if len(self.values) >= SAMPLE_CAP:
                self.values = self.values[::2]
                self.stride *= 2


def _op_stream(cfg: LoadgenConfig, lane: int):
    """Deterministic infinite (kind, variable, value) generator."""
    acc = 0.0
    i = lane * 7919  # offset lanes so they do not hit keys in lockstep
    value = "v" * max(1, cfg.value_size)
    while True:
        i += 1
        key = f"{cfg.key_prefix}{(i * _KNUTH) % cfg.keys}"
        acc += cfg.read_fraction
        if acc >= 1.0:
            acc -= 1.0
            yield (OP_READ, key, None)
        else:
            yield (OP_WRITE, key, f"{value}.{lane}.{i}")


async def _run_lane(spec: ClusterSpec, cfg: LoadgenConfig, lane: int,
                    deadline: float, reads: _Samples,
                    writes: _Samples) -> Tuple[int, int]:
    """One session issuing batches until the deadline; returns
    (ops_done, batches_done)."""
    replica = lane % spec.group_size if cfg.replica_spread else 0
    client = AsyncSessionClient(spec, replica=replica)
    await client.connect()
    stream = _op_stream(cfg, lane)
    ops_done = 0
    batches = 0
    lane_count = max(1, cfg.pipeline)
    batch_interval = (
        cfg.batch * lane_count / cfg.rate if cfg.rate > 0 else 0.0
    )
    t0 = monotonic()
    k = 0
    try:
        while True:
            now = monotonic()
            if now >= deadline:
                break
            if batch_interval:
                scheduled = t0 + k * batch_interval
                if scheduled > now:
                    await asyncio.sleep(scheduled - now)
                    if monotonic() >= deadline:
                        break
                issue_ref = scheduled
            else:
                issue_ref = now
            ops = [next(stream) for _ in range(cfg.batch)]
            by_group = client.split_ops(ops)
            try:
                for group in sorted(by_group):
                    group_ops = by_group[group]
                    await client.batch(group_ops, group=group)
            except (ConnectionError, OSError):
                if not cfg.reconnect:
                    raise
                # the serving replica died mid-batch: the batch is
                # dropped (its latency would measure the outage, not
                # the store), the session vectors survive, and the
                # next batch re-establishes the session guarantees
                # against whatever the restarted replica recovered
                await client.reset()
                await asyncio.sleep(0.1)
                k += 1
                continue
            done = monotonic()
            latency_ms = (done - issue_ref) * 1000.0
            for kind, _, _ in ops:
                if kind == OP_READ:
                    reads.add(latency_ms)
                else:
                    writes.add(latency_ms)
            ops_done += len(ops)
            batches += 1
            k += 1
    finally:
        await client.close()
    return ops_done, batches


async def run_worker(spec: ClusterSpec, cfg: LoadgenConfig,
                     *, worker_id: int = 0) -> Dict[str, Any]:
    """Drive one worker's lanes; returns a JSON-able result dict."""
    reads = _Samples()
    writes = _Samples()
    start = monotonic()
    deadline = start + cfg.duration
    lane_results = await asyncio.gather(*(
        _run_lane(spec, cfg, worker_id * cfg.pipeline + lane, deadline,
                  reads, writes)
        for lane in range(max(1, cfg.pipeline))
    ))
    elapsed = monotonic() - start
    ops = sum(r[0] for r in lane_results)
    batches = sum(r[1] for r in lane_results)
    return {
        "worker": worker_id,
        "ops": ops,
        "batches": batches,
        "elapsed": elapsed,
        "reads": reads.count,
        "writes": writes.count,
        "read_samples_ms": reads.values,
        "write_samples_ms": writes.values,
    }


def summarize_workers(results: List[Dict[str, Any]],
                      registry: Optional[MetricsRegistry] = None
                      ) -> Dict[str, Any]:
    """Merge per-worker results into the report the benchmarks emit.

    Feeds every retained sample through ``repro.obs`` histograms, so
    the percentile math is the registry's (exact nearest-rank), and the
    same numbers are exportable via ``registry.to_json()``.
    """
    reg = registry if registry is not None else MetricsRegistry()
    h_read = reg.histogram("serve.read_latency_ms")
    h_write = reg.histogram("serve.write_latency_ms")
    for result in results:
        for sample in result["read_samples_ms"]:
            h_read.observe(sample)
        for sample in result["write_samples_ms"]:
            h_write.observe(sample)
    ops = sum(r["ops"] for r in results)
    elapsed = max((r["elapsed"] for r in results), default=0.0)
    c_ops = reg.counter("serve.loadgen_ops")
    c_ops.inc(ops)

    def pct(h, q):
        return round(h.percentile(q), 4) if h.count else None

    return {
        "workers": len(results),
        "ops": ops,
        "reads": sum(r["reads"] for r in results),
        "writes": sum(r["writes"] for r in results),
        "batches": sum(r["batches"] for r in results),
        "elapsed": round(elapsed, 4),
        "ops_per_sec": round(ops / elapsed, 1) if elapsed else 0.0,
        "read_p50_ms": pct(h_read, 50),
        "read_p99_ms": pct(h_read, 99),
        "write_p50_ms": pct(h_write, 50),
        "write_p99_ms": pct(h_write, 99),
    }
