"""Quantitative comparison harness (experiments Q1-Q3 of DESIGN.md).

The paper proves OptP optimal but reports no measurements; this module
turns its comparison criterion -- the number of write delays (Section
3.5) -- into sweeps:

- :func:`compare_on_schedule`: all protocols on one identical message
  schedule (Q1's primitive);
- :func:`sweep`: delays vs. a swept workload axis (process count,
  write fraction, latency spread, zipf skew), averaged over seeds;
- :func:`render_sweep`: fixed-width report of a sweep.

Every sweep uses open-loop schedules + :class:`SeededLatency`, so all
protocols see byte-identical message arrival times and the measured
gaps are attributable to protocol buffering alone.

Sweeps execute through :mod:`repro.sweep`: the grid expands into flat
:class:`~repro.sweep.spec.RunSpec` lists and a
:class:`~repro.sweep.runner.SweepRunner` runs them -- serially by
default, in parallel and/or against the content-addressed result cache
when the caller passes a configured runner (``repro-dsm sweep --jobs N``
does).  Results merge in spec order, so every configuration produces
byte-identical rows (see docs/performance.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.checker import check_run
from repro.analysis.metrics import RunMetrics
from repro.sim import SeededLatency, run_schedule
from repro.sim.latency import LatencyModel
from repro.sweep import LatencySpec, RunSpec, SweepRunner
from repro.workloads.generators import WorkloadConfig, random_schedule
from repro.workloads.ops import Schedule

DEFAULT_PROTOCOLS = ("optp", "anbkh", "ws-receiver", "jimenez-token")


def compare_on_schedule(
    schedule: Schedule,
    n_processes: int,
    *,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    latency: Optional[LatencyModel] = None,
    latency_seed: int = 0,
    verify: bool = True,
) -> List[RunMetrics]:
    """Run every protocol on one schedule; return per-protocol metrics.

    With ``verify=True`` (default) each run is pushed through the full
    checker and a failure raises -- benchmarks measure *verified* runs.
    """
    latency = latency or SeededLatency(latency_seed, dist="exponential", mean=2.0)
    out = []
    for proto in protocols:
        result = run_schedule(proto, n_processes, schedule, latency=latency)
        report = check_run(result) if verify else None
        if report is not None and not report.ok:
            raise AssertionError(
                f"{proto} failed verification: {report.summary()}"
            )
        out.append(RunMetrics.of(result, report))
    return out


@dataclass(frozen=True)
class SweepRow:
    """One (axis value, protocol) cell of a sweep, averaged over seeds."""

    axis: str
    value: float
    protocol: str
    mean_delays: float
    mean_unnecessary: float
    mean_skipped: float
    mean_suppressed: float
    mean_messages: float
    seeds: int


def expand_grid(
    values: Sequence[float],
    *,
    make_config: Callable[[float, int], WorkloadConfig],
    n_for: Callable[[float], int],
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    latency_for: Optional[Callable[[float, int], LatencySpec]] = None,
) -> List[RunSpec]:
    """Flatten a sweep grid into run specs, in the canonical order
    (value-major, then seed, then protocol) every consumer relies on."""
    specs: List[RunSpec] = []
    for value in values:
        n = n_for(value)
        for seed in seeds:
            cfg = make_config(value, seed)
            latency = (
                latency_for(value, seed)
                if latency_for is not None
                else LatencySpec.seeded(seed, dist="exponential", mean=2.0)
            )
            for proto in protocols:
                specs.append(RunSpec(
                    protocol=proto,
                    n_processes=n,
                    config=cfg,
                    latency=latency,
                ))
    return specs


def sweep(
    axis: str,
    values: Sequence[float],
    *,
    make_config: Callable[[float, int], WorkloadConfig],
    n_for: Callable[[float], int],
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    latency_for: Optional[Callable[[float, int], LatencySpec]] = None,
    runner: Optional[SweepRunner] = None,
) -> List[SweepRow]:
    """Generic sweep driver.

    For each axis value and seed, builds a workload via ``make_config``,
    runs every protocol on the identical schedule, and averages the
    metrics per (value, protocol).

    ``latency_for`` returns a declarative
    :class:`~repro.sweep.spec.LatencySpec` (not a live model), so every
    grid point is picklable and cache-addressable.  ``runner`` selects
    execution: None means a fresh serial, uncached
    :class:`~repro.sweep.runner.SweepRunner`; any configured runner
    (``jobs > 1``, a cache, obs) produces byte-identical rows.
    """
    if runner is None:
        runner = SweepRunner()
    specs = expand_grid(
        values, make_config=make_config, n_for=n_for, seeds=seeds,
        protocols=protocols, latency_for=latency_for,
    )
    metrics = runner.run(specs)
    rows: List[SweepRow] = []
    idx = 0
    for value in values:
        per_proto: Dict[str, List[RunMetrics]] = {p: [] for p in protocols}
        for _seed in seeds:
            for proto in protocols:
                per_proto[proto].append(metrics[idx])
                idx += 1
        for proto, ms in per_proto.items():
            k = len(ms)
            rows.append(
                SweepRow(
                    axis=axis,
                    value=value,
                    protocol=proto,
                    mean_delays=sum(m.delays for m in ms) / k,
                    mean_unnecessary=sum(m.unnecessary_delays for m in ms) / k,
                    mean_skipped=sum(m.skipped for m in ms) / k,
                    mean_suppressed=sum(m.suppressed for m in ms) / k,
                    mean_messages=sum(m.messages for m in ms) / k,
                    seeds=k,
                )
            )
    return rows


# -- canonical sweeps ---------------------------------------------------------


def sweep_processes(
    n_values: Sequence[int] = (3, 5, 8, 12),
    *,
    ops_per_process: int = 15,
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    runner: Optional[SweepRunner] = None,
) -> List[SweepRow]:
    """Delays vs. process count (Q1's main axis: false-causality
    opportunities grow with n)."""
    return sweep(
        "n_processes",
        list(n_values),
        make_config=lambda n, seed: WorkloadConfig(
            n_processes=int(n),
            ops_per_process=ops_per_process,
            n_variables=max(2, int(n) // 2),
            write_fraction=0.6,
            seed=seed,
        ),
        n_for=lambda n: int(n),
        seeds=seeds,
        protocols=protocols,
        runner=runner,
    )


def sweep_write_fraction(
    fractions: Sequence[float] = (0.2, 0.5, 0.8, 1.0),
    *,
    n_processes: int = 5,
    ops_per_process: int = 15,
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    runner: Optional[SweepRunner] = None,
) -> List[SweepRow]:
    """Delays vs. write intensity.

    More writes -> more messages in flight -> more reordering exposure,
    but also *fewer read-from edges*, so more pairs of writes are
    concurrent w.r.t. ->co and ANBKH's happened-before over-approximation
    gets worse.
    """
    return sweep(
        "write_fraction",
        list(fractions),
        make_config=lambda f, seed: WorkloadConfig(
            n_processes=n_processes,
            ops_per_process=ops_per_process,
            n_variables=4,
            write_fraction=float(f),
            seed=seed,
        ),
        n_for=lambda f: n_processes,
        seeds=seeds,
        protocols=protocols,
        runner=runner,
    )


def sweep_latency_spread(
    means: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    n_processes: int = 5,
    ops_per_process: int = 15,
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    runner: Optional[SweepRunner] = None,
) -> List[SweepRow]:
    """Delays vs. latency variance (exponential mean).

    Larger spread -> more message reordering -> more delays for every
    protocol, with ANBKH's unnecessary share growing fastest.
    """
    return sweep(
        "latency_mean",
        list(means),
        make_config=lambda m, seed: WorkloadConfig(
            n_processes=n_processes,
            ops_per_process=ops_per_process,
            n_variables=4,
            write_fraction=0.6,
            seed=seed,
        ),
        n_for=lambda m: n_processes,
        seeds=seeds,
        protocols=protocols,
        latency_for=lambda m, seed: LatencySpec.seeded(
            seed, dist="exponential", mean=float(m)
        ),
        runner=runner,
    )


def sweep_zipf(
    skews: Sequence[float] = (0.0, 1.0, 2.0),
    *,
    n_processes: int = 5,
    ops_per_process: int = 15,
    seeds: Sequence[int] = (0, 1, 2),
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    runner: Optional[SweepRunner] = None,
) -> List[SweepRow]:
    """Delays/skips vs. variable-popularity skew (Q3's axis: hot
    variables create same-variable chains that writing semantics can
    overwrite)."""
    return sweep(
        "zipf_s",
        list(skews),
        make_config=lambda s, seed: WorkloadConfig(
            n_processes=n_processes,
            ops_per_process=ops_per_process,
            n_variables=6,
            write_fraction=0.8,
            zipf_s=float(s),
            seed=seed,
        ),
        n_for=lambda s: n_processes,
        seeds=seeds,
        protocols=protocols,
        runner=runner,
    )


def render_sweep(rows: Sequence[SweepRow], *, title: str = "") -> str:
    """Fixed-width report: one line per (axis value, protocol)."""
    lines = []
    if title:
        lines.append(title)
    header = (
        f"{'axis':<16} {'value':>7} {'protocol':<14} {'delays':>8} "
        f"{'unnec':>7} {'skip':>6} {'suppr':>6} {'msgs':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            f"{r.axis:<16} {r.value:>7.2f} {r.protocol:<14} "
            f"{r.mean_delays:>8.2f} {r.mean_unnecessary:>7.2f} "
            f"{r.mean_skipped:>6.1f} {r.mean_suppressed:>6.1f} "
            f"{r.mean_messages:>8.1f}"
        )
    return "\n".join(lines)
