"""Print every regenerated paper artifact: ``python -m repro.paperfigs``.

Pass artifact names to restrict, e.g. ``python -m repro.paperfigs
table2 fig3``; pass ``sweeps`` to also run the (slower) quantitative
comparison sweeps; pass ``--out DIR`` to additionally write each
artifact to ``DIR/<name>.txt``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional

from repro.paperfigs import (
    ARTIFACTS,
    render_sweep,
    sweep_latency_spread,
    sweep_processes,
    sweep_write_fraction,
    sweep_zipf,
)

SEPARATOR = "=" * 72


def _emit(name: str, text: str, out_dir: Optional[Path]) -> None:
    print(SEPARATOR)
    print(text)
    print()
    if out_dir is not None:
        (out_dir / f"{name}.txt").write_text(text + "\n")


def main(argv: list[str]) -> int:
    out_dir: Optional[Path] = None
    if "--out" in argv:
        idx = argv.index("--out")
        try:
            out_dir = Path(argv[idx + 1])
        except IndexError:
            print("--out requires a directory argument")
            return 2
        argv = argv[:idx] + argv[idx + 2:]
        out_dir.mkdir(parents=True, exist_ok=True)
    wanted = argv or list(ARTIFACTS)
    run_sweeps = "sweeps" in wanted
    wanted = [w for w in wanted if w != "sweeps"]
    unknown = [w for w in wanted if w not in ARTIFACTS]
    if unknown:
        print(f"unknown artifacts: {unknown}; known: {list(ARTIFACTS)} + sweeps")
        return 2
    for name in wanted:
        _emit(name, ARTIFACTS[name](), out_dir)
    if run_sweeps:
        for name, title, rows in [
            ("sweep_q1a", "Q1a: delays vs process count", sweep_processes()),
            ("sweep_q1b", "Q1b: delays vs write fraction", sweep_write_fraction()),
            ("sweep_q1c", "Q1c: delays vs latency spread", sweep_latency_spread()),
            ("sweep_q3", "Q3: writing semantics vs variable skew", sweep_zipf()),
        ]:
            _emit(name, render_sweep(rows, title=title), out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
