"""Regenerators for every table and figure of the paper.

Each module exposes ``generate() -> str`` producing the artifact in the
paper's own notation, plus structured accessors for programmatic
checks.  ``python -m repro.paperfigs`` prints them all.

==========  =======================================================
module      paper artifact
==========  =======================================================
table1      Table 1 -- X_co-safe of H1's apply events
table2      Table 2 -- X_ANBKH of the Fig. 3 run (+ excess rows)
fig1        Figure 1 -- two sequences at p3 (0 vs 1 delay)
fig2        Figure 2 -- a non-necessary delay by a safe protocol
fig3        Figure 3 -- ANBKH false causality vs OptP, same schedule
fig6        Figure 6 -- OptP run with Write_co evolution
fig7        Figure 7 -- write causality graph of H1
comparison  Q1-Q3 -- quantitative delay sweeps (no paper counterpart)
==========  =======================================================
"""

from repro.paperfigs import fig1, fig2, fig3, fig6, fig7, spacetime, table1, table2
from repro.paperfigs.comparison import (
    DEFAULT_PROTOCOLS,
    SweepRow,
    compare_on_schedule,
    expand_grid,
    render_sweep,
    sweep,
    sweep_latency_spread,
    sweep_processes,
    sweep_write_fraction,
    sweep_zipf,
)

#: generate() callables for every paper artifact, in paper order.
ARTIFACTS = {
    "table1": table1.generate,
    "table2": table2.generate,
    "fig1": fig1.generate,
    "fig2": fig2.generate,
    "fig3": fig3.generate,
    "fig6": fig6.generate,
    "fig7": fig7.generate,
    "spacetime": spacetime.generate,
}

__all__ = [
    "ARTIFACTS",
    "DEFAULT_PROTOCOLS",
    "SweepRow",
    "compare_on_schedule",
    "expand_grid",
    "fig1",
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "render_sweep",
    "sweep",
    "sweep_latency_spread",
    "sweep_processes",
    "sweep_write_fraction",
    "sweep_zipf",
    "table1",
    "table2",
]
