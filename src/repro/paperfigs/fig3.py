"""Figure 3: the ANBKH run exhibiting false causality, side by side
with the OptP run of the same scenario.

The scenario: p1 writes a then c; p2 applies both but *reads only a*
before writing b (so ``b ||co c``); c's message reaches p3 after b's.
ANBKH delays b at p3 until c (``send(c) -> send(b)`` happened-before,
footnote 7's false causality); OptP applies b on arrival.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis import check_run
from repro.paperfigs.render import sequence_at
from repro.sim import RunResult, run_schedule
from repro.workloads.patterns import fig3 as fig3_scenario


def runs() -> Tuple[RunResult, RunResult]:
    scen = fig3_scenario()
    r_anbkh = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
    r_optp = run_schedule("optp", 3, scen.schedule, latency=scen.latency)
    return r_anbkh, r_optp


def generate() -> str:
    r_anbkh, r_optp = runs()
    rep_a, rep_o = check_run(r_anbkh), check_run(r_optp)
    lines = [
        "Figure 3. A run of ANBKH compliant with H1 (false causality).",
        "",
        "ANBKH at p3:",
        "  " + sequence_at(r_anbkh.trace, r_anbkh.history, 2),
        f"  delays: {rep_a.total_delays} "
        f"(unnecessary: {len(rep_a.unnecessary_delays)})",
        "",
        "The same message schedule under OptP at p3:",
        "  " + sequence_at(r_optp.trace, r_optp.history, 2),
        f"  delays: {rep_o.total_delays} "
        f"(unnecessary: {len(rep_o.unnecessary_delays)})",
        "",
        "ANBKH delays w2(x2)b until apply_3(w1(x1)c) although "
        "w2(x2)b ||co w1(x1)c: send_1(w1(x1)c) -> send_2(w2(x2)b) in the "
        "run, but no cause-effect relation exists w.r.t. ->co.",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
