"""Table 2: :math:`\\mathcal{X}_{ANBKH}` of the Figure 3 run's events.

Runs ANBKH on the Figure 3 scenario (the scripted arrival order of
Section 3.6), computes the enabling sets from the run's happened-before
relation, and renders the paper's Table 2 -- including the six rows
(``b`` and ``d`` at each process) where ANBKH strictly exceeds the safe
minimum, proving non-optimality.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.enabling import (
    EnablingRow,
    enabling_table,
    render_table,
    superset_rows,
)
from repro.model.operations import WriteId
from repro.sim import RunResult, run_schedule
from repro.workloads.patterns import fig3


def run() -> RunResult:
    """The ANBKH run of Figure 3."""
    scen = fig3()
    return run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)


def rows(result: RunResult = None) -> List[EnablingRow]:
    if result is None:
        result = run()
    return enabling_table(result.history, trace=result.trace, family="anbkh")


def as_dict(result: RunResult = None) -> Dict[Tuple[int, WriteId], FrozenSet[WriteId]]:
    return {(r.process, r.wid): r.enabling for r in rows(result)}


def generate() -> str:
    result = run()
    table = render_table(
        rows(result),
        result.history,
        title="Table 2. X_ANBKH of Fig. 3 run's events",
    )
    witnesses = superset_rows(result.history, result.trace)
    lines = [table, "", f"rows where X_ANBKH ⊃ X_co-safe: {len(witnesses)}"]
    for row, excess in witnesses:
        from repro.paperfigs.render import paper_write_label

        extra = ", ".join(
            paper_write_label(result.history, w) for w in sorted(excess)
        )
        lines.append(
            f"  apply_{row.process + 1}"
            f"({paper_write_label(result.history, row.wid)}) "
            f"needlessly waits for: {extra}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
