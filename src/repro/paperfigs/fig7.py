"""Figure 7: the write causality graph of :math:`\\hat H_1`.

Vertices are H1's four writes; edges are the immediate ``->co^0``
steps: a -> c, a -> b, b -> d (c is concurrent with both b and d).
"""

from __future__ import annotations

from repro.model.causality_graph import WriteCausalityGraph
from repro.model.history import example_h1
from repro.paperfigs.render import paper_write_label


def graph() -> WriteCausalityGraph:
    return WriteCausalityGraph.from_history(example_h1())


def generate() -> str:
    g = graph()
    g.validate()
    h = g.history
    lines = ["Figure 7. Causality graph of H1.", ""]
    lines.append(g.to_ascii())
    lines.append("")
    lines.append("edges (w ->co^0 w'):")
    for a, b in g.edge_list():
        lines.append(
            f"  {paper_write_label(h, a)} -> {paper_write_label(h, b)}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
