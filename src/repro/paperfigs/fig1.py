"""Figure 1: two sequences at p3 compliant with :math:`\\hat H_1`.

Run (1): messages reach p3 in causal order -- zero write delays.
Run (2): b overtakes a -- applying b waits for a: one (necessary)
write delay.  Both runs use OptP (any safe protocol *must* delay run
(2)'s b; an optimal one delays nothing else).
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis import check_run
from repro.paperfigs.render import sequence_at
from repro.sim import RunResult, run_schedule
from repro.workloads.patterns import fig1_run1, fig1_run2


def runs() -> Tuple[RunResult, RunResult]:
    s1, s2 = fig1_run1(), fig1_run2()
    r1 = run_schedule("optp", 3, s1.schedule, latency=s1.latency)
    r2 = run_schedule("optp", 3, s2.schedule, latency=s2.latency)
    return r1, r2


def generate() -> str:
    r1, r2 = runs()
    rep1, rep2 = check_run(r1), check_run(r2)
    lines = [
        "Figure 1. Two sequences that could occur at process p3 "
        "compliant with H1 (OptP runs).",
        "",
        "(1) " + sequence_at(r1.trace, r1.history, 2),
        f"    write delays at p3: {len(r1.trace.delayed(2))} "
        f"(total: {rep1.total_delays}, unnecessary: "
        f"{len(rep1.unnecessary_delays)})",
        "",
        "(2) " + sequence_at(r2.trace, r2.history, 2),
        f"    write delays at p3: {len(r2.trace.delayed(2))} "
        f"(total: {rep2.total_delays}, unnecessary: "
        f"{len(rep2.unnecessary_delays)})",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
