"""Rendering helpers shared by the table/figure generators.

The paper uses 1-based process names (p1..p3) and labels writes
``w1(x1)a``; this module converts our 0-based traces into that
notation so the regenerated artifacts read like the paper's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.model.history import History
from repro.model.operations import BOTTOM, WriteId
from repro.sim.trace import EventKind, Trace, TraceEvent


def paper_write_label(history: History, wid: WriteId) -> str:
    """``w1(x1)a``-style label for a write (1-based process index)."""
    w = history.write_by_id(wid)
    return f"w{w.process + 1}({w.variable}){w.value}"


def paper_event_label(history: History, ev: TraceEvent) -> Optional[str]:
    """The paper's notation for one trace event at process ``k``
    (1-based): ``receipt_3(w1(x1)a)``, ``apply_3(...)``,
    ``return_3(x2, b)``; bookkeeping events render as annotations."""
    k = ev.process + 1
    if ev.kind in (EventKind.APPLY, EventKind.WRITE):
        return f"apply_{k}({paper_write_label(history, ev.wid)})"
    if ev.kind is EventKind.RECEIPT:
        return f"receipt_{k}({paper_write_label(history, ev.wid)})"
    if ev.kind is EventKind.SEND:
        return f"send_{k}({paper_write_label(history, ev.wid)})"
    if ev.kind is EventKind.RETURN:
        value = "⊥" if isinstance(ev.value, type(BOTTOM)) else ev.value
        return f"return_{k}({ev.variable}, {value})"
    if ev.kind is EventKind.BUFFER:
        return f"[{paper_write_label(history, ev.wid)} BUFFERED at p{k}]"
    if ev.kind is EventKind.DISCARD:
        return f"[{paper_write_label(history, ev.wid)} DISCARDED at p{k}]"
    return None


def sequence_at(
    trace: Trace,
    history: History,
    process: int,
    *,
    skip_sends: bool = True,
) -> str:
    """The event sequence ``E_k`` in paper notation, joined by ``<_k``
    (how Figures 1 and 2 print runs)."""
    parts: List[str] = []
    for ev in trace.process_events(process):
        if skip_sends and ev.kind is EventKind.SEND:
            continue
        label = paper_event_label(history, ev)
        if label is not None:
            parts.append(label)
    return f" <_{process + 1} ".join(parts)


def vector_str(vec) -> str:
    return "[" + ",".join(str(v) for v in vec) + "]"
