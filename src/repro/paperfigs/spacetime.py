"""ASCII space-time diagrams of runs (the drawings of Figures 3 and 6).

The paper's figures show process timelines with message arrivals; this
renderer produces the textual equivalent: one row per process, one
column per traced event (in global order), so the arrival interleavings
that define each scenario are visible at a glance::

    t        0.00  0.50  1.00  1.00  ...
    p1       w:a   w:c   .     .
    p2       .     .     rc:a  ap:a
    p3       .     .     .     .

Glyphs: ``w`` local write (its local apply), ``ap`` apply, ``rc``
receipt, ``rd`` read-return, ``BF`` buffered (a write delay!), ``DS``
discarded.  Labels use the write's value (or the variable for reads),
which is unique in the canonical scenarios.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.model.history import History
from repro.model.operations import BOTTOM, Bottom
from repro.sim.trace import EventKind, Trace, TraceEvent

_GLYPH = {
    EventKind.WRITE: "w",
    EventKind.APPLY: "ap",
    EventKind.RECEIPT: "rc",
    EventKind.RETURN: "rd",
    EventKind.BUFFER: "BF",
    EventKind.DISCARD: "DS",
}

#: Kinds shown by default (SEND is redundant with WRITE).
DEFAULT_KINDS: Set[EventKind] = {
    EventKind.WRITE,
    EventKind.APPLY,
    EventKind.RECEIPT,
    EventKind.RETURN,
    EventKind.BUFFER,
    EventKind.DISCARD,
}


def _cell(ev: TraceEvent, history: Optional[History]) -> str:
    glyph = _GLYPH[ev.kind]
    if ev.kind is EventKind.RETURN:
        val = "⊥" if isinstance(ev.value, Bottom) else ev.value
        return f"{glyph}:{val}"
    if ev.wid is not None and history is not None and history.has_write(ev.wid):
        w = history.write_by_id(ev.wid)
        return f"{glyph}:{w.value}"
    if ev.wid is not None:
        return f"{glyph}:{ev.wid.process}#{ev.wid.seq}"
    return glyph


def render_spacetime(
    trace: Trace,
    history: Optional[History] = None,
    *,
    kinds: Optional[Set[EventKind]] = None,
    max_events: int = 200,
) -> str:
    """Render the run as an ASCII space-time grid.

    One column per event keeps every interleaving unambiguous; runs
    longer than ``max_events`` are truncated with a marker (diagrams of
    huge runs are unreadable anyway -- use the metrics instead).
    """
    kinds = kinds or DEFAULT_KINDS
    events = [ev for ev in trace.events if ev.kind in kinds]
    truncated = len(events) > max_events
    events = events[:max_events]
    if not events:
        return "(empty trace)"

    cells: List[List[str]] = [[] for _ in range(trace.n_processes)]
    times: List[str] = []
    for ev in events:
        times.append(f"{ev.time:.2f}")
        for p in range(trace.n_processes):
            cells[p].append(_cell(ev, history) if p == ev.process else ".")

    widths = [
        max(
            len(times[i]),
            max(len(cells[p][i]) for p in range(trace.n_processes)),
        )
        for i in range(len(events))
    ]
    header_label = "t"
    row_labels = [f"p{p + 1}" for p in range(trace.n_processes)]
    label_w = max(len(header_label), *(len(l) for l in row_labels))

    def fmt_row(label: str, row: Iterable[str]) -> str:
        body = "  ".join(c.ljust(w) for c, w in zip(row, widths))
        return f"{label.ljust(label_w)}  {body}".rstrip()

    lines = [fmt_row(header_label, times)]
    for p, label in enumerate(row_labels):
        lines.append(fmt_row(label, cells[p]))
    if truncated:
        lines.append(f"... truncated at {max_events} events")
    lines.append("")
    lines.append(
        "legend: w=local write, ap=apply, rc=receipt, rd=read-return, "
        "BF=buffered (write delay), DS=discarded"
    )
    return "\n".join(lines)


def generate() -> str:
    """Space-time diagrams of the Figure 3 runs (ANBKH vs OptP)."""
    from repro.paperfigs.fig3 import runs

    r_anbkh, r_optp = runs()
    return "\n\n".join(
        [
            "Figure 3 as a space-time diagram -- ANBKH "
            "(note BF:b at p3 until ap:c):",
            render_spacetime(r_anbkh.trace, r_anbkh.history),
            "Same message schedule under OptP (no buffering of b):",
            render_spacetime(r_optp.trace, r_optp.history),
        ]
    )


if __name__ == "__main__":  # pragma: no cover
    print(generate())
