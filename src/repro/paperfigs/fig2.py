"""Figure 2: a run where a safe-but-not-optimal protocol executes a
*non-necessary* write delay.

The paper's Section 3.5 supposes a protocol P with
``X_P(apply_3(w2(x2)b)) = {apply_3(w1(x1)a), apply_3(w1(x1)c)}`` --
exactly ANBKH's enabling set on the Figure 3 run.  We therefore realize
Figure 2 with ANBKH under that arrival pattern and annotate the delay
the audit proves unnecessary.
"""

from __future__ import annotations

from repro.analysis import check_run
from repro.paperfigs.render import paper_write_label, sequence_at
from repro.sim import RunResult, run_schedule
from repro.workloads.patterns import fig3


def run() -> RunResult:
    scen = fig3()
    return run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)


def generate() -> str:
    r = run()
    report = check_run(r)
    lines = [
        "Figure 2. A sequence that could occur at process p3 compliant "
        "with H1, produced by a safe but non-optimal protocol "
        "(ANBKH realizes the X_P of Section 3.5):",
        "",
        sequence_at(r.trace, r.history, 2),
        "",
        f"write delays executed at p3: {len(r.trace.delayed(2))}",
    ]
    for audit in report.unnecessary_delays:
        lines.append(
            f"NON-NECESSARY delay: apply_{audit.process + 1}"
            f"({paper_write_label(r.history, audit.wid)}) was postponed "
            "although every write in its ->co causal past was already "
            "applied (an optimal and safe protocol would not delay it)."
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
