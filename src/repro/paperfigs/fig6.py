"""Figure 6: a run of OptP compliant with :math:`\\hat H_1`, with the
evolution of the ``Write_co``-related local data structures.

The run (scripted arrivals): b reaches p3 before a (so applying b waits
for a -- a necessary delay), while c arrives only much later and is
*not* waited for, because ``p2`` never read c and so
``w2(x2)b.Write_co = [1,1,0]`` carries no trace of it.
"""

from __future__ import annotations

from typing import List

from repro.analysis import check_run
from repro.paperfigs.render import paper_event_label, vector_str
from repro.sim import RunResult, run_schedule
from repro.sim.trace import EventKind
from repro.workloads.patterns import fig6 as fig6_scenario


def run() -> RunResult:
    scen = fig6_scenario()
    return run_schedule(
        "optp", 3, scen.schedule, latency=scen.latency, record_state=True
    )


def generate() -> str:
    r = run()
    report = check_run(r)
    assert report.ok and not report.unnecessary_delays
    lines: List[str] = [
        "Figure 6. A run of OptP compliant with H1 "
        "(local data-structure evolution).",
        "",
    ]
    shown_kinds = {
        EventKind.WRITE,
        EventKind.APPLY,
        EventKind.RETURN,
        EventKind.RECEIPT,
        EventKind.BUFFER,
    }
    for ev in r.trace.events:
        if ev.kind not in shown_kinds:
            continue
        label = paper_event_label(r.history, ev)
        line = f"t={ev.time:5.2f}  {label}"
        if ev.state:
            line += (
                f"   Write_co={vector_str(ev.state['write_co'])}"
                f" Apply={vector_str(ev.state['apply'])}"
            )
        lines.append(line)
    lines += [
        "",
        f"write delays: {report.total_delays} "
        f"(all necessary: {not report.unnecessary_delays})",
        "note: apply_3(w2(x2)b) happens before apply_3(w1(x1)c) -- "
        "p3 applies b without waiting for the concurrent c.",
    ]
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(generate())
