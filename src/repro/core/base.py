"""The protocol class 𝒫 of the paper (Section 3.2), as a Python ABC.

Every protocol ``P ∈ 𝒫`` reacts to three stimuli:

- a local **write** ``w_i(x)v``: applied locally, and propagated to the
  other processes (the ``send`` event) so that each ``p_k`` eventually
  produces ``apply_k(w)``;
- a local **read** ``r_i(x)``: wait-free, returns the locally visible
  value (the ``return`` event);
- a **receipt** of an update message: the protocol classifies it as
  immediately applicable, to be buffered (a *write delay*,
  Definition 3), or -- for the writing-semantics variants, which leave
  𝒫 -- to be discarded as overwritten.

The hosting substrate (:mod:`repro.sim` or :mod:`repro.runtime`) owns
the pending buffer, re-examines buffered messages when applies land
(via the dependency-indexed wakeup scheduler of
:mod:`repro.sim.scheduler`, or a legacy full re-scan for protocols
that cannot enumerate their wait predicate -- see
:meth:`Protocol.missing_deps`), and records the trace events (`send`,
`receipt`, `apply`, `return`, plus `buffer`/`discard`/`suppress`
bookkeeping events) that the analyzers consume.

Protocols that need non-write-triggered communication (the token of the
Jimenez et al. variant) emit :class:`ControlMessage` values, which the
substrate routes to :meth:`Protocol.on_control` immediately on receipt,
bypassing the buffer.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.model.operations import BOTTOM, WriteId

#: Destination sentinel: deliver to every other process.
BROADCAST = -1


@dataclass(frozen=True)
class UpdateMessage:
    """Propagation of one write operation (the paper's ``m(x_h, v, ...)``).

    ``payload`` carries the protocol-specific control data -- e.g. OptP
    piggybacks the write's ``Write_co`` vector (Figure 4, line 2),
    ANBKH a Fidge-Mattern vector.  Payload values must be immutable
    (tuples, not lists): messages are shared between the sender's trace
    and every receiver.
    """

    sender: int
    wid: WriteId
    variable: Hashable
    value: Any
    payload: Mapping[str, Any] = field(default_factory=dict)
    #: Writer-precomputed flat requirement row (``core.flatstate``),
    #: or None when the writer runs scalar.  Deliberately *outside*
    #: ``payload`` (and excluded from comparison/repr): it is derived
    #: metadata over the same numbers the payload already carries, so
    #: wire-size estimates, message fingerprints, and payload
    #: immutability scans are unaffected.
    flat_deps: Any = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"m({self.variable}={self.value!r} from {self.wid})"


@dataclass(frozen=True)
class ControlMessage:
    """Non-update protocol traffic (e.g. the Jimenez token)."""

    sender: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"ctrl({self.kind} from p{self.sender})"


Message = Union[UpdateMessage, ControlMessage]


@dataclass(frozen=True)
class Outgoing:
    """A message and its destination (``BROADCAST`` or a process id)."""

    message: Message
    dest: int = BROADCAST


class Disposition(enum.Enum):
    """Receiver-side classification of an update message."""

    #: All enabling events have occurred: apply now.
    APPLY = "apply"
    #: Some enabling event is missing: buffer (this is a write delay).
    BUFFER = "buffer"
    #: Writing semantics: the write is overwritten; never apply it.
    DISCARD = "discard"


@dataclass(frozen=True)
class WriteOutcome:
    """Result of a local write: its identity and the traffic it generates.

    ``local_apply`` is True for the paper's class-𝒫 protocols (the
    write procedure applies to the local copy immediately, Figure 4
    line 3).  Protocols that defer their own apply to an ordering
    mechanism (e.g. the totally-ordered sequencer baseline waits for
    its stamped copy to come back) set it False; the substrate then
    records the local apply when the protocol reports it via
    :meth:`Protocol.record_apply`.
    """

    wid: WriteId
    outgoing: Tuple[Outgoing, ...] = ()
    local_apply: bool = True


@dataclass(frozen=True)
class ReadOutcome:
    """Result of a local read: the value and the write it came from.

    ``read_from is None`` means the location still held ``BOTTOM``.
    """

    value: Any
    read_from: Optional[WriteId]


class Protocol(abc.ABC):
    """Abstract base for every protocol in (or compared against) 𝒫.

    Subclasses implement the five hooks below.  A protocol instance is
    owned by exactly one process and must never be shared.

    Attributes
    ----------
    process_id:
        0-based id of the owning process ``p_i``.
    n_processes:
        Total process count ``n``.
    """

    #: Short human-readable protocol name (used in reports and benches).
    name: ClassVar[str] = "abstract"

    #: Whether the protocol guarantees every write is applied at every
    #: process (i.e. belongs to class 𝒫).  The writing-semantics
    #: variants set this False -- the liveness checker then accounts
    #: for discarded/suppressed writes instead of failing.
    in_class_p: ClassVar[bool] = True

    #: When set, the substrate fires :meth:`on_timer` every
    #: ``timer_interval`` simulated time units (anti-entropy rounds,
    #: retransmission, ...).  ``None`` = no timer.
    timer_interval: ClassVar[Optional[float]] = None

    def __init__(self, process_id: int, n_processes: int):
        if not 0 <= process_id < n_processes:
            raise ValueError(
                f"process_id {process_id} out of range [0, {n_processes})"
            )
        self.process_id = process_id
        self.n_processes = n_processes
        self._store: Dict[Hashable, Tuple[Any, Optional[WriteId]]] = {}
        self._write_seq = 0
        self._apply_recorder: Optional[Any] = None

    # -- local replica ------------------------------------------------------

    def store_get(self, variable: Hashable) -> Tuple[Any, Optional[WriteId]]:
        """Current locally visible ``(value, writer)`` for ``variable``.

        Returns ``(BOTTOM, None)`` for never-written locations.
        """
        return self._store.get(variable, (BOTTOM, None))

    def store_put(self, variable: Hashable, value: Any, wid: WriteId) -> None:
        """Overwrite the local replica of ``variable``."""
        self._store[variable] = (value, wid)

    def store_snapshot(self) -> Dict[Hashable, Tuple[Any, Optional[WriteId]]]:
        """A copy of the whole local replica (for final-state checks)."""
        return dict(self._store)

    def next_wid(self) -> WriteId:
        """Allocate the next :class:`WriteId` for a local write."""
        self._write_seq += 1
        return WriteId(self.process_id, self._write_seq)

    @property
    def writes_issued(self) -> int:
        return self._write_seq

    # -- protocol hooks ------------------------------------------------------

    @abc.abstractmethod
    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        """Perform a local write; return its id and outgoing messages."""

    @abc.abstractmethod
    def read(self, variable: Hashable) -> ReadOutcome:
        """Perform a wait-free local read."""

    @abc.abstractmethod
    def classify(self, msg: UpdateMessage) -> Disposition:
        """Decide the fate of a (newly arrived or buffered) update.

        Must be side-effect free: the substrate calls it repeatedly on
        buffered messages.
        """

    @abc.abstractmethod
    def apply_update(self, msg: UpdateMessage) -> None:
        """Apply an update previously classified ``APPLY``."""

    def discard_update(self, msg: UpdateMessage) -> None:
        """Account for an update classified ``DISCARD`` (WS variants)."""
        raise NotImplementedError(
            f"{type(self).__name__} never discards updates"
        )

    def on_control(self, msg: ControlMessage) -> Sequence[Outgoing]:
        """Handle a control message; return follow-up traffic."""
        raise NotImplementedError(
            f"{type(self).__name__} does not use control messages"
        )

    def bootstrap(self) -> Sequence[Outgoing]:
        """Traffic to emit at start-up (e.g. injecting the first token).

        Called once per process by the substrate before any operation
        runs.  Default: nothing.
        """
        return ()

    def on_timer(self) -> Sequence[Outgoing]:
        """Periodic hook (every :attr:`timer_interval`); returns traffic.

        Only called when :attr:`timer_interval` is set.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares no timer_interval"
        )

    # -- substrate callbacks ----------------------------------------------------

    def bind_recorder(self, recorder: Any) -> None:
        """Install the substrate's apply recorder.

        Most protocols never need it: the substrate records the apply
        event itself when :meth:`apply_update` returns.  Protocols that
        apply writes outside the update-message flow (e.g. the batched
        applies of the token protocol, delivered via control messages)
        call :meth:`record_apply` for each write so the trace stays
        complete.
        """
        self._apply_recorder = recorder

    def record_apply(self, wid: WriteId, variable: Hashable, value: Any) -> None:
        """Report an out-of-band apply event to the substrate's trace."""
        if self._apply_recorder is not None:
            self._apply_recorder(wid, variable, value)

    # -- delivery scheduling ---------------------------------------------------

    def missing_deps(
        self, msg: UpdateMessage
    ) -> Optional[List[Tuple[int, int]]]:
        """Enumerate the apply events still missing before ``msg`` applies.

        Contract (see :mod:`repro.sim.scheduler` and DESIGN.md,
        "Buffering strategy"):

        - Return ``None`` when the protocol cannot enumerate its wait
          predicate (the substrate then falls back to the legacy
          re-scan of the whole pending buffer).
        - Otherwise return the list of *currently unsatisfied* keys
          ``(process, seq)`` such that ``classify(msg)`` can only turn
          ``APPLY`` once every listed apply event has occurred locally.
          Each key must match a future :meth:`apply_event` value -- an
          event that has not yet fired here and fires at most once.
        - An empty list together with ``classify(msg) is BUFFER`` means
          the message is permanently undeliverable (e.g. a duplicate of
          an already-applied write): the substrate parks it forever,
          mirroring the legacy path's wedged-buffer behaviour.

        Must be side-effect free, like :meth:`classify`.
        """
        return None

    def apply_event(self, msg: UpdateMessage) -> Tuple[int, int]:
        """The wakeup key satisfied by applying ``msg`` (see
        :meth:`missing_deps`).  Called by the substrate right after
        :meth:`apply_update` returns.  The default -- the writer and
        its per-writer sequence number -- fits protocols whose wait
        predicates count per-writer applies (OptP, ANBKH); protocols
        keyed differently (the sequencer's global stamp order) override
        it.  Only consulted when :meth:`missing_deps` is implemented.
        """
        return (msg.sender, msg.wid.seq)

    # -- durability ------------------------------------------------------------

    #: Class-level opt-in to crash durability (:mod:`repro.durability`).
    #: A protocol that sets this True must implement
    #: :meth:`snapshot_state` / :meth:`restore_state` as exact inverses
    #: over the codec value vocabulary (:mod:`repro.serve.codec`), on
    #: both the scalar and the flat state backend.  Only
    #: snapshot-capable protocols can be crash-checked or served with a
    #: write-ahead log.
    supports_snapshot: ClassVar[bool] = False

    def snapshot_state(self) -> Dict[str, Any]:
        """The protocol's complete durable state as a codec-encodable
        document.  Must capture everything :meth:`restore_state` needs
        to make a fresh instance behaviorally identical: the store, the
        write counter, and all control vectors.  Values must be
        snapshots, not live references."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshots"
        )

    def restore_state(self, doc: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot_state` on a freshly constructed
        instance.  Must mutate existing vectors in place (the flat
        backend's :class:`~repro.core.flatstate.FlatProgress` wraps the
        protocol's own list) and mark flat mirrors dirty."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support snapshots"
        )

    # -- flat-state backend ----------------------------------------------------

    #: Class-level opt-in to the struct-of-arrays backend
    #: (:mod:`repro.core.flatstate`).  A protocol that sets this True
    #: must implement :meth:`enable_flat_state`, :meth:`flat_progress`,
    #: and :meth:`flat_deps` so the flat delivery scheduler can run its
    #: counting/vectorized activation predicate; the substrate resolves
    #: ``state_backend="auto"`` to flat iff this is set.
    supports_flat_state: ClassVar[bool] = False

    def enable_flat_state(self) -> None:
        """Switch this instance to flat bookkeeping.

        Called once by the substrate before any operation runs.  Flat
        protocols start attaching precomputed requirement rows
        (:class:`~repro.core.flatstate.FlatDeps`) to outgoing updates
        and routing progress bumps through :meth:`flat_progress`'s
        view.  Observable behaviour must not change: flat and scalar
        runs are byte-identical by contract.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the flat backend"
        )

    def flat_progress(self):
        """The node's live progress vector
        (:class:`~repro.core.flatstate.FlatProgress`) -- a view over
        the protocol's own apply-count list.  Only called after
        :meth:`enable_flat_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support the flat backend"
        )

    def flat_deps(self, msg: UpdateMessage):
        """The message's requirement row
        (:class:`~repro.core.flatstate.FlatDeps`).

        Receiver-side fallback for messages whose writer did not attach
        one (``msg.flat_deps is None``) -- e.g. the partial-replication
        protocol, whose requirement row is receiver-specific.  Must be
        side-effect free; called at most once per message per receiver
        (the scheduler caches the result)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support the flat backend"
        )

    def flat_dep_key(self, component: int, required: int) -> Tuple[int, int]:
        """Map an unsatisfied flat requirement to the
        :meth:`apply_event` key whose firing satisfies it.  The default
        matches protocols whose progress components count per-writer
        applies in wid order (OptP, ANBKH, partial); the sequencer's
        one-dimensional stamp overrides it."""
        return (component, required)

    # -- introspection --------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        """Protocol-internal state for tracing/diagnostics (e.g. the
        ``Write_co`` evolution shown in Figure 6).  Values must be
        snapshots, not live references."""
        return {}

    def stats(self) -> Dict[str, int]:
        """Protocol-specific counters (suppressed writes, discards, ...)."""
        return {}

    def missing_applies(self) -> int:
        """Apply events this process is responsible for *never* producing.

        Class-𝒫 protocols return 0 (every write is applied everywhere,
        Theorem 5).  Writing-semantics variants report how many applies
        they legitimately skipped: the receiver-side variant counts the
        writes it overwrote locally; the token variant counts
        ``suppressed * (n - 1)`` at the sender, since a suppressed write
        is never propagated to the other ``n - 1`` processes.  The
        simulation substrate uses the sum of these to know when a run
        has quiesced.
        """
        return 0
