"""Vector-clock values and relations (paper, Section 4.3).

The paper defines, for two vectors ``V`` and ``V'`` of equal length:

- ``V <= V'``  iff every component of ``V`` is ``<=`` the corresponding
  component of ``V'``;
- ``V <  V'``  iff ``V <= V'`` and some component is strictly smaller;
- ``V || V'``  iff neither ``V < V'`` nor ``V' < V``.

Theorem 1 shows the system ``(Write_co, <)`` *characterizes* the causal
order ``->co`` on writes: ``w ->co w'  <=>  w.Write_co < w'.Write_co``,
and Theorem 2 the same for concurrency.

Two representations are provided:

- **plain-list helpers** (:func:`vc_le`, :func:`vc_lt`, :func:`vc_join`,
  :func:`vc_concurrent`) used on the protocol hot path.  Protocol
  vectors have length ``n`` (process count, typically < 64) where plain
  Python lists beat numpy's per-call dispatch overhead -- measured in
  ``benchmarks/test_bench_micro.py``;
- an immutable :class:`VectorClock` wrapper with operator sugar for
  tests, examples and documentation;
- **numpy batch comparators** (:func:`batch_precedes_matrix`,
  :func:`batch_concurrent_matrix`) used by the trace analyzers, which
  compare *thousands* of write vectors pairwise at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Plain-list hot-path helpers
# ---------------------------------------------------------------------------


def vc_le(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a <= b``: componentwise less-or-equal.

    Vectors must have equal length (checked, since a silent zip-
    truncation would corrupt protocol decisions).
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b))


def vc_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a < b``: ``a <= b`` and ``a != b`` (strict domination)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strict = True
    return strict


def vc_concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """``a || b``: neither strictly dominates the other."""
    return not vc_lt(a, b) and not vc_lt(b, a)


def vc_join(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Componentwise maximum (the lattice join used at read time,
    line 1 of the read procedure in Figure 5)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return [x if x >= y else y for x, y in zip(a, b)]


def vc_join_inplace(a: List[int], b: Sequence[int]) -> None:
    """In-place componentwise maximum of ``a`` with ``b``."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    for i, y in enumerate(b):
        if y > a[i]:
            a[i] = y


# ---------------------------------------------------------------------------
# Immutable wrapper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VectorClock:
    """An immutable vector-clock value with the paper's relations.

    ``<`` / ``<=`` implement the (partial!) domination order of Section
    4.3 -- note that ``not (a < b)`` does **not** imply ``b <= a``; use
    :meth:`concurrent` to test incomparability.
    """

    components: Tuple[int, ...]

    def __post_init__(self) -> None:
        if any(c < 0 for c in self.components):
            raise ValueError(f"negative component in {self.components}")

    @classmethod
    def zero(cls, n: int) -> "VectorClock":
        """The all-zeros clock of dimension ``n``."""
        if n < 1:
            raise ValueError("dimension must be >= 1")
        return cls(components=(0,) * n)

    @classmethod
    def of(cls, *components: int) -> "VectorClock":
        return cls(components=tuple(components))

    @property
    def n(self) -> int:
        return len(self.components)

    def __getitem__(self, i: int) -> int:
        return self.components[i]

    def __len__(self) -> int:
        return len(self.components)

    def __iter__(self):
        return iter(self.components)

    # -- relations --------------------------------------------------------

    def __le__(self, other: "VectorClock") -> bool:
        return vc_le(self.components, other.components)

    def __lt__(self, other: "VectorClock") -> bool:
        return vc_lt(self.components, other.components)

    def __ge__(self, other: "VectorClock") -> bool:
        return vc_le(other.components, self.components)

    def __gt__(self, other: "VectorClock") -> bool:
        return vc_lt(other.components, self.components)

    def concurrent(self, other: "VectorClock") -> bool:
        """``self || other`` (incomparable under ``<``)."""
        return vc_concurrent(self.components, other.components)

    # -- operations ---------------------------------------------------------

    def join(self, other: "VectorClock") -> "VectorClock":
        return VectorClock(tuple(vc_join(self.components, other.components)))

    def increment(self, i: int) -> "VectorClock":
        """Return a copy with component ``i`` incremented by one."""
        if not 0 <= i < len(self.components):
            raise IndexError(i)
        comps = list(self.components)
        comps[i] += 1
        return VectorClock(tuple(comps))

    def __str__(self) -> str:
        return "[" + ",".join(str(c) for c in self.components) + "]"


# ---------------------------------------------------------------------------
# numpy batch comparators (trace-analysis scale)
# ---------------------------------------------------------------------------


def _as_matrix(vectors: Iterable[Sequence[int]]) -> np.ndarray:
    mat = np.asarray(list(vectors), dtype=np.int64)
    if mat.ndim == 1:
        # zero vectors -> shape (0,); normalize to (0, 0)
        mat = mat.reshape(0, 0)
    if mat.ndim != 2:
        raise ValueError(f"expected a 2-D batch of vectors, got shape {mat.shape}")
    return mat


#: Row-block size picked automatically by :func:`batch_precedes_matrix`
#: for batches large enough that the full (k, k, n) broadcast would
#: allocate gigabytes (k > _AUTO_CHUNK_THRESHOLD).
_AUTO_CHUNK_THRESHOLD = 8192
_DEFAULT_CHUNK = 1024


def batch_precedes_matrix(
    vectors: Iterable[Sequence[int]],
    *,
    chunk: Optional[int] = None,
) -> np.ndarray:
    """Pairwise strict-domination matrix for a batch of k vectors.

    Returns a boolean ``(k, k)`` array ``P`` with ``P[i, j]`` true iff
    ``vectors[i] < vectors[j]``.  By Theorem 1 this *is* the ``->co``
    adjacency (closed under transitivity) of the corresponding writes.

    Vectorized: the broadcast comparison materializes ``(rows, k, n)``
    intermediates.  With ``chunk=None`` and ``k <= 8192`` all rows go
    in one shot (O(k^2 * n) scratch memory); larger batches -- traces
    with tens of thousands of writes -- are processed in row blocks of
    ``chunk`` (default 1024) so scratch memory stays O(chunk * k * n)
    while the result is bit-identical
    (``tests/core/test_vectorclock.py`` pins the equality).  Pass an
    explicit ``chunk`` to force a block size either way.
    """
    mat = _as_matrix(vectors)
    k = mat.shape[0]
    if k == 0:
        return np.zeros((0, 0), dtype=bool)
    if chunk is None and k > _AUTO_CHUNK_THRESHOLD:
        chunk = _DEFAULT_CHUNK
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    if chunk is None or chunk >= k:
        le = np.all(mat[:, None, :] <= mat[None, :, :], axis=2)
        eq = np.all(mat[:, None, :] == mat[None, :, :], axis=2)
        return le & ~eq
    out = np.empty((k, k), dtype=bool)
    for start in range(0, k, chunk):
        rows = mat[start:start + chunk]
        le = np.all(rows[:, None, :] <= mat[None, :, :], axis=2)
        eq = np.all(rows[:, None, :] == mat[None, :, :], axis=2)
        out[start:start + chunk] = le & ~eq
    return out


def batch_concurrent_matrix(vectors: Iterable[Sequence[int]]) -> np.ndarray:
    """Pairwise concurrency matrix: ``C[i, j]`` iff ``v_i || v_j``.

    The diagonal is False by convention (an operation is not concurrent
    with itself), matching :meth:`CausalOrder.concurrent`.
    """
    p = batch_precedes_matrix(vectors)
    k = p.shape[0]
    c = ~p & ~p.T
    if k:
        np.fill_diagonal(c, False)
    return c
