"""The paper's primary contribution: ``Write_co`` vector clocks and OptP.

- :mod:`repro.core.vectorclock` -- the vector-clock value domain with the
  ``<`` / ``<=`` / ``||`` relations of Section 4.3, plus numpy-backed
  batch comparators used by the trace analyzers;
- :mod:`repro.core.optp` -- the OptP protocol of Section 4 (Figures 4-5),
  a line-for-line port of the paper's pseudocode onto the
  :class:`repro.protocols.base.Protocol` interface.
"""

from repro.core.vectorclock import (
    VectorClock,
    batch_concurrent_matrix,
    batch_precedes_matrix,
    vc_concurrent,
    vc_join,
    vc_le,
    vc_lt,
)
from repro.core.optp import OptPProtocol

__all__ = [
    "OptPProtocol",
    "VectorClock",
    "batch_concurrent_matrix",
    "batch_precedes_matrix",
    "vc_concurrent",
    "vc_join",
    "vc_le",
    "vc_lt",
]
