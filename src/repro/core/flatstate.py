"""Struct-of-arrays backend for the protocol activation predicates.

The scalar hot path re-derives a message's wait predicate from Python
tuples on every classify call.  The flat backend factors that work into
three pieces, all indexed by a single *component* axis (process id for
the vector protocols, the one global stamp for the sequencer):

- :class:`FlatDeps` -- the per-message **requirement row**: the local
  progress each component must reach before the message applies,
  precomputed once (by the writer, or on first receipt) from the same
  numbers the payload already carries.  The row is a read-only numpy
  ``int64`` array; a sparse ``items`` view carries only the non-trivial
  components so small fan-outs never touch numpy at all.
- :class:`FlatProgress` -- the per-node **progress vector**: a live
  view of the protocol's *existing* apply-count list (``Apply`` for
  OptP, the Fidge-Mattern ``vc`` for ANBKH, ...), mirrored lazily into
  a preallocated numpy array.  Protocols keep mutating plain Python
  ints; the mirror refreshes only when a dense comparison needs it.
- :class:`PendingMatrix` -- the pending set as a preallocated
  ``(capacity, n)`` requirement matrix, so "which buffered messages are
  ready?" is a single vectorized comparison against the progress row
  (``benchmarks/test_bench_flatstate.py`` drives it at 10^6 rows/s).

Application predicate (uniform across the flat-capable protocols)::

    ready(msg)  iff  progress >= deps.row  componentwise,
    with the *pivot* component (the writer / the stamp) required to
    match exactly: progress[pivot] - deps.row[pivot] > 0 means the
    message is a duplicate of an already-applied write (dead-parked,
    mirroring the scalar path's wedged-buffer semantics).

See docs/performance.md ("Flat-array protocol state") for the layout
diagram and the backend-selection rules; the scalar path stays the
differential oracle (byte-identical traces are pinned by
``tests/integration/test_flatstate_differential.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DENSE_THRESHOLD",
    "FlatDeps",
    "FlatProgress",
    "PendingMatrix",
    "STATE_BACKENDS",
    "resolve_state_backend",
]

#: Recognized values of the ``state_backend=`` switch (same pattern as
#: ``model/legality.py``'s ``mode=``).
STATE_BACKENDS = ("auto", "flat", "scalar")

#: Requirement rows with at most this many sparse items are evaluated
#: with a plain Python loop; larger fan-outs switch to the dense numpy
#: comparison.  At protocol vector sizes (n < ~64) list indexing beats
#: numpy's per-call dispatch -- same measurement that keeps
#: ``core/vectorclock.py`` on plain lists for single comparisons.
DENSE_THRESHOLD = 16


def resolve_state_backend(backend: str, protocol) -> bool:
    """True iff ``protocol`` should run on the flat backend.

    ``auto`` and ``flat`` both resolve to flat when the protocol class
    opts in via ``supports_flat_state``; protocols without flat hooks
    (ws-receiver, token, gossip) fall back to scalar transparently --
    there is no forced mode, because a flat run must stay byte-identical
    to the scalar oracle and a protocol without the hooks has nothing
    to be identical *to*.
    """
    if backend not in STATE_BACKENDS:
        raise ValueError(
            f"unknown state_backend {backend!r}; expected one of "
            f"{STATE_BACKENDS}"
        )
    if backend == "scalar":
        return False
    return bool(type(protocol).supports_flat_state)


class FlatDeps:
    """Precomputed requirement row of one update message.

    Attributes
    ----------
    row:
        Read-only ``(n,)`` int64 array; ``row[c]`` is the progress
        component ``c`` must reach before the message applies.
    items:
        Sparse view: ``(component, required)`` pairs for the non-pivot
        components with a non-trivial requirement (``required > 0``).
    pivot:
        The exact-match component (the writer for the vector protocols,
        0 for the sequencer's one-dimensional stamp), or ``None`` when
        every component is a plain ``>=`` bound.
    pivot_req:
        ``row[pivot]`` as a Python int (0 when there is no pivot).

    Instances are shared between every receiver of the message (the
    simulator ships one object), hence the read-only row.
    """

    __slots__ = ("row", "items", "pivot", "pivot_req")

    def __init__(
        self,
        row: np.ndarray,
        items: Tuple[Tuple[int, int], ...],
        pivot: Optional[int],
        pivot_req: int,
    ):
        self.row = row
        self.items = items
        self.pivot = pivot
        self.pivot_req = pivot_req

    @classmethod
    def from_counts(
        cls, counts: Sequence[int], pivot: Optional[int]
    ) -> "FlatDeps":
        """Build from required progress ``counts`` (one per component).

        ``counts[pivot]`` becomes the exact-match requirement; every
        other positive count becomes a ``>=`` bound.
        """
        row = np.asarray(counts, dtype=np.int64)
        row.setflags(write=False)
        items = tuple(
            (c, int(req))
            for c, req in enumerate(counts)
            if req > 0 and c != pivot
        )
        pivot_req = 0 if pivot is None else int(counts[pivot])
        return cls(row, items, pivot, pivot_req)

    def __repr__(self) -> str:  # diagnostics only
        return (
            f"FlatDeps(row={self.row.tolist()}, pivot={self.pivot}, "
            f"pivot_req={self.pivot_req})"
        )


class FlatProgress:
    """Live progress vector over the protocol's own apply-count list.

    ``fast`` *is* the protocol's existing mutable list (``Apply``,
    ``vc``, ...): the protocol keeps reading and writing plain Python
    ints, so ``classify``/``missing_deps``/``debug_state`` and every
    payload stay int-pure.  The numpy mirror is refreshed lazily --
    ``advance`` only flips a dirty bit, and the dense view is paid for
    exclusively by callers that need a vectorized comparison.
    """

    __slots__ = ("fast", "_vec", "_dirty")

    def __init__(self, fast: List[int]):
        self.fast = fast
        self._vec = np.zeros(len(fast), dtype=np.int64)
        self._dirty = True

    def advance(self, component: int, by: int = 1) -> None:
        """Bump one component (the per-apply hot operation)."""
        self.fast[component] += by
        self._dirty = True

    def mark_dirty(self) -> None:
        """The protocol mutated ``fast`` directly; refresh on next use."""
        self._dirty = True

    @property
    def vec(self) -> np.ndarray:
        """The dense int64 mirror, refreshed from ``fast`` if stale."""
        if self._dirty:
            self._vec[:] = self.fast
            self._dirty = False
        return self._vec

    def __len__(self) -> int:
        return len(self.fast)


class PendingMatrix:
    """The pending set as a preallocated requirement matrix.

    Rows are message requirement rows (:attr:`FlatDeps.row`); columns
    are components.  :meth:`ready_mask` evaluates the activation
    predicate of *every* pending message in one vectorized comparison
    -- the batched form of the scheduler's per-delivery wakeup.  The
    live delivery path keeps its O(missing-deps) counting index (a
    dict/heap beats a full-matrix rescan per message); the matrix is
    the batch/audit view, exposed by
    :meth:`~repro.sim.scheduler.FlatScheduler.pending_matrix` and
    benchmarked directly at scale.
    """

    __slots__ = ("_rows", "_pivot_rows", "_free", "_n", "_len", "_obs",
                 "_m_adds", "_m_removes", "_m_scans", "_g_rows")

    def __init__(self, n_components: int, capacity: int = 64, *, obs=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._n = n_components
        self._rows = np.zeros((capacity, n_components), dtype=np.int64)
        #: pivot requirement per slot encoded as (pivot + 1) * big + req
        #: is overkill; keep two parallel columns instead.
        self._pivot_rows = np.full(capacity, -1, dtype=np.int64)
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._len = 0
        #: observability handle (duck-typed to avoid a core -> obs
        #: import); handles resolved once, every hook one gated branch.
        self._obs = obs
        if obs is not None and obs.enabled:
            reg = obs.registry
            self._m_adds = reg.counter("flat.pending_adds")
            self._m_removes = reg.counter("flat.pending_removes")
            self._m_scans = reg.counter("flat.ready_scans")
            self._g_rows = reg.gauge("flat.pending_rows")

    def __len__(self) -> int:
        return self._len

    @property
    def capacity(self) -> int:
        return self._rows.shape[0]

    def _grow(self) -> None:
        old = self._rows.shape[0]
        new = old * 2
        rows = np.zeros((new, self._n), dtype=np.int64)
        rows[:old] = self._rows
        pivots = np.full(new, -1, dtype=np.int64)
        pivots[:old] = self._pivot_rows
        self._rows = rows
        self._pivot_rows = pivots
        self._free.extend(range(new - 1, old - 1, -1))

    def add(self, deps: FlatDeps) -> int:
        """Insert a requirement row; returns its slot id."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._rows[slot] = deps.row
        self._pivot_rows[slot] = -1 if deps.pivot is None else deps.pivot
        self._len += 1
        if self._obs is not None and self._obs.enabled:
            self._m_adds.inc()
            self._g_rows.set(self._len)
        return slot

    def remove(self, slot: int) -> None:
        """Free a slot (the message applied or was discarded)."""
        self._rows[slot] = 0
        self._pivot_rows[slot] = -1
        self._free.append(slot)
        self._len -= 1
        if self._obs is not None and self._obs.enabled:
            self._m_removes.inc()
            self._g_rows.set(self._len)

    def ready_mask(self, progress: np.ndarray) -> np.ndarray:
        """Boolean mask over slots: requirement row fully satisfied.

        One vectorized comparison over the whole pending set; free
        slots (all-zero rows) evaluate True and must be filtered by the
        caller against its slot table.  Pivot components are checked
        for ``>=`` here -- exact-match (duplicate) classification stays
        with the caller, which knows the per-slot pivot requirement.
        """
        if self._obs is not None and self._obs.enabled:
            self._m_scans.inc()
        return np.all(self._rows <= progress, axis=1)
