"""OptP -- the write-delay-optimal protocol (paper, Section 4).

Data structures per process ``p_i`` (Section 4.1)::

    Apply[1..n]        Apply[j] = number of writes issued by p_j and
                       applied at p_i
    Write_co[1..n]     Write_co[j] = k means the k-th write issued by
                       p_j precedes the *next* local write w.r.t. ->co
    LastWriteOn[1..m]  LastWriteOn[h] = Write_co value of the last
                       write applied to x_h at p_i

Procedures (Figures 4-5), ported line-for-line:

``WRITE(x_h, v)``::

    1  Write_co[i] := Write_co[i] + 1          % tracking ->po
    2  send m(x_h, v, Write_co) to Π - p_i     % send event
    3  apply(v, x_h)                           % apply event
    4  Apply[i] := Apply[i] + 1
    5  LastWriteOn[h] := Write_co

``READ(x_h)``::

    1  Write_co := max(Write_co, LastWriteOn[h])
    2  return x_h

synchronization thread for message ``m(x_h, v, W_co)`` from ``p_u``::

    2  wait until ( for all t != u: W_co[t] <= Apply[t]
                    and Apply[u] = W_co[u] - 1 )
    3  apply(v, x_h)
    4  Apply[u] := Apply[u] + 1
    5  LastWriteOn[h] := W_co

The activation predicate at line 2 is exactly "every write in the
incoming write's ->co-causal past has been applied here" -- which by
Definition 4 makes :math:`\\mathcal{X}_{OptP}(e) =
\\mathcal{X}_{co\\text{-}safe}(e)` and hence OptP write-delay optimal
(Theorem 4).  Note the contrast with ANBKH
(:class:`repro.protocols.anbkh.ANBKHProtocol`), whose predicate quotes
the Fidge-Mattern vector of the *send* event and therefore also waits
for writes that merely happened-before the send without causally
affecting it.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.model.operations import WriteId
from repro.core.base import (
    BROADCAST,
    Disposition,
    Outgoing,
    Protocol,
    ReadOutcome,
    UpdateMessage,
    WriteOutcome,
)
from repro.core.flatstate import FlatDeps, FlatProgress
from repro.core.vectorclock import vc_join_inplace

#: Payload key under which OptP piggybacks the write's Write_co vector.
WRITE_CO_KEY = "write_co"


class OptPProtocol(Protocol):
    """The paper's OptP protocol (safe, live, and write-delay optimal)."""

    name = "optp"
    in_class_p = True
    supports_flat_state = True
    supports_snapshot = True

    def __init__(self, process_id: int, n_processes: int):
        super().__init__(process_id, n_processes)
        n = n_processes
        self.apply_vec: List[int] = [0] * n
        self.write_co: List[int] = [0] * n
        # LastWriteOn is keyed by variable name; absent key = [0]*n
        # (every component initialized to zero, Section 4.1).
        self.last_write_on: Dict[Hashable, Tuple[int, ...]] = {}
        self._fp: Optional[FlatProgress] = None

    # -- operations -----------------------------------------------------------

    def write(self, variable: Hashable, value: Any) -> WriteOutcome:
        """Figure 4, lines 1-5."""
        i = self.process_id
        self.write_co[i] += 1                      # line 1: tracking ->po
        wid = self.next_wid()
        assert wid.seq == self.write_co[i], "Observation 2 invariant"
        vec = tuple(self.write_co)
        fp = self._fp
        msg = UpdateMessage(
            sender=i,
            wid=wid,
            variable=variable,
            value=value,
            payload={WRITE_CO_KEY: vec},
            flat_deps=None if fp is None else self._make_flat_deps(vec, i),
        )                                           # line 2: send event
        self.store_put(variable, value, wid)        # line 3: apply event
        if fp is None:                              # line 4
            self.apply_vec[i] += 1
        else:
            fp.advance(i)
        self.last_write_on[variable] = vec          # line 5
        return WriteOutcome(wid=wid, outgoing=(Outgoing(msg, BROADCAST),))

    def read(self, variable: Hashable) -> ReadOutcome:
        """Figure 5 (read procedure), lines 1-2.

        Line 1 merges the causal relations of the last write applied to
        the variable into the local ``Write_co``: this is what makes a
        *read-from* edge count towards the causal past of subsequent
        local writes -- and nothing else, which is exactly why
        ``w_2(x_2)b.Write_co`` in Figure 6 does *not* track
        ``w_1(x_1)c`` even though c was already applied at p_2: p_2
        never read it.
        """
        lwo = self.last_write_on.get(variable)
        if lwo is not None:
            vc_join_inplace(self.write_co, lwo)      # line 1: componentwise max
        value, wid = self.store_get(variable)
        return ReadOutcome(value=value, read_from=wid)

    # -- message handling -------------------------------------------------------

    def classify(self, msg: UpdateMessage) -> Disposition:
        """Figure 5 (synchronization thread), line 2 -- the wait predicate.

        Deliverable iff the message's ``Write_co`` brings no causal
        relationship unknown to this process except the write itself:
        ``forall t != u: W_co[t] <= Apply[t]`` and
        ``Apply[u] = W_co[u] - 1``.
        """
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        if self.apply_vec[u] != w_co[u] - 1:
            return Disposition.BUFFER
        for t in range(self.n_processes):
            if t != u and w_co[t] > self.apply_vec[t]:
                return Disposition.BUFFER
        return Disposition.APPLY

    def apply_update(self, msg: UpdateMessage) -> None:
        """Figure 5 (synchronization thread), lines 3-5."""
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        self.store_put(msg.variable, msg.value, msg.wid)   # line 3
        if self._fp is None:                               # line 4
            self.apply_vec[u] += 1
        else:
            self._fp.advance(u)
        # line 5: the wire vector is a frozen tuple (payload
        # immutability contract), so storing it bare is alias-safe.
        self.last_write_on[msg.variable] = w_co  # reprolint: disable=RL003

    def missing_deps(self, msg: UpdateMessage) -> Optional[List[Tuple[int, int]]]:
        """The wait predicate of Figure 5 line 2 as explicit apply events.

        ``Apply[u] = W_co[u] - 1`` waits for the apply of ``p_u``'s
        write number ``W_co[u] - 1``; ``W_co[t] <= Apply[t]`` (t != u)
        waits for the apply of ``p_t``'s write number ``W_co[t]``.  A
        dependency on this process itself can never be pending: the
        sender cannot know more of our writes than we have issued (and
        locally applied), so only remote apply events are listed --
        which is what lets the wakeup index fire on applies alone.
        """
        u = msg.sender
        w_co = msg.payload[WRITE_CO_KEY]
        deps: List[Tuple[int, int]] = []
        if self.apply_vec[u] < w_co[u] - 1:
            deps.append((u, w_co[u] - 1))
        for t in range(self.n_processes):
            if t != u and w_co[t] > self.apply_vec[t]:
                deps.append((t, w_co[t]))
        return deps

    # -- flat-state backend -----------------------------------------------------

    @staticmethod
    def _make_flat_deps(w_co: Tuple[int, ...], sender: int) -> FlatDeps:
        """The wait predicate of Figure 5 line 2 as a requirement row:
        ``Apply[t] >= W_co[t]`` for ``t != u`` and ``Apply[u]`` exactly
        ``W_co[u] - 1`` (the pivot; overshoot means duplicate)."""
        counts = list(w_co)
        counts[sender] -= 1
        return FlatDeps.from_counts(counts, sender)

    def enable_flat_state(self) -> None:
        if self._fp is None:
            self._fp = FlatProgress(self.apply_vec)

    def flat_progress(self) -> FlatProgress:
        return self._fp

    def flat_deps(self, msg: UpdateMessage) -> FlatDeps:
        return self._make_flat_deps(msg.payload[WRITE_CO_KEY], msg.sender)

    # -- durability ---------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Section 4.1's three structures plus the store, in codec
        vocabulary.  Store and ``LastWriteOn`` entries keep insertion
        order so a restored instance is indistinguishable from the
        original (dict order shows up in debug snapshots)."""
        return {
            "store": [(var, value, wid)
                      for var, (value, wid) in self._store.items()],
            "write_seq": self._write_seq,
            "apply": tuple(self.apply_vec),
            "write_co": tuple(self.write_co),
            "last_write_on": [(var, vec)
                              for var, vec in self.last_write_on.items()],
        }

    def restore_state(self, doc: Dict[str, Any]) -> None:
        self._store.clear()
        for var, value, wid in doc["store"]:
            self._store[var] = (value, wid)
        self._write_seq = doc["write_seq"]
        # in place: the flat backend's FlatProgress wraps these lists.
        # Snapshot restore legitimately rewrites the whole vectors --
        # the monotonicity discipline applies to live protocol steps.
        self.apply_vec[:] = doc["apply"]  # reprolint: disable=RL102
        self.write_co[:] = doc["write_co"]  # reprolint: disable=RL102
        self.last_write_on.clear()
        for var, vec in doc["last_write_on"]:
            self.last_write_on[var] = tuple(vec)
        if self._fp is not None:
            self._fp.mark_dirty()

    # -- introspection ------------------------------------------------------------

    def debug_state(self) -> Dict[str, Any]:
        return {
            "write_co": tuple(self.write_co),
            "apply": tuple(self.apply_vec),
            "last_write_on": {
                var: tuple(vec) for var, vec in self.last_write_on.items()
            },
        }


def write_co_of(msg: UpdateMessage) -> Tuple[int, ...]:
    """The ``Write_co`` vector piggybacked on an OptP update message."""
    return msg.payload[WRITE_CO_KEY]
