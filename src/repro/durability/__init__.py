"""Crash durability: write-ahead log, snapshots, and recovery replay.

The paper's system model is failure-free; this package extends the
implementation with the standard crash-stop / crash-recovery model.  A
replica journals its externally-visible inputs (client writes, client
reads -- OptP reads mutate ``Write_co`` -- and peer message receipts)
to a CRC-framed write-ahead log, periodically folds the log into a
snapshot of the protocol's Section 4.1 structures, and after a crash
rebuilds its exact pre-crash state by snapshot restore + deterministic
replay.  ``docs/fault-tolerance.md`` walks through the design; the
model checker explores crash/recover as ordinary transitions
(``repro.mck``) and the serving layer journals for real
(``repro.serve.server``).
"""

from repro.durability.recovery import (
    DurableLog,
    RecoveryError,
    apply_record,
    rebuild_node,
)
from repro.durability.snapshot import restore_node, snapshot_node
from repro.durability.wal import (
    KIND_READ,
    KIND_RECV,
    KIND_WRITE,
    MAX_RECORD,
    WalError,
    WalReadResult,
    WalWriter,
    decode_record,
    decode_snapshot,
    encode_read_record,
    encode_recv_record,
    encode_snapshot,
    encode_write_record,
    frame_record,
    read_framed_file,
    read_wal,
    write_framed_file,
)

__all__ = [
    "DurableLog",
    "KIND_READ",
    "KIND_RECV",
    "KIND_WRITE",
    "MAX_RECORD",
    "RecoveryError",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "apply_record",
    "decode_record",
    "decode_snapshot",
    "encode_read_record",
    "encode_recv_record",
    "encode_snapshot",
    "encode_write_record",
    "frame_record",
    "read_framed_file",
    "read_wal",
    "rebuild_node",
    "restore_node",
    "snapshot_node",
    "write_framed_file",
]
