"""Whole-node snapshots over the protocol snapshot hooks.

A protocol snapshot (:meth:`repro.core.base.Protocol.snapshot_state`)
covers the paper's per-process structures; a *node* additionally owns
delivery state that must survive a crash for recovery to be exact:

- the scheduler's buffered messages (received but blocked on the
  Figure 5 wait predicate) -- volatile in the crash model, but any
  message whose receipt was WAL-logged before the crash is re-buffered
  by replay, and any message *folded into a snapshot* must travel with
  it or it is lost to both replay and retransmission;
- the at-least-once dedup guard (``_seen_updates`` /
  ``duplicates_dropped``), without which a recovered replica would
  re-apply retransmitted updates it already absorbed pre-snapshot.

Documents stay inside the codec value vocabulary
(:mod:`repro.serve.codec`), so :func:`repro.durability.wal.encode_snapshot`
round-trips them byte-stably.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.serve.codec import decode_message, encode_message

__all__ = ["restore_node", "snapshot_node"]


def snapshot_node(node) -> Dict[str, Any]:
    """Capture ``node`` (a :class:`repro.sim.node.Node`) as a document.

    Buffered messages are stored oldest-first in canonical message
    encoding; seen write-ids are sorted so the document is independent
    of set iteration order (snapshot bytes feed state fingerprints).
    """
    return {
        "protocol": node.protocol.snapshot_state(),
        "pending": [encode_message(m) for m in node.pending],
        "seen": sorted(node._seen_updates),
        "dups": node.duplicates_dropped,
    }


def restore_node(node, doc: Dict[str, Any]) -> None:
    """Inverse of :func:`snapshot_node`, onto a freshly built node.

    Protocol state first (parking re-evaluates the wait predicate
    against it), then the buffer, then the dedup guard.  Works on both
    state backends: the flat scheduler classifies-and-parks in one
    ``offer`` call, the scalar schedulers park directly -- a message
    that was buffered under the snapshotted state classifies BUFFER
    again under the restored state, so ``offer`` cannot spuriously
    apply.
    """
    node.protocol.restore_state(doc["protocol"])
    flat = node.scheduler.mode == "flat"
    for raw in doc["pending"]:
        msg = decode_message(raw)
        if flat:
            node.scheduler.offer(msg)
        else:
            node.scheduler.park(msg)
    node._seen_updates.clear()
    node._seen_updates.update(doc["seen"])
    node.duplicates_dropped = doc["dups"]
