"""Recovery: rebuild a crashed node from snapshot + WAL replay.

The registry protocols are deterministic functions of their input
sequence (scripted writes/reads plus message receipts in arrival
order), so recovery is *replay*: restore the latest snapshot, then feed
the logged post-snapshot inputs back through a fresh
:class:`~repro.sim.node.Node`.  The replayed node runs against a
:class:`~repro.sim.trace.NullTrace` and a sink dispatch -- the
pre-crash events are already on the authoritative trace and the
pre-crash broadcasts are already in the channels (or in the serving
layer's retransmission buffer), so replay must re-derive *state*
without re-emitting *effects*.

Failures surface as :class:`RecoveryError`, which carries the durable
context an operator needs (snapshot sequence, WAL record/tail counts)
plus the armed flight-recorder tail, in the style of
:class:`repro.sim.engine.EngineLimitError`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import Outgoing, Protocol
from repro.durability.snapshot import restore_node
from repro.durability.wal import (
    KIND_READ,
    KIND_RECV,
    KIND_WRITE,
    decode_record,
)
from repro.obs.spans import NULL_OBS
from repro.sim.node import Node
from repro.sim.trace import NullTrace

__all__ = ["DurableLog", "RecoveryError", "apply_record", "rebuild_node"]


class RecoveryError(RuntimeError):
    """A crashed replica could not be rebuilt from its durable state.

    Mirrors :class:`repro.sim.engine.EngineLimitError`: the message is
    self-contained for log grepping, and the structured fields support
    programmatic triage.  ``journal_tail`` holds the last flight-
    recorder events when the caller had a journal armed.
    """

    def __init__(self, reason: str, *,
                 snapshot_seq: Optional[int] = None,
                 wal_records: Optional[int] = None,
                 wal_tail_bytes: Optional[int] = None,
                 detail: Optional[str] = None,
                 journal_tail: Optional[List[Dict[str, Any]]] = None):
        parts = [reason]
        if snapshot_seq is not None:
            parts.append(f"snapshot covers {snapshot_seq} records")
        if wal_records is not None:
            parts.append(f"{wal_records} WAL records replayable")
        if wal_tail_bytes is not None:
            parts.append(f"{wal_tail_bytes} torn tail bytes")
        if detail:
            parts.append(detail)
        super().__init__("; ".join(parts))
        self.reason = reason
        self.snapshot_seq = snapshot_seq
        self.wal_records = wal_records
        self.wal_tail_bytes = wal_tail_bytes
        self.detail = detail
        self.journal_tail = journal_tail or []


# Module-level (deepcopy- and pickle-safe) stand-ins for the live
# callbacks: replay re-derives state, never effects.

def _zero_clock() -> float:
    return 0.0


def _sink_dispatch(sender: int, outgoing: Sequence[Outgoing]) -> None:
    return None


def apply_record(node: Node, rec: Tuple[Any, ...]) -> None:
    """Feed one decoded WAL record back through ``node``.

    Reads are replayed for their side effect alone (OptP's Figure 5
    line 1 merges ``LastWriteOn`` into ``Write_co``); the value they
    return went to a client long ago.
    """
    kind = rec[0]
    if kind == KIND_WRITE:
        node.do_write(rec[2], rec[3])
    elif kind == KIND_READ:
        node.do_read(rec[2])
    elif kind == KIND_RECV:
        node.receive(rec[2])
    else:  # pragma: no cover - decode_record already rejects these
        raise RecoveryError(f"unreplayable WAL record kind {rec[0]!r}")


def rebuild_node(factory: Callable[[int, int], Protocol],
                 process_id: int,
                 n_processes: int,
                 snapshot_doc: Optional[Dict[str, Any]],
                 bodies: Sequence[bytes],
                 *,
                 dedup: bool = False,
                 state_backend: str = "scalar",
                 lose_tail: int = 0) -> Node:
    """Build a recovered :class:`~repro.sim.node.Node` for ``process_id``.

    ``snapshot_doc`` is a :func:`repro.durability.snapshot.snapshot_node`
    document (None = recover from an empty initial state) and
    ``bodies`` the post-snapshot WAL record bodies, oldest first.

    ``lose_tail`` drops the last N records before replay.  It exists
    for the mutation self-check (``BrokenRecovery``): a recovery path
    that silently forgets the WAL tail must be *caught* by the model
    checker, so the bug is injectable on demand.

    The returned node carries replay-only callbacks (null trace, zero
    clock, sink dispatch); the caller rebinds the live ones.
    """
    try:
        protocol = factory(process_id, n_processes)
    except Exception as exc:
        raise RecoveryError("protocol factory failed during recovery",
                            detail=repr(exc)) from exc
    if not type(protocol).supports_snapshot:
        raise RecoveryError(
            f"protocol {type(protocol).__name__} does not support snapshots")
    node = Node(protocol, NullTrace(n_processes),
                clock=_zero_clock, dispatch=_sink_dispatch,
                dedup=dedup, state_backend=state_backend, obs=NULL_OBS)
    replay = list(bodies)
    if lose_tail > 0:
        replay = replay[:max(0, len(replay) - lose_tail)]
    try:
        if snapshot_doc is not None:
            restore_node(node, snapshot_doc)
        for body in replay:
            apply_record(node, decode_record(body))
    except RecoveryError:
        raise
    except Exception as exc:
        raise RecoveryError("replay failed during recovery",
                            wal_records=len(bodies),
                            detail=repr(exc)) from exc
    return node


class DurableLog:
    """In-memory durable state of one model-checked node.

    The model checker's crash transitions need the *semantics* of the
    snapshot + WAL pair without disk I/O on every explored path, so
    this mirrors the pair as bytes: record bodies exactly as
    :mod:`repro.durability.wal` would frame them, and the snapshot as
    its encoded document.  Bytes are immutable, so cloning a cluster
    shares them and only copies the list spine.

    ``snap_every=N`` folds the log into a fresh snapshot once N records
    accumulate (the caller passes the live node); 0 disables
    auto-snapshotting (pure WAL replay from the initial state).
    """

    __slots__ = ("snap_every", "snapshot", "snap_seq", "bodies")

    def __init__(self, snap_every: int = 0):
        self.snap_every = snap_every
        self.snapshot: Optional[bytes] = None
        #: number of records folded into the snapshot so far
        self.snap_seq = 0
        self.bodies: List[bytes] = []

    def append(self, body: bytes, node: Node) -> None:
        from repro.durability.snapshot import snapshot_node
        from repro.durability.wal import encode_snapshot
        self.bodies.append(body)
        if self.snap_every and len(self.bodies) >= self.snap_every:
            self.snapshot = encode_snapshot(snapshot_node(node))
            self.snap_seq += len(self.bodies)
            self.bodies.clear()

    def clone(self) -> "DurableLog":
        new = DurableLog.__new__(DurableLog)
        new.snap_every = self.snap_every
        new.snapshot = self.snapshot
        new.snap_seq = self.snap_seq
        new.bodies = list(self.bodies)
        return new

    def rebuild(self, factory: Callable[[int, int], Protocol],
                process_id: int, n_processes: int, *,
                dedup: bool = False, lose_tail: int = 0) -> Node:
        from repro.durability.wal import decode_snapshot
        doc = (decode_snapshot(self.snapshot)
               if self.snapshot is not None else None)
        return rebuild_node(factory, process_id, n_processes, doc,
                            self.bodies, dedup=dedup, lose_tail=lose_tail)
