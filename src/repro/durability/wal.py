"""Write-ahead log and snapshot files for crash-durable replicas.

Two layers, deliberately separated:

**Record bodies** are the logical unit: one externally-visible input to
a replica -- a client write, a client read (OptP reads *mutate*
``Write_co`` via the ``LastWriteOn`` merge of Figure 5 line 1, so they
must be journaled too), or a protocol message received from a peer.
Bodies reuse the serving codec's value vocabulary
(:mod:`repro.serve.codec`) so everything a protocol can put on the wire
can also be replayed from disk, byte-for-byte.

**Disk framing** wraps each body as::

    u32 body_len | u32 crc32(body) | body

in big-endian, mirroring the serving plane's length-prefixed frames.
The CRC makes torn tails detectable: a crash mid-``write(2)`` leaves a
partial length word, a partial body, or a body that fails its checksum,
and :func:`read_wal` stops at the last valid prefix instead of
propagating garbage into recovery.  This is the classic
ARIES/LevelLog discipline -- the tail of a write-ahead log is untrusted
by construction.

Durability is batched: :class:`WalWriter` fsyncs every ``fsync_every``
records and on explicit :meth:`WalWriter.sync` (the serving layer calls
it at externalization points -- before a write response leaves for the
client and before a peer batch is flushed -- which is group commit).

Snapshot files use the same CRC framing over a single
:func:`repro.serve.codec.encode_value` document and are written
atomically (tmp + fsync + rename), so a crash during snapshotting
leaves the previous snapshot intact.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Tuple

from repro.core.base import Message
from repro.serve.codec import (
    CodecError,
    InternDecoder,
    VarReader,
    VarWriter,
    decode_message_from,
    decode_value,
    encode_message,
    encode_value,
)

__all__ = [
    "KIND_READ",
    "KIND_RECV",
    "KIND_WRITE",
    "MAX_RECORD",
    "WalError",
    "WalReadResult",
    "WalWriter",
    "decode_record",
    "decode_snapshot",
    "encode_read_record",
    "encode_recv_record",
    "encode_snapshot",
    "encode_write_record",
    "frame_record",
    "read_framed_file",
    "read_wal",
    "write_framed_file",
]


class WalError(ValueError):
    """Structurally invalid durability data (outside the torn-tail
    tolerance: a *framed* record whose body cannot be decoded, or a
    snapshot file that fails its checksum)."""


# -- record bodies ----------------------------------------------------------

KIND_WRITE = 1  #: client write: ``(t, variable, value)``; value None = fresh
KIND_READ = 2   #: client read: ``(t, variable)``
KIND_RECV = 3   #: peer message receipt: ``(t, message)``

_FRAME = struct.Struct(">II")

#: Upper bound on a single framed record; matches the serving plane's
#: frame ceiling so a WAL record can always travel as a wire frame.
MAX_RECORD = 16 << 20


def encode_write_record(t: float, variable: Hashable, value: Any) -> bytes:
    """Body for a local write.  ``value`` may be None: replay calls
    ``do_write(variable, None)`` and the deterministic
    ``fresh_value(WriteId(...))`` regenerates the original value."""
    w = VarWriter()
    w.u8(KIND_WRITE)
    encode_value(w, t)
    encode_value(w, variable)
    encode_value(w, value)
    return w.getvalue()


def encode_read_record(t: float, variable: Hashable) -> bytes:
    w = VarWriter()
    w.u8(KIND_READ)
    encode_value(w, t)
    encode_value(w, variable)
    return w.getvalue()


def encode_recv_record(t: float, message: Message) -> bytes:
    """Body for a received peer message, embedding the canonical
    (stateless) message encoding -- self-contained, no intern state."""
    w = VarWriter()
    w.u8(KIND_RECV)
    encode_value(w, t)
    w.raw(encode_message(message))
    return w.getvalue()


def decode_record(body: bytes) -> Tuple[Any, ...]:
    """Decode one record body.

    Returns ``(KIND_WRITE, t, variable, value)``,
    ``(KIND_READ, t, variable)`` or ``(KIND_RECV, t, message)``.
    Raises :class:`WalError` on anything else -- a framed record that
    fails here is corruption *inside* the checksummed region, which the
    torn-tail tolerance deliberately does not excuse.
    """
    try:
        r = VarReader(body)
        kind = r.u8()
        t = decode_value(r)
        if kind == KIND_WRITE:
            variable = decode_value(r)
            value = decode_value(r)
            rec: Tuple[Any, ...] = (KIND_WRITE, t, variable, value)
        elif kind == KIND_READ:
            rec = (KIND_READ, t, decode_value(r))
        elif kind == KIND_RECV:
            rec = (KIND_RECV, t, decode_message_from(r, InternDecoder()))
        else:
            raise WalError(f"unknown WAL record kind {kind}")
        if not r.done():
            raise WalError("trailing bytes after WAL record")
        return rec
    except WalError:
        raise
    except (CodecError, IndexError, ValueError, struct.error) as exc:
        raise WalError(f"undecodable WAL record: {exc}") from exc


# -- disk framing -----------------------------------------------------------

def frame_record(body: bytes) -> bytes:
    """``u32 len | u32 crc32 | body`` for one record."""
    if len(body) > MAX_RECORD:
        raise WalError(f"WAL record of {len(body)} bytes exceeds MAX_RECORD")
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


class WalWriter:
    """Appender with batched fsync.

    ``fsync_every=N`` syncs after every N appended records;
    :meth:`sync` forces one at externalization points (group commit).
    ``fsync_every=0`` disables the periodic sync entirely -- durability
    then rests on the explicit barriers alone.
    """

    __slots__ = ("path", "fsync_every", "records", "bytes_written",
                 "fsyncs", "_fh", "_dirty", "_since_sync")

    def __init__(self, path: str, *, fsync_every: int = 256):
        self.path = path
        self.fsync_every = fsync_every
        self.records = 0
        self.bytes_written = 0
        self.fsyncs = 0
        self._fh = open(path, "ab")
        self._dirty = False
        self._since_sync = 0

    def append(self, body: bytes) -> None:
        framed = frame_record(body)
        self._fh.write(framed)
        self.records += 1
        self.bytes_written += len(framed)
        self._dirty = True
        self._since_sync += 1
        if self.fsync_every and self._since_sync >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Flush userspace buffers and fsync -- the durability barrier."""
        if not self._dirty:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._dirty = False
        self._since_sync = 0

    def close(self) -> None:
        if self._fh.closed:
            return
        self.sync()
        self._fh.close()


@dataclass
class WalReadResult:
    """Outcome of a tolerant WAL scan."""

    bodies: List[bytes]   #: record bodies of the valid prefix, in order
    valid_bytes: int      #: file offset where the valid prefix ends
    tail_bytes: int       #: bytes past the valid prefix (torn/corrupt)

    @property
    def truncated(self) -> bool:
        return self.tail_bytes > 0


def read_wal(path: str) -> WalReadResult:
    """Scan a WAL, returning the longest valid record prefix.

    Tolerated (scan stops, ``tail_bytes > 0``): a partial frame header,
    a body shorter than its declared length, a CRC mismatch, or a
    declared length over :data:`MAX_RECORD` (a torn length word can
    claim anything).  These are exactly the states an interrupted
    append can leave behind; everything before them is trusted.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return WalReadResult(bodies=[], valid_bytes=0, tail_bytes=0)
    bodies: List[bytes] = []
    off = 0
    size = len(data)
    while True:
        if off + _FRAME.size > size:
            break
        body_len, crc = _FRAME.unpack_from(data, off)
        if body_len > MAX_RECORD:
            break
        end = off + _FRAME.size + body_len
        if end > size:
            break
        body = data[off + _FRAME.size:end]
        if zlib.crc32(body) != crc:
            break
        bodies.append(body)
        off = end
    return WalReadResult(bodies=bodies, valid_bytes=off,
                         tail_bytes=size - off)


# -- snapshot files ---------------------------------------------------------

def encode_snapshot(doc: Any) -> bytes:
    """One codec value document as bytes (no framing)."""
    w = VarWriter()
    encode_value(w, doc)
    return w.getvalue()


def decode_snapshot(data: bytes) -> Any:
    try:
        r = VarReader(data)
        doc = decode_value(r)
        if not r.done():
            raise WalError("trailing bytes after snapshot document")
        return doc
    except WalError:
        raise
    except (CodecError, IndexError, ValueError, struct.error) as exc:
        raise WalError(f"undecodable snapshot: {exc}") from exc


def write_framed_file(path: str, body: bytes) -> None:
    """Atomically replace ``path`` with one CRC-framed body.

    tmp + fsync + rename: a crash at any point leaves either the old
    file or the new one, never a mix -- the snapshot/WAL pair stays
    recoverable through a crash *during* snapshotting.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(frame_record(body))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_framed_file(path: str) -> Optional[bytes]:
    """Read one CRC-framed body; None if the file does not exist.

    Unlike the WAL tail, a snapshot file is written atomically, so any
    damage here is *not* an expected crash state: raise
    :class:`WalError` rather than silently falling back.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return None
    if len(data) < _FRAME.size:
        raise WalError(f"snapshot file {path} shorter than its header")
    body_len, crc = _FRAME.unpack_from(data, 0)
    body = data[_FRAME.size:]
    if body_len != len(body) or zlib.crc32(body) != crc:
        raise WalError(f"snapshot file {path} fails its checksum")
    return body
