"""Declarative run specifications and their canonical digests.

The sweep runner's unit of work is a :class:`RunSpec`: one
``(protocol, n, workload config, latency model, seed)`` point of a
sweep grid.  Specs are *data*, not callables -- every field is a plain
value -- which buys three properties at once:

- **picklable**: specs cross the ``ProcessPoolExecutor`` boundary;
- **canonicalizable**: :func:`canonical_spec` renders a spec as a
  nested dict with deterministic key order, so :func:`spec_digest`
  is a stable content address for the run it describes;
- **reproducible**: a spec plus the code fingerprint (see
  :mod:`repro.sweep.cache`) fully determines the run's metrics, which
  is what makes the on-disk result cache sound.

Latency models are described by :class:`LatencySpec` rather than live
:class:`~repro.sim.latency.LatencyModel` instances: a model instance
is neither canonicalizable nor (for the RNG-bearing ones) obviously
safe to share, while the spec's ``build()`` reconstructs a fresh model
with its initial state -- exactly the ``fork()`` semantics the cluster
applies per run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    SeededLatency,
    UniformLatency,
)
from repro.workloads.generators import WorkloadConfig

__all__ = [
    "LatencySpec",
    "RunSpec",
    "SPEC_VERSION",
    "canonical_spec",
    "spec_digest",
]

#: Bumped whenever the canonical form changes incompatibly; part of the
#: digest, so old cache entries simply stop matching.
SPEC_VERSION = 1

_LATENCY_KINDS = ("seeded", "constant", "exponential", "uniform")


@dataclass(frozen=True)
class LatencySpec:
    """A declarative latency model (see the class docstring above).

    ``kind`` selects the model; only the fields that kind reads are
    meaningful, but all participate in the canonical form so two specs
    are equal iff they build identical models.
    """

    kind: str = "seeded"
    seed: int = 0
    dist: str = "exponential"
    lo: float = 0.5
    hi: float = 5.0
    mean: float = 2.0
    min_delay: float = 0.01
    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _LATENCY_KINDS:
            raise ValueError(
                f"unknown latency kind {self.kind!r}; "
                f"known: {_LATENCY_KINDS}"
            )

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        dist: str = "exponential",
        lo: float = 0.5,
        hi: float = 5.0,
        mean: float = 2.0,
        min_delay: float = 0.01,
    ) -> "LatencySpec":
        """The cross-protocol-identical model the sweeps default to."""
        return cls(kind="seeded", seed=seed, dist=dist, lo=lo, hi=hi,
                   mean=mean, min_delay=min_delay)

    @classmethod
    def constant(cls, delay: float) -> "LatencySpec":
        return cls(kind="constant", delay=delay)

    def build(self) -> LatencyModel:
        """A fresh model instance in its initial state."""
        if self.kind == "seeded":
            return SeededLatency(self.seed, dist=self.dist, lo=self.lo,
                                 hi=self.hi, mean=self.mean,
                                 min_delay=self.min_delay)
        if self.kind == "constant":
            return ConstantLatency(self.delay)
        if self.kind == "exponential":
            return ExponentialLatency(self.mean, min_delay=self.min_delay,
                                      seed=self.seed)
        return UniformLatency(self.lo, self.hi, seed=self.seed)


@dataclass(frozen=True)
class RunSpec:
    """One fully determined simulation run of a sweep grid.

    ``verify`` is part of the identity on purpose: verified and
    unverified runs produce different metrics (the checker feeds the
    delay audit), so they must never share a cache entry.
    """

    protocol: str
    n_processes: int
    config: WorkloadConfig
    latency: LatencySpec = LatencySpec()
    verify: bool = True


def canonical_spec(spec: RunSpec) -> Dict:
    """The spec as a nested dict with deterministic structure.

    ``asdict`` preserves dataclass field order and every leaf is a
    JSON scalar, so ``json.dumps(..., sort_keys=True)`` of this value
    is byte-stable across processes and hosts.
    """
    return {
        "version": SPEC_VERSION,
        "protocol": spec.protocol,
        "n_processes": spec.n_processes,
        "config": asdict(spec.config),
        "latency": asdict(spec.latency),
        "verify": spec.verify,
    }


def spec_digest(spec: RunSpec, fingerprint: Optional[str] = None) -> str:
    """Content address of a run: sha256 over the canonical spec, plus
    the code fingerprint when given (the cache key form)."""
    doc = canonical_spec(spec)
    if fingerprint is not None:
        doc = {"fingerprint": fingerprint, "spec": doc}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
