"""Parallel sweep runner with a content-addressed result cache.

Every paper figure and benchmark sweep is a grid of *independent,
deterministic* simulations -- the exact property the engine guarantees.
This package exploits it twice over:

- :class:`SweepRunner` fans a flat list of :class:`RunSpec` values out
  over worker processes and merges results in spec order, so
  ``--jobs N`` output is byte-identical to the serial path;
- :class:`RunCache` stores each run's metrics under a content address
  (canonical spec digest + a fingerprint of the simulator/protocol/
  analyzer sources), so warm reruns of figures and benchmarks skip
  simulation entirely and invalidation is automatic.

Quick use::

    from repro.paperfigs.comparison import sweep_processes
    from repro.sweep import RunCache, SweepRunner

    runner = SweepRunner(jobs=4, cache=RunCache("artifacts/runcache"))
    rows = sweep_processes(runner=runner)       # cold: parallel
    rows_again = sweep_processes(runner=runner) # warm: all cache hits
    assert rows == rows_again

See docs/performance.md for cache layout, keying, and the determinism
guarantees.
"""

from repro.sweep.cache import (
    CACHE_VERSION,
    FINGERPRINT_PACKAGES,
    RunCache,
    code_fingerprint,
)
from repro.sweep.runner import SweepRunner, SweepStats, run_specs
from repro.sweep.spec import (
    LatencySpec,
    RunSpec,
    SPEC_VERSION,
    canonical_spec,
    spec_digest,
)
from repro.sweep.worker import execute_spec, run_spec

__all__ = [
    "CACHE_VERSION",
    "FINGERPRINT_PACKAGES",
    "LatencySpec",
    "RunCache",
    "RunSpec",
    "SPEC_VERSION",
    "SweepRunner",
    "SweepStats",
    "canonical_spec",
    "code_fingerprint",
    "execute_spec",
    "run_spec",
    "run_specs",
    "spec_digest",
]
