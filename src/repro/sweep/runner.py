"""The sweep orchestrator: parallel execution + cache, serial merge.

:class:`SweepRunner` turns a flat list of :class:`RunSpec` values into
the corresponding list of :class:`RunMetrics`, in **spec order**:

1. every spec's cache key is computed (canonical spec digest + code
   fingerprint) and the cache is consulted;
2. misses execute -- inline when ``jobs <= 1``, else fanned out over a
   ``ProcessPoolExecutor`` whose entry point is the module-level
   :func:`~repro.sweep.worker.execute_spec`;
3. results land in a by-index slot table, so the merged output is
   independent of worker completion order -- the parallel path is
   byte-identical to the serial one by construction;
4. fresh results are written back to the cache.

Determinism contract: nothing in this module draws on wall clocks,
unordered iteration, or scheduling order to produce *results*; the
only nondeterministic quantity handled (worker wall time) flows
exclusively into observability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import NULL_OBS, Obs
from repro.sweep.cache import (
    FINGERPRINT_PACKAGES,
    RunCache,
    code_fingerprint,
)
from repro.sweep.spec import RunSpec, spec_digest
from repro.sweep.worker import execute_spec

__all__ = ["SweepRunner", "SweepStats", "run_specs"]


@dataclass
class SweepStats:
    """Counters accumulated across a runner's lifetime."""

    jobs: int = 1
    runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: sum of per-run worker wall seconds (fresh runs only).
    sim_seconds: float = 0.0
    #: corrupted cache entries discarded during lookups.
    cache_discarded: int = 0

    def to_dict(self) -> Dict:
        return {
            "jobs": self.jobs,
            "runs": self.runs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "sim_seconds": round(self.sim_seconds, 6),
            "cache_discarded": self.cache_discarded,
        }


@dataclass
class SweepRunner:
    """Executes run specs with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker process count; ``<= 1`` runs inline in this process
        (no pool, no pickling) -- the reference serial path.
    cache:
        A :class:`RunCache`, or None to disable caching entirely.
    obs:
        Observability handle; when enabled the runner records
        ``sweep.runs`` / ``sweep.cache_hits`` / ``sweep.cache_misses``
        counters, the ``sweep.jobs`` gauge, and a
        ``sweep.run_seconds`` histogram of per-run worker wall time.
    fingerprint:
        Override for the code fingerprint (tests use this to model
        code changes); None computes the real one on first use.
    progress:
        Optional :class:`repro.obs.progress.ProgressSink`; receives
        completion ticks (specs done, cache hit rate) during cache
        consult and parallel execution.  Telemetry only: results are
        still merged by index, so output stays byte-identical whether
        or not a sink is attached.
    worker / digest_fn / decode / fingerprint_packages:
        The pluggable work kind.  The defaults run simulation specs
        (:func:`~repro.sweep.worker.execute_spec`); the model checker
        reuses the whole orchestration -- pool, by-index merge, result
        cache -- by substituting its own trio (see
        :mod:`repro.mck.parallel`).  ``worker`` must be a module-level
        (picklable) callable returning ``(json payload, wall seconds)``;
        ``digest_fn(spec, fingerprint)`` must be a stable content
        address; ``decode(payload)`` rebuilds the result value and
        raises ``ValueError`` on schema drift (mapped to a cache miss).
    """

    jobs: int = 1
    cache: Optional[RunCache] = None
    obs: Obs = NULL_OBS
    progress: Optional[Any] = None
    fingerprint: Optional[str] = None
    worker: Callable[[Any], Tuple[Dict, float]] = None  # type: ignore[assignment]
    digest_fn: Callable[[Any, Optional[str]], str] = None  # type: ignore[assignment]
    decode: Callable[[Dict], Any] = None  # type: ignore[assignment]
    fingerprint_packages: Sequence[str] = FINGERPRINT_PACKAGES
    stats: SweepStats = field(default_factory=SweepStats)

    def __post_init__(self) -> None:
        if self.worker is None:
            self.worker = execute_spec
        if self.digest_fn is None:
            self.digest_fn = spec_digest
        if self.decode is None:
            from repro.sim.serialize import run_metrics_from_dict

            self.decode = run_metrics_from_dict

    def run(self, specs: Sequence[Any]) -> List:
        """Decoded results for every spec, in spec order."""
        specs = list(specs)
        self.stats.jobs = max(self.stats.jobs, self.jobs)
        self.stats.runs += len(specs)
        results: List = [None] * len(specs)

        keys: List[Optional[str]] = [None] * len(specs)
        misses: List[int] = []
        if self.cache is not None:
            if self.fingerprint is None:
                self.fingerprint = code_fingerprint(
                    tuple(self.fingerprint_packages))
            discarded_before = self.cache.discarded
            for i, spec in enumerate(specs):
                keys[i] = self.digest_fn(spec, self.fingerprint)
                payload = self.cache.get(keys[i])
                if payload is None:
                    misses.append(i)
                    continue
                try:
                    results[i] = self.decode(payload)
                except ValueError:
                    # schema drift inside a well-formed entry: recompute.
                    misses.append(i)
                    results[i] = None
            self.stats.cache_discarded += (
                self.cache.discarded - discarded_before
            )
            self.stats.cache_hits += len(specs) - len(misses)
            self.stats.cache_misses += len(misses)
        else:
            misses = list(range(len(specs)))
        if self.progress is not None:
            hits = len(specs) - len(misses)
            self.progress.update(
                total=len(specs),
                cache_hits=hits,
                cache_hit_rate=round(hits / max(1, len(specs)), 4),
                done=hits,
            )

        fresh = self._execute([specs[i] for i in misses])
        obs_on = self.obs.enabled
        if obs_on:
            h_seconds = self.obs.registry.histogram("sweep.run_seconds")
        for i, (payload, wall) in zip(misses, fresh):
            results[i] = self.decode(payload)
            self.stats.sim_seconds += wall
            if obs_on:
                h_seconds.observe(wall)
            if self.cache is not None:
                self.cache.put(keys[i], payload)

        if obs_on:
            reg = self.obs.registry
            reg.counter("sweep.runs").inc(len(specs))
            reg.counter("sweep.cache_hits").inc(
                len(specs) - len(misses) if self.cache is not None else 0
            )
            reg.counter("sweep.cache_misses").inc(len(misses))
            reg.gauge("sweep.jobs").set(self.jobs)
        return results

    def _execute(self, specs: Sequence[Any]) -> List:
        """(payload dict, wall seconds) per spec, in spec order."""
        if not specs:
            return []
        progress = self.progress
        if self.jobs <= 1:
            out = []
            for spec in specs:
                out.append(self.worker(spec))
                if progress is not None:
                    self._tick_progress(progress, len(out))
            return out
        from concurrent.futures import ProcessPoolExecutor, as_completed

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            # Submission order is spec order; collecting each future by
            # position (not as_completed) keeps the merge deterministic
            # regardless of which worker finishes first.
            # self.worker is a dataclass field holding a module-level
            # function (never a bound method), so it pickles by name.
            futures = [pool.submit(self.worker, spec) for spec in specs]  # reprolint: disable=RL008
            if progress is not None:
                # Completion ticks only: nothing is *read* out of order,
                # so the positional merge below is untouched.
                for n_done, _ in enumerate(as_completed(futures), 1):
                    self._tick_progress(progress, n_done)
            return [f.result() for f in futures]

    def _tick_progress(self, progress, executed: int) -> None:
        hits = self.stats.cache_hits
        total = self.stats.runs
        progress.update(
            done=hits + executed,
            executed=executed,
            total=total,
            cache_hit_rate=round(hits / max(1, total), 4),
        )


def run_specs(
    specs: Sequence[RunSpec],
    *,
    jobs: int = 1,
    cache: Optional[RunCache] = None,
    obs: Obs = NULL_OBS,
) -> List:
    """One-shot convenience around :class:`SweepRunner`."""
    return SweepRunner(jobs=jobs, cache=cache, obs=obs).run(specs)
