"""Process-pool worker entry points.

Everything here is a **module-level function of picklable arguments**
-- the contract ``ProcessPoolExecutor`` imposes (the callable is
pickled by qualified name) and reprolint's RL008 enforces for this
package.  Workers receive a :class:`~repro.sweep.spec.RunSpec`, run the
simulation + full verification, and ship back the *serialized* metrics
dict: the same bytes-stable form the result cache stores, so a fresh
run and a cache hit are interchangeable by construction.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from repro.sweep.spec import RunSpec

__all__ = ["execute_spec", "run_spec"]


def run_spec(spec: RunSpec):
    """Run one spec and return its :class:`RunMetrics` (verified).

    Mirrors ``compare_on_schedule``'s per-protocol body: the schedule
    and latency model are rebuilt from the spec (both pure functions of
    it), the run goes through the full checker unless ``verify=False``,
    and a verification failure raises -- sweeps measure *verified*
    runs.
    """
    from repro.analysis.checker import check_run
    from repro.analysis.metrics import RunMetrics
    from repro.sim import run_schedule
    from repro.workloads.generators import random_schedule

    schedule = random_schedule(spec.config)
    result = run_schedule(
        spec.protocol, spec.n_processes, schedule,
        latency=spec.latency.build(),
    )
    report = None
    if spec.verify:
        report = check_run(result)
        if not report.ok:
            raise AssertionError(
                f"{spec.protocol} failed verification: {report.summary()}"
            )
    return RunMetrics.of(result, report)


def execute_spec(spec: RunSpec) -> Tuple[Dict, float]:
    """The pool entry point: ``(metrics dict, wall seconds)``.

    The wall time is observational only -- it feeds the obs histogram
    and the benchmark report, never the metrics or the cache payload,
    so results stay byte-identical across hosts and loads.
    """
    from repro.sim.serialize import run_metrics_to_dict

    t0 = time.perf_counter()  # reprolint: disable=RL001
    metrics = run_spec(spec)
    wall = time.perf_counter() - t0  # reprolint: disable=RL001
    return run_metrics_to_dict(metrics), wall
