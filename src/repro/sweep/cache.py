"""Content-addressed on-disk cache of run metrics.

Layout (under the cache root, default ``artifacts/runcache/``)::

    <root>/<key[:2]>/<key>.json

where ``key = spec_digest(spec, code_fingerprint())`` -- the sha256 of
the canonicalized :class:`~repro.sweep.spec.RunSpec` *and* a
fingerprint of every source file whose behaviour feeds the run's
metrics.  Any change to a spec field (protocol, seed, workload shape,
latency parameters) or to the simulator/protocol/analyzer code yields
a different key, so the cache never needs explicit invalidation: stale
entries are simply never addressed again.

Entries are written atomically (temp file + ``os.replace``) and read
defensively: a truncated, corrupted, or wrong-schema entry is deleted
and reported as a miss, never trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["CACHE_VERSION", "FINGERPRINT_PACKAGES", "RunCache",
           "code_fingerprint"]

#: Entry schema version; bumped on incompatible payload changes.
CACHE_VERSION = 2

#: Packages hashed into the code fingerprint.  The issue's floor is
#: {core, protocols, sim, workloads}; ``model`` and ``analysis`` are
#: included as a safety superset because cached *metrics* also depend
#: on the legality/safety checkers and the metric definitions, and
#: ``serve`` because ``sim.network.estimate_size`` delegates to the
#: serving layer's wire codec for exact byte counts.
FINGERPRINT_PACKAGES = (
    "analysis", "core", "model", "protocols", "serve", "sim", "workloads",
)

_fingerprint_memo: Dict[Tuple[str, ...], str] = {}


def code_fingerprint(packages: Sequence[str] = FINGERPRINT_PACKAGES) -> str:
    """sha256 over the sources of the given ``repro`` subpackages.

    Hashes ``(relative path, file bytes)`` pairs in sorted path order,
    so the value is stable across hosts and processes but changes with
    any edit to a hashed file.  Memoized per process: the sources
    cannot change under a running sweep.
    """
    key = tuple(packages)
    memo = _fingerprint_memo.get(key)
    if memo is not None:
        return memo
    import repro

    root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    for package in sorted(packages):
        pkg_dir = root / package
        if not pkg_dir.is_dir():
            raise ValueError(f"no such repro subpackage: {package!r}")
        for path in sorted(pkg_dir.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            digest.update(rel.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    value = digest.hexdigest()
    _fingerprint_memo[key] = value
    return value


class RunCache:
    """The on-disk store.  Keys are hex digests from
    :func:`~repro.sweep.spec.spec_digest`; payloads are JSON dicts
    (the serialized metrics of one run)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.discarded = 0  # corrupted entries dropped by get()

    def path_for(self, key: str) -> Path:
        if len(key) < 3 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under ``key``, or None.

        Every failure mode -- unreadable file, invalid JSON, wrong
        schema version, key mismatch (a truncated write that still
        parses) -- discards the entry and reports a miss, so a damaged
        cache degrades to recomputation, never to wrong results.
        """
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("cache_version") != CACHE_VERSION
            or doc.get("key") != key
            or not isinstance(doc.get("payload"), dict)
        ):
            self._discard(path)
            return None
        return doc["payload"]

    def put(self, key: str, payload: Dict) -> None:
        """Store ``payload`` under ``key`` atomically (write + rename),
        so a crashed or concurrent writer can truncate at worst its own
        temp file, never a published entry."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"cache_version": CACHE_VERSION, "key": key,
               "payload": payload}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)

    def _discard(self, path: Path) -> None:
        self.discarded += 1
        try:
            path.unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
