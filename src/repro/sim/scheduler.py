"""Delivery scheduling: when do buffered update messages get re-examined?

The paper's Figure 5 suspends a synchronization thread "till the
condition becomes true".  The substrate realizes the wakeup two ways:

- :class:`LegacyScanScheduler` -- the original strategy: after every
  apply, re-classify the pending buffer front-to-back and perform the
  first actionable message, restarting until a fixpoint.  O(B) per
  apply (O(B^2) per delivery burst), but works for *any* protocol
  because it only needs :meth:`~repro.core.base.Protocol.classify`.

- :class:`IndexedScheduler` -- a dependency-indexed wakeup structure:
  each buffered message is parked under its first missing apply event
  ``(process, seq)`` as reported by
  :meth:`~repro.core.base.Protocol.missing_deps`; when that event fires
  (:meth:`~repro.core.base.Protocol.apply_event` of an applied
  message), exactly the parked messages are woken -- O(1) amortized per
  apply.  A woken message that is still not applicable re-parks under
  its next missing dependency, so each message is woken at most once
  per dependency (<= n wakeups total).  Messages whose dependency list
  is exhausted while ``classify`` still says ``BUFFER`` (duplicates of
  already-applied writes, under ``duplicate_prob`` without ``dedup``)
  are *dead-parked*: they stay in the buffer forever, exactly like the
  wedged duplicates of the legacy path.

Both schedulers realize the same canonical drain order -- *apply the
oldest-buffered actionable message first, repeatedly* -- so seeded runs
produce byte-identical traces on either path
(``tests/integration/test_scheduler_differential.py``).  The legacy
restart-scan picks the lowest-position actionable message by
construction; the indexed path keeps woken messages in a min-heap keyed
by buffer arrival sequence, which coincides because a message becomes
actionable exactly when its last missing dependency fires (and is woken
at that moment).

Scheduler choice (``Node(scheduler=...)`` / ``SimCluster(scheduler=...)``):

- ``"auto"`` (default): indexed iff the protocol overrides
  ``missing_deps`` (OptP, ANBKH, the sequencer, partial replication);
  legacy otherwise (token batches, gossip, writing-semantics
  receivers, whose wait predicates are not enumerable as a finite
  static set of apply events).
- ``"indexed"``: indexed where supported, legacy fallback otherwise.
- ``"legacy"``: force the re-scan path (differential tests, the drain
  ablation benchmark).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import Disposition, Protocol, UpdateMessage
from repro.core.flatstate import DENSE_THRESHOLD, PendingMatrix
from repro.obs.spans import NULL_OBS, Obs

ApplyCallback = Callable[[UpdateMessage], None]
DiscardCallback = Callable[[UpdateMessage], None]
Clock = Callable[[], float]

#: Valid values for the ``scheduler`` argument of Node / SimCluster.
SCHEDULER_MODES = ("auto", "indexed", "legacy")


def supports_indexing(protocol: Protocol) -> bool:
    """True iff the protocol overrides :meth:`Protocol.missing_deps`."""
    return type(protocol).missing_deps is not Protocol.missing_deps


def make_scheduler(
    protocol: Protocol,
    mode: str = "auto",
    *,
    obs: Obs = NULL_OBS,
    clock: Optional[Clock] = None,
) -> "DeliveryScheduler":
    """Resolve a scheduler mode for ``protocol`` (see module docstring)."""
    if mode not in SCHEDULER_MODES:
        raise ValueError(
            f"unknown scheduler mode {mode!r}; known: {SCHEDULER_MODES}"
        )
    if mode != "legacy" and supports_indexing(protocol):
        return IndexedScheduler(protocol, obs=obs, clock=clock)
    return LegacyScanScheduler(protocol, obs=obs, clock=clock)


class DeliveryScheduler:
    """Owns a node's pending buffer and its wakeup policy.

    The hosting :class:`~repro.sim.node.Node` records trace events and
    mutates protocol state; the scheduler only decides *which* buffered
    message to hand back next.  Interaction protocol:

    - ``park(msg)`` -- ``classify`` said ``BUFFER`` at receipt;
    - ``notify_applied(msg)`` -- the node applied ``msg`` (receipt path
      or drain path); the scheduler marks dependencies satisfied;
    - ``pump(apply_cb, discard_cb)`` -- perform every now-actionable
      buffered message, oldest-buffered first, until a fixpoint.  The
      callbacks re-enter ``notify_applied``, so cascades (one apply
      unblocking the next) happen inside a single pump.
    """

    #: "legacy" or "indexed" (introspection / tests / benchmarks).
    mode: str = "abstract"

    def __init__(
        self,
        protocol: Protocol,
        *,
        obs: Obs = NULL_OBS,
        clock: Optional[Clock] = None,
    ):
        self.protocol = protocol
        #: observability handle; every hook call is gated on
        #: ``obs.enabled`` so disabled runs pay one branch per hook.
        self._obs = obs
        self._clock: Clock = clock if clock is not None else (lambda: 0.0)
        if obs.enabled:
            pid = protocol.process_id
            reg = obs.registry
            self._m_parks = reg.counter(
                "sched.parks", process=pid, mode=self.mode)
            self._m_wakeups = reg.counter("sched.wakeups", process=pid)
            self._m_reparks = reg.counter("sched.reparks", process=pid)
            self._m_dead_parked = reg.counter("sched.dead_parked", process=pid)
            self._m_scans = reg.counter("sched.scan_classifies", process=pid)
            self._g_buffer_depth = reg.gauge("sched.buffer_depth", process=pid)
            self._g_index_depth = reg.gauge("sched.index_depth", process=pid)

    def _first_missing_dep(
        self, msg: UpdateMessage
    ) -> Optional[Tuple[int, int]]:
        """The ``(process, seq)`` apply event ``msg`` is waiting on, or
        None when the protocol cannot enumerate it (span attribution)."""
        deps = self.protocol.missing_deps(msg)
        return deps[0] if deps else None

    def park(self, msg: UpdateMessage) -> None:
        raise NotImplementedError

    def notify_applied(self, msg: UpdateMessage) -> None:
        raise NotImplementedError

    def pump(self, apply_cb: ApplyCallback, discard_cb: DiscardCallback) -> None:
        raise NotImplementedError

    def buffered(self) -> List[UpdateMessage]:
        """Buffered messages in arrival order (introspection)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class LegacyScanScheduler(DeliveryScheduler):
    """The original strategy: full re-scan of the buffer per apply."""

    mode = "legacy"

    def __init__(self, protocol: Protocol, **kwargs):
        super().__init__(protocol, **kwargs)
        self._pending: List[UpdateMessage] = []

    def park(self, msg: UpdateMessage) -> None:
        self._pending.append(msg)
        if self._obs.enabled:
            self._m_parks.inc()
            self._g_buffer_depth.set(len(self._pending))
            # Attribution is best-effort on the legacy path: the
            # protocol may not enumerate its wait predicate at all.
            self._obs.sink.on_buffer(
                self._clock(), self.protocol.process_id, msg.wid,
                self._first_missing_dep(msg),
            )

    def notify_applied(self, msg: UpdateMessage) -> None:
        pass  # the next pump() re-scans everything anyway

    def pump(self, apply_cb: ApplyCallback, discard_cb: DiscardCallback) -> None:
        # Canonical order: perform the oldest actionable message, then
        # restart (an apply may enable messages parked earlier in the
        # buffer).  Removal is by index -- the previous
        # ``pending.remove(msg)`` re-scanned the list by value on every
        # hit, turning each sweep quadratic.
        pending = self._pending
        obs_on = self._obs.enabled
        i = 0
        while i < len(pending):
            msg = pending[i]
            disposition = self.protocol.classify(msg)
            if obs_on:
                self._m_scans.inc()
            if disposition is Disposition.BUFFER:
                i += 1
                continue
            del pending[i]
            if disposition is Disposition.APPLY:
                apply_cb(msg)
            else:
                discard_cb(msg)
            i = 0

    def buffered(self) -> List[UpdateMessage]:
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()


class IndexedScheduler(DeliveryScheduler):
    """Dependency-indexed wakeups: O(1) amortized per apply."""

    mode = "indexed"

    def __init__(self, protocol: Protocol, **kwargs):
        super().__init__(protocol, **kwargs)
        if not supports_indexing(protocol):
            raise TypeError(
                f"{type(protocol).__name__} does not implement missing_deps"
            )
        #: arrival order -> message; insertion-ordered, O(1) removal.
        self._buffered: Dict[int, UpdateMessage] = {}
        #: wakeup index: missing apply event -> parked (arrival, msg).
        self._parked: Dict[Tuple[int, int], List[Tuple[int, UpdateMessage]]] = {}
        #: woken messages awaiting re-examination, min-heap by arrival.
        self._woken: List[Tuple[int, UpdateMessage]] = []
        self._arrivals = 0
        #: counters for tests / benchmarks
        self.wakeups = 0
        self.dead_parked = 0

    # -- parking ---------------------------------------------------------------

    def park(self, msg: UpdateMessage) -> None:
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        dep = self._park_under_next_dep(seq, msg)
        if self._obs.enabled:
            self._m_parks.inc()
            self._g_buffer_depth.set(len(self._buffered))
            self._g_index_depth.set(len(self._parked))
            self._obs.sink.on_buffer(
                self._clock(), self.protocol.process_id, msg.wid, dep
            )

    def _park_under_next_dep(
        self, seq: int, msg: UpdateMessage
    ) -> Optional[Tuple[int, int]]:
        """Park under the first missing dependency; returns the key
        used (None = dead-parked)."""
        deps = self.protocol.missing_deps(msg)
        if deps:
            self._parked.setdefault(deps[0], []).append((seq, msg))
            return deps[0]
        # classify() said BUFFER yet no future apply can help:
        # permanently undeliverable (duplicate of an applied write).
        # It stays counted in the buffer, like the legacy path.
        self.dead_parked += 1
        if self._obs.enabled:
            self._m_dead_parked.inc()
        return None

    # -- wakeups ---------------------------------------------------------------

    def notify_applied(self, msg: UpdateMessage) -> None:
        key = self.protocol.apply_event(msg)
        entries = self._parked.pop(key, None)
        if entries:
            for entry in entries:
                heapq.heappush(self._woken, entry)
            self.wakeups += len(entries)
            if self._obs.enabled:
                self._m_wakeups.inc(len(entries))
                self._g_index_depth.set(len(self._parked))

    def pump(self, apply_cb: ApplyCallback, discard_cb: DiscardCallback) -> None:
        woken = self._woken
        obs_on = self._obs.enabled
        while woken:
            seq, msg = heapq.heappop(woken)
            if seq not in self._buffered:  # pragma: no cover - defensive
                continue
            disposition = self.protocol.classify(msg)
            if disposition is Disposition.BUFFER:
                dep = self._park_under_next_dep(seq, msg)
                if obs_on:
                    # woken but still blocked: re-parked under the next
                    # missing dependency (a new wait interval).
                    self._m_reparks.inc()
                    self._g_index_depth.set(len(self._parked))
                    self._obs.sink.on_repark(
                        self._clock(), self.protocol.process_id, msg.wid, dep
                    )
                continue
            del self._buffered[seq]
            if disposition is Disposition.APPLY:
                apply_cb(msg)  # re-enters notify_applied -> may re-fill woken
            else:
                discard_cb(msg)

    # -- introspection -----------------------------------------------------------

    def buffered(self) -> List[UpdateMessage]:
        return list(self._buffered.values())

    def __len__(self) -> int:
        return len(self._buffered)

    def clear(self) -> None:
        self._buffered.clear()
        self._parked.clear()
        self._woken.clear()


class FlatScheduler(DeliveryScheduler):
    """Counting wakeups over flat requirement rows (``core.flatstate``).

    The scalar schedulers re-enter :meth:`Protocol.classify` (a Python
    tuple loop) on receipt and on every wakeup.  The flat scheduler
    evaluates the activation predicate once, against the protocol's
    live progress vector, directly from the message's precomputed
    :class:`~repro.core.flatstate.FlatDeps` row:

    - :meth:`offer` checks the row (a sparse int loop for small
      fan-outs, one vectorized comparison above ``DENSE_THRESHOLD``)
      and either reports ``APPLY`` or parks the message under *every*
      unsatisfied dependency key with an unsatisfied-counter;
    - :meth:`notify_applied` decrements counters for the fired key --
      batching the per-delivery wakeup to one dict pop per apply -- and
      queues messages whose counter hits zero;
    - :meth:`pump` drains the ready heap oldest-arrival first.  The
      only *behavioural* recheck needed at pop time is the O(1) pivot
      test: progress components are monotone, so a satisfied ``>=``
      bound stays satisfied, and only the exact-match pivot can
      *overshoot* (a duplicate raced its original in; dead-park it,
      mirroring the scalar paths).  An undershoot is impossible -- the
      counter reaches zero only after the pivot's own key fired.  With
      obs on, the heap additionally carries flagged *recheck* entries
      so repark telemetry is decided at pop time, exactly where the
      indexed scheduler decides it (span parity:
      ``tests/integration/test_flat_obs_parity.py``).

    Drain order is the same canonical oldest-buffered-actionable-first
    realized by both scalar schedulers, so flat runs stay
    byte-identical (``tests/integration/test_flatstate_differential.py``).
    """

    mode = "flat"

    def __init__(self, protocol: Protocol, **kwargs):
        super().__init__(protocol, **kwargs)
        if not type(protocol).supports_flat_state:
            raise TypeError(
                f"{type(protocol).__name__} does not support the flat backend"
            )
        fp = protocol.flat_progress()
        if fp is None:
            raise TypeError(
                "enable_flat_state() must run before the FlatScheduler "
                "is constructed"
            )
        self._fp = fp
        #: arrival order -> message; insertion-ordered, O(1) removal.
        self._buffered: Dict[int, UpdateMessage] = {}
        #: arrival order -> [msg, deps, unsatisfied-count].
        self._slots: Dict[int, List] = {}
        #: wakeup index: apply-event key -> arrival seqs parked under it.
        self._parked: Dict[Tuple[int, int], List[int]] = {}
        #: ready-to-apply arrivals, min-heap.
        self._ready: List[int] = []
        self._arrivals = 0
        #: resolved-once fast paths for the default key functions.
        self._default_apply_key = (
            type(protocol).apply_event is Protocol.apply_event
        )
        self._default_dep_key = (
            type(protocol).flat_dep_key is Protocol.flat_dep_key
        )
        #: counters for tests / benchmarks (IndexedScheduler parity).
        self.wakeups = 0
        self.dead_parked = 0

    # -- receipt ---------------------------------------------------------------

    def offer(self, msg: UpdateMessage) -> Disposition:
        """Classify ``msg`` against the flat predicate; parks on BUFFER.

        Replaces the scalar ``classify`` + ``park`` pair: the caller
        records its trace events from the returned disposition and, on
        ``APPLY``, performs the apply and pumps.
        """
        deps = msg.flat_deps
        if deps is None:
            deps = self.protocol.flat_deps(msg)
        fast = self._fp.fast
        pivot = deps.pivot
        missing: List[Tuple[int, int]] = []
        if pivot is not None:
            d = fast[pivot] - deps.pivot_req
            if d > 0:
                # Duplicate of an already-applied write: permanently
                # undeliverable, dead-park (wedged-buffer semantics).
                self._dead_park(msg)
                return Disposition.BUFFER
            if d < 0:
                # Pivot first: missing_deps() of every flat-capable
                # protocol lists the pivot dependency before the plain
                # >= bounds, and span wait-interval sequences must match
                # the indexed scheduler's dep order exactly
                # (tests/integration/test_flat_obs_parity.py).
                missing.append((pivot, deps.pivot_req))
        items = deps.items
        if len(items) <= DENSE_THRESHOLD:
            for c, req in items:
                if fast[c] < req:
                    missing.append((c, req))
        else:
            row = deps.row
            for c in np.flatnonzero(row > self._fp.vec):
                c = int(c)
                if c != pivot:
                    missing.append((c, int(row[c])))
        if not missing:
            return Disposition.APPLY
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        parked = self._parked
        if self._default_dep_key:
            keys = missing
            for key in keys:
                parked.setdefault(key, []).append(seq)
        else:
            dep_key = self.protocol.flat_dep_key
            keys = [dep_key(c, req) for c, req in missing]
            for key in keys:
                parked.setdefault(key, []).append(seq)
        # slot[3] is the ordered still-unsatisfied key list; only span
        # emission reads it (notify_applied advances it when obs is on).
        # slot[4] marks a pending obs recheck entry in the ready heap.
        self._slots[seq] = [msg, deps, len(missing), keys, False]
        if self._obs.enabled:
            self._m_parks.inc()
            self._g_buffer_depth.set(len(self._buffered))
            self._g_index_depth.set(len(parked))
            self._obs.sink.on_buffer(
                self._clock(), self.protocol.process_id, msg.wid, keys[0]
            )
        return Disposition.BUFFER

    def _dead_park(self, msg: UpdateMessage) -> None:
        seq = self._arrivals
        self._arrivals += 1
        self._buffered[seq] = msg
        self.dead_parked += 1
        if self._obs.enabled:
            self._m_parks.inc()
            self._m_dead_parked.inc()
            self._g_buffer_depth.set(len(self._buffered))
            self._obs.sink.on_buffer(
                self._clock(), self.protocol.process_id, msg.wid, None
            )

    def park(self, msg: UpdateMessage) -> None:  # pragma: no cover
        raise NotImplementedError(
            "the flat path classifies and parks in one offer() call"
        )

    # -- wakeups ---------------------------------------------------------------

    def notify_applied(self, msg: UpdateMessage) -> None:
        if self._default_apply_key:
            key = (msg.sender, msg.wid.seq)
        else:
            key = self.protocol.apply_event(msg)
        seqs = self._parked.pop(key, None)
        if seqs:
            slots = self._slots
            ready = self._ready
            obs_on = self._obs.enabled
            for seq in seqs:
                slot = slots[seq]
                slot[2] -= 1
                if slot[2] == 0:
                    heapq.heappush(ready, seq)
                elif obs_on:
                    # Head-advance == the indexed scheduler's repark:
                    # that path parks under only the first missing dep,
                    # so a satisfied head there means wake + re-park
                    # under the next still-missing dep.  Components are
                    # monotone, so "not yet fired" == "still missing"
                    # and the surviving original order matches a fresh
                    # missing_deps() enumeration.  The repark itself is
                    # *not* emitted here: the indexed scheduler only
                    # reparks a woken message when its pump pops it (in
                    # arrival order, interleaved with the cascade), and
                    # by then a same-instant apply may have cleared the
                    # dep entirely.  Queue a flagged recheck entry and
                    # let pump() make the same pop-time decision.
                    keys = slot[3]
                    was_head = keys[0] == key
                    keys.remove(key)
                    if was_head and not slot[4]:
                        slot[4] = True
                        heapq.heappush(ready, seq)
            self.wakeups += len(seqs)
            if obs_on:
                self._m_wakeups.inc(len(seqs))
                self._g_index_depth.set(len(self._parked))

    def pump(self, apply_cb: ApplyCallback, discard_cb: DiscardCallback) -> None:
        # discard_cb is part of the scheduler interface but unused: the
        # flat-capable protocols never classify DISCARD.
        ready = self._ready
        fast = self._fp.fast
        slots = self._slots
        while ready:
            seq = heapq.heappop(ready)
            slot = slots.get(seq)
            if slot is None:
                # A recheck entry whose message applied before the pop
                # reached it (its counter hit zero later in the same
                # cascade), or the stale twin of such a pair.
                continue
            if slot[2]:
                # Obs recheck entry: woken by its head dependency but
                # still blocked now that the cascade reached it -- emit
                # the repark the indexed scheduler would emit from its
                # pop-time classify, under the surviving head dep.
                slot[4] = False
                if self._obs.enabled:
                    self._m_reparks.inc()
                    self._obs.sink.on_repark(
                        self._clock(), self.protocol.process_id,
                        slot[0].wid, slot[3][0],
                    )
                continue
            del slots[seq]
            msg, deps = slot[0], slot[1]
            pivot = deps.pivot
            if pivot is not None and fast[pivot] != deps.pivot_req:
                # Overshoot only (undershoot cannot reach the heap): a
                # duplicate whose original applied first.  Keep it in
                # the buffer forever, like the scalar dead-park (which
                # reports the terminal wait as a dependency-less repark).
                self.dead_parked += 1
                if self._obs.enabled:
                    self._m_dead_parked.inc()
                    self._m_reparks.inc()
                    self._obs.sink.on_repark(
                        self._clock(), self.protocol.process_id, msg.wid, None
                    )
                continue
            del self._buffered[seq]
            apply_cb(msg)  # re-enters notify_applied -> may refill ready

    # -- batch view --------------------------------------------------------------

    def pending_matrix(self) -> PendingMatrix:
        """The pending set as a requirement matrix (audit/batch view;
        built on demand -- the live path keeps the counting index)."""
        pm = PendingMatrix(len(self._fp), obs=self._obs)
        for slot in self._slots.values():
            pm.add(slot[1])
        return pm

    # -- introspection -----------------------------------------------------------

    def buffered(self) -> List[UpdateMessage]:
        return list(self._buffered.values())

    def __len__(self) -> int:
        return len(self._buffered)

    def clear(self) -> None:
        self._buffered.clear()
        self._slots.clear()
        self._parked.clear()
        self._ready.clear()
