"""Latency models for the reliable channels of Section 3.1.

The paper's system model requires only that channels are reliable
(every message is received exactly once, nothing spurious) and that
there is no bound on relative speeds.  The latency model is therefore a
free parameter; these implementations cover the benchmark sweeps:

- :class:`ConstantLatency` -- fixed delay, the simplest regime;
- :class:`UniformLatency` / :class:`ExponentialLatency` -- random
  delays (per-message draws from the model's own seeded RNG);
- :class:`MatrixLatency` -- per-(sender, receiver) constant delays,
  modelling heterogeneous topologies (e.g. two nearby + one far site);
- :class:`ScriptedLatency` -- explicit per-message delays, used by
  :mod:`repro.paperfigs` to force the exact receipt interleavings of
  Figures 1, 2, 3 and 6;
- :class:`SeededLatency` -- delays drawn from a distribution but
  derived deterministically from ``(seed, sender, dest, message key)``,
  so two *different protocols* replaying the same workload see
  *identical* per-write delays.  This is what makes the Q1/Q2 delay
  comparisons apples-to-apples: the message schedule is pinned, only
  the buffering decisions differ.

All latencies are strictly positive; a zero or negative latency would
let a message arrive at its own send instant, which breaks receipt
ordering assumptions.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.core.base import ControlMessage, Message, UpdateMessage


def message_key(message: Message) -> Hashable:
    """A stable identity for a message, usable across protocol variants.

    Updates are keyed by their :class:`WriteId`; control messages by
    kind + their distinguishing payload fields (token/batch sequence
    numbers), so replays with the same seed get the same delays.
    """
    if isinstance(message, UpdateMessage):
        return ("update", message.wid)
    payload = message.payload
    marker = payload.get("batch_seq")
    return ("control", message.kind, message.sender, marker)


class LatencyModel(abc.ABC):
    """Delay generator for one message hop."""

    @abc.abstractmethod
    def latency(self, sender: int, dest: int, message: Message) -> float:
        """Delay (strictly positive) for ``message`` on ``sender->dest``."""

    def fork(self) -> "LatencyModel":
        """A fresh, independent copy with the model's initial state.

        Clusters fork the model per run so repeated runs from the same
        configuration are identical.
        """
        return self


class ConstantLatency(LatencyModel):
    """Every hop takes exactly ``delay``."""

    def __init__(self, delay: float = 1.0):
        if delay <= 0:
            raise ValueError("latency must be strictly positive")
        self.delay = delay

    def latency(self, sender: int, dest: int, message: Message) -> float:
        return self.delay


class MatrixLatency(LatencyModel):
    """Per-(sender, dest) constant delays from a full ``n x n`` matrix."""

    def __init__(self, matrix: Sequence[Sequence[float]]):
        self.matrix = [list(row) for row in matrix]
        n = len(self.matrix)
        for i, row in enumerate(self.matrix):
            if len(row) != n:
                raise ValueError("latency matrix must be square")
            for j, d in enumerate(row):
                if i != j and d <= 0:
                    raise ValueError(f"latency[{i}][{j}] must be positive")

    def latency(self, sender: int, dest: int, message: Message) -> float:
        return self.matrix[sender][dest]


class UniformLatency(LatencyModel):
    """Delays uniform in ``[lo, hi]``, drawn from a seeded RNG."""

    def __init__(self, lo: float, hi: float, seed: int = 0):
        if lo <= 0 or hi < lo:
            raise ValueError("need 0 < lo <= hi")
        self.lo, self.hi, self.seed = lo, hi, seed
        self._rng = random.Random(seed)

    def latency(self, sender: int, dest: int, message: Message) -> float:
        return self._rng.uniform(self.lo, self.hi)

    def fork(self) -> "UniformLatency":
        return UniformLatency(self.lo, self.hi, self.seed)


class ExponentialLatency(LatencyModel):
    """Delays ``min_delay + Exp(mean)`` -- heavy-ish tail, occasional
    stragglers: the regime where message reordering (and hence write
    delays) actually happens."""

    def __init__(self, mean: float, min_delay: float = 0.01, seed: int = 0):
        if mean <= 0 or min_delay <= 0:
            raise ValueError("mean and min_delay must be positive")
        self.mean, self.min_delay, self.seed = mean, min_delay, seed
        self._rng = random.Random(seed)

    def latency(self, sender: int, dest: int, message: Message) -> float:
        return self.min_delay + self._rng.expovariate(1.0 / self.mean)

    def fork(self) -> "ExponentialLatency":
        return ExponentialLatency(self.mean, self.min_delay, self.seed)


class ScriptedLatency(LatencyModel):
    """Explicit per-message delays: ``script[(message key, dest)]``.

    The key is :func:`message_key`'s value; missing entries fall back
    to ``default``.  Used to force the exact arrival interleavings of
    the paper's figures.
    """

    def __init__(
        self,
        script: Dict[Tuple[Hashable, int], float],
        default: float = 1.0,
    ):
        if default <= 0:
            raise ValueError("default latency must be positive")
        for (key, dest), d in script.items():
            if d <= 0:
                raise ValueError(f"scripted latency for {key}->{dest} must be positive")
        self.script = dict(script)
        self.default = default

    def latency(self, sender: int, dest: int, message: Message) -> float:
        return self.script.get((message_key(message), dest), self.default)


class SeededLatency(LatencyModel):
    """Deterministic per-message delays, identical across protocols.

    The delay for a hop is drawn from ``dist`` using an RNG seeded by
    ``(seed, sender, dest, message key)``.  Two runs of *different*
    protocols over the same open-loop workload therefore deliver each
    write's message at exactly the same time -- the precondition for a
    fair write-delay comparison (DESIGN.md, "Open-loop vs closed-loop").

    ``dist``: ``"uniform"`` over ``[lo, hi]`` or ``"exponential"`` with
    the given ``mean`` (plus ``min_delay``).
    """

    def __init__(
        self,
        seed: int,
        dist: str = "uniform",
        lo: float = 0.5,
        hi: float = 5.0,
        mean: float = 1.0,
        min_delay: float = 0.01,
    ):
        if dist not in ("uniform", "exponential"):
            raise ValueError(f"unknown dist {dist!r}")
        if dist == "uniform" and (lo <= 0 or hi < lo):
            raise ValueError("need 0 < lo <= hi")
        if dist == "exponential" and (mean <= 0 or min_delay <= 0):
            raise ValueError("mean and min_delay must be positive")
        self.seed = seed
        self.dist = dist
        self.lo, self.hi = lo, hi
        self.mean, self.min_delay = mean, min_delay

    def latency(self, sender: int, dest: int, message: Message) -> float:
        key = (self.seed, sender, dest, message_key(message))
        rng = random.Random(repr(key))
        if self.dist == "uniform":
            return rng.uniform(self.lo, self.hi)
        return self.min_delay + rng.expovariate(1.0 / self.mean)
