"""Reliable-channel network substrate (Section 3.1 system model).

Guarantees implemented:

- every message sent is delivered exactly once (no loss, no
  duplication, no spurious messages);
- delivery is asynchronous with per-hop delays from a
  :class:`repro.sim.latency.LatencyModel`;
- channels are **not** FIFO by default (two messages on the same
  channel may overtake each other) -- the paper's protocols must and do
  tolerate this; ``fifo=True`` serializes each (sender, dest) channel
  for the ablation benchmark.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.core.base import Message, UpdateMessage
from repro.obs.spans import NULL_OBS, Obs
from repro.sim.engine import Engine
from repro.sim.latency import LatencyModel

#: Minimal spacing enforced between FIFO deliveries on one channel.
FIFO_EPSILON = 1e-9

Deliver = Callable[[int, Message], None]


class Network:
    """Routes messages between processes with simulated latencies."""

    def __init__(
        self,
        engine: Engine,
        latency_model: LatencyModel,
        deliver: Deliver,
        *,
        fifo: bool = False,
        congestion_factor: float = 0.0,
        duplicate_prob: float = 0.0,
        duplicate_seed: int = 0,
        obs: Obs = NULL_OBS,
    ):
        """``congestion_factor`` > 0 models load-dependent latency: each
        hop's delay is scaled by ``1 + factor * in_flight_updates`` at
        send time, so bursts spread out instead of arriving in lockstep
        (the broadcast-storm regime of the burst workloads).

        ``duplicate_prob`` > 0 **violates** the paper's exactly-once
        channel assumption on purpose: each update message is delivered
        a second time with that probability (at an independent delay).
        Used by the ablation tests showing the assumption is
        load-bearing -- see ``Node(dedup=True)`` for the standard
        at-least-once fix.
        """
        if congestion_factor < 0:
            raise ValueError("congestion_factor must be >= 0")
        if not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError("duplicate_prob must be in [0, 1]")
        self.engine = engine
        self.latency_model = latency_model
        self.deliver = deliver
        self.fifo = fifo
        self.congestion_factor = congestion_factor
        self.duplicate_prob = duplicate_prob
        self._dup_rng = random.Random(f"dup-{duplicate_seed}")
        self.duplicates_injected = 0
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        self.messages_sent = 0
        self.bytes_estimate = 0
        #: update messages sent but not yet delivered -- the cluster's
        #: quiescence check waits for this to reach zero so late (e.g.
        #: to-be-discarded) messages still get traced.
        self.in_flight_updates = 0
        self._obs = obs
        if obs.enabled:
            reg = obs.registry
            self._m_update_msgs = reg.counter("net.messages", kind="update")
            self._m_control_msgs = reg.counter("net.messages", kind="control")
            self._m_bytes = reg.counter("net.bytes")
            self._m_duplicates = reg.counter("net.duplicates_injected")
            self._g_in_flight = reg.gauge("net.in_flight_updates")

    def send(self, sender: int, dest: int, message: Message) -> float:
        """Ship ``message`` from ``sender`` to ``dest``; returns the
        scheduled arrival time."""
        if dest == sender:
            raise ValueError("processes do not message themselves")
        delay = self.latency_model.latency(sender, dest, message)
        if delay <= 0:
            raise ValueError(
                f"latency model produced non-positive delay {delay}"
            )
        if self.congestion_factor:
            delay *= 1.0 + self.congestion_factor * self.in_flight_updates
        arrival = self.engine.now + delay
        if self.fifo:
            chan = (sender, dest)
            floor = self._last_arrival.get(chan, -1.0)
            if arrival <= floor:
                arrival = floor + FIFO_EPSILON
            self._last_arrival[chan] = arrival
        self.messages_sent += 1
        size = estimate_size(message)
        self.bytes_estimate += size
        is_update = isinstance(message, UpdateMessage)
        if is_update:
            self.in_flight_updates += 1
        if self._obs.enabled:
            (self._m_update_msgs if is_update else self._m_control_msgs).inc()
            self._m_bytes.inc(size)
            if is_update:
                self._g_in_flight.set(self.in_flight_updates)

        def arrive() -> None:
            if is_update:
                self.in_flight_updates -= 1
            self.deliver(dest, message)

        self.engine.schedule_at(arrival, arrive)

        if (
            self.duplicate_prob
            and is_update
            and self._dup_rng.random() < self.duplicate_prob
        ):
            # deliver a second copy at an independent (slightly padded)
            # delay -- the at-least-once failure mode
            extra = self._dup_rng.uniform(0.1, 2.0)
            self.duplicates_injected += 1
            self.in_flight_updates += 1
            if self._obs.enabled:
                self._m_duplicates.inc()

            def arrive_dup() -> None:
                self.in_flight_updates -= 1
                self.deliver(dest, message)

            self.engine.schedule_at(arrival + extra, arrive_dup)
        return arrival


def estimate_size(message: Message) -> int:
    """Exact wire size (bytes) of a message for overhead metrics.

    Sizes come from the serving layer's binary codec
    (:func:`repro.serve.codec.encoded_size`): the number returned here
    is the length of the canonical encoded frame body that
    ``repro-dsm serve`` would actually put on the wire, so simulated
    bytes/message columns and live deployments agree byte-for-byte.
    Messages the codec cannot represent (exotic payload values outside
    the tagged-value universe) fall back to the historical heuristic
    (8 bytes per scalar / vector component).
    """
    global _codec_size
    if _codec_size is None:
        # deferred: repro.serve pulls in repro.sim at package level
        from repro.serve.codec import encoded_size

        _codec_size = encoded_size
    exact = _codec_size(message)
    if exact is not None:
        return exact
    base = 24  # headers: sender, kind, identity
    payload = getattr(message, "payload", {})
    size = base
    for value in payload.values():
        size += _estimate_value(value)
    return size


_codec_size = None


def _estimate_value(value) -> int:
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, (tuple, list)):
        return 8 + sum(_estimate_value(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(
            _estimate_value(k) + _estimate_value(v) for k, v in value.items()
        )
    return 16
