"""Run traces: the event sequences ``E_i`` of Section 3.1.

A protocol run produces, at each process ``p_i``, a totally ordered
sequence of events ``E_i`` (ordered by ``<_i``).  The paper's event
vocabulary for a write ``w``:

- ``send_i(w)``     -- the issuer starts propagating ``w``;
- ``receipt_k(w)``  -- the message carrying ``w`` arrives at ``p_k``;
- ``apply_k(w)``    -- ``p_k`` updates its copy;
- ``return_i(x,v)`` -- a read by ``p_i`` returns ``v``.

This module adds bookkeeping kinds the analyzers need:

- ``WRITE``   -- the local issue of a write (its local apply; the
  paired ``SEND`` event carries the same timestamp);
- ``BUFFER``  -- the message was *not* applicable at receipt: by
  Definition 3 this is exactly a **write delay**;
- ``DISCARD`` -- a writing-semantics protocol dropped the message
  (write overwritten; never applied here).

The :class:`Trace` preserves one global, deterministic total order
(``seq``) consistent with simulation time, plus per-process ``E_i``
views and ``E_i|_e`` prefixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.model.history import History, LocalHistory
from repro.model.operations import BOTTOM, Read, Write, WriteId


class EventKind(enum.Enum):
    SEND = "send"
    RECEIPT = "receipt"
    APPLY = "apply"
    RETURN = "return"
    WRITE = "write"      # local issue (includes the local apply)
    BUFFER = "buffer"    # write delay (Definition 3)
    DISCARD = "discard"  # writing semantics: overwritten, dropped

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TraceEvent:
    """One event of some ``E_i``.

    ``seq`` is a run-global sequence number: events with equal
    simulation ``time`` keep their execution order.
    """

    seq: int
    time: float
    process: int
    kind: EventKind
    wid: Optional[WriteId] = None
    variable: Optional[Hashable] = None
    value: Any = None
    read_from: Optional[WriteId] = None
    #: optional protocol debug-state snapshot (Figure 6 evolutions)
    state: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        core = f"t={self.time:.3f} p{self.process} {self.kind}"
        if self.wid is not None:
            core += f" {self.wid}"
        if self.kind is EventKind.RETURN:
            core += f" {self.variable}={self.value!r}"
        return core


class Trace:
    """An append-only run trace with per-process and per-write indexes."""

    def __init__(self, n_processes: int):
        self.n_processes = n_processes
        self._events: List[TraceEvent] = []
        self._per_process: List[List[TraceEvent]] = [
            [] for _ in range(n_processes)
        ]
        # (process, wid) -> apply event, for O(1) safety checks
        self._apply_index: Dict[Tuple[int, WriteId], TraceEvent] = {}
        self._receipt_index: Dict[Tuple[int, WriteId], TraceEvent] = {}

    def _sync(self) -> None:
        """Materialize deferred raw records (no-op on the base trace).

        Every reader calls this first, so :class:`FlatTrace`'s compact
        append path stays invisible to the analyzers: by the time any
        view is taken, the indexes are complete and identical to what
        eager recording would have produced.
        """

    # -- recording ----------------------------------------------------------

    def record(
        self,
        time: float,
        process: int,
        kind: EventKind,
        *,
        wid: Optional[WriteId] = None,
        variable: Optional[Hashable] = None,
        value: Any = None,
        read_from: Optional[WriteId] = None,
        state: Optional[Dict[str, Any]] = None,
        registers_apply: Optional[bool] = None,
    ) -> TraceEvent:
        """Append an event.

        ``registers_apply`` overrides whether the event enters the
        apply index: a WRITE event normally doubles as the issuer's
        local apply (Figure 4, line 3), but protocols that *defer*
        their own apply (sequencer baseline) pass False and report the
        real apply later as an APPLY event.
        """
        ev = TraceEvent(
            seq=len(self._events),
            time=time,
            process=process,
            kind=kind,
            wid=wid,
            variable=variable,
            value=value,
            read_from=read_from,
            state=state,
        )
        self._events.append(ev)
        self._per_process[process].append(ev)
        if registers_apply is None:
            registers_apply = kind in (EventKind.APPLY, EventKind.WRITE)
        if registers_apply and wid is not None:
            key = (process, wid)
            if key in self._apply_index:
                raise AssertionError(f"duplicate apply of {wid} at p{process}")
            self._apply_index[key] = ev
        if kind is EventKind.RECEIPT and wid is not None:
            # keep the FIRST receipt: duplicates (gossip redundancy)
            # arrive later and are not the paper's receipt_k(w) event
            self._receipt_index.setdefault((process, wid), ev)
        return ev

    def record_compact(
        self,
        time: float,
        process: int,
        kind: EventKind,
        wid: Optional[WriteId] = None,
        variable: Optional[Hashable] = None,
        value: Any = None,
    ) -> None:
        """Record a state-less event with default apply-registration.

        The hot-path entry point of the flat backend: on the base trace
        it is plain :meth:`record`; :class:`FlatTrace` overrides it with
        a deferred raw append (no ``TraceEvent`` construction until a
        reader needs one).
        """
        self.record(time, process, kind, wid=wid, variable=variable,
                    value=value)

    # -- branching -----------------------------------------------------------

    def clone_shared(self) -> "Trace":
        """An independent trace sharing the (frozen) event objects.

        Appending to either copy leaves the other untouched; the events
        themselves are immutable, so sharing is safe.  This is the
        branch-point snapshot used by the model checker
        (:meth:`repro.mck.cluster.ControlledCluster.clone`), where a
        generic deepcopy of the trace would dominate exploration cost.
        Identity of shared events is preserved: ``apply_event`` returns
        the same object in both copies (callers use ``is`` checks to
        tell a registering WRITE from a deferred one).
        """
        self._sync()
        new = Trace.__new__(Trace)
        new.n_processes = self.n_processes
        new._events = list(self._events)
        new._per_process = [list(evs) for evs in self._per_process]
        new._apply_index = dict(self._apply_index)
        new._receipt_index = dict(self._receipt_index)
        return new

    # -- views ---------------------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        self._sync()
        return self._events

    def process_events(self, process: int) -> List[TraceEvent]:
        """``E_i``: the event sequence at ``process``."""
        self._sync()
        return self._per_process[process]

    def prefix_before(self, process: int, event: TraceEvent) -> List[TraceEvent]:
        """``E_i|_e``: the prefix of ``E_i`` strictly before ``event``."""
        self._sync()
        return [ev for ev in self._per_process[process] if ev.seq < event.seq]

    def of_kind(self, kind: EventKind) -> Iterator[TraceEvent]:
        self._sync()
        return (ev for ev in self._events if ev.kind is kind)

    # -- write-centric queries --------------------------------------------------

    def apply_event(self, process: int, wid: WriteId) -> Optional[TraceEvent]:
        """The apply of ``wid`` at ``process`` (the issuer's WRITE event
        doubles as its local apply), or None if never applied."""
        self._sync()
        return self._apply_index.get((process, wid))

    def receipt_event(self, process: int, wid: WriteId) -> Optional[TraceEvent]:
        self._sync()
        return self._receipt_index.get((process, wid))

    def apply_order(self, process: int) -> List[WriteId]:
        """WriteIds in the order they were applied at ``process``.

        A WRITE event counts only when it actually registered as the
        local apply (i.e. not deferred to a later APPLY event).
        """
        self._sync()
        return self._apply_order_synced(process)

    def _apply_order_synced(self, process: int) -> List[WriteId]:
        out = []
        for ev in self._per_process[process]:
            if ev.kind is EventKind.APPLY:
                out.append(ev.wid)
            elif ev.kind is EventKind.WRITE:
                if self._apply_index.get((process, ev.wid)) is ev:
                    out.append(ev.wid)
        return out

    def writes_issued(self) -> List[WriteId]:
        return [ev.wid for ev in self.of_kind(EventKind.WRITE)]

    def delayed(self, process: Optional[int] = None) -> List[TraceEvent]:
        """BUFFER events (write delays, Definition 3), optionally at one
        process."""
        self._sync()
        out = []
        for ev in self.of_kind(EventKind.BUFFER):
            if process is None or ev.process == process:
                out.append(ev)
        return out

    def discarded(self, process: Optional[int] = None) -> List[TraceEvent]:
        out = []
        for ev in self.of_kind(EventKind.DISCARD):
            if process is None or ev.process == process:
                out.append(ev)
        return out

    def delay_durations(self) -> List[float]:
        """For every delayed write that was eventually applied: the time
        between its receipt and its apply."""
        out = []
        for ev in self.of_kind(EventKind.BUFFER):
            applied = self.apply_event(ev.process, ev.wid)
            if applied is not None:
                out.append(applied.time - ev.time)
        return out

    # -- conversion ----------------------------------------------------------

    def to_history(self) -> History:
        """The observed global history: each process's own reads/writes.

        This is the :math:`\\hat H` the run *realized*; feeding it to
        :func:`repro.model.legality.check_causal_consistency` checks the
        run end-to-end.
        """
        self._sync()
        locals_: List[LocalHistory] = []
        for i in range(self.n_processes):
            ops = []
            for ev in self._per_process[i]:
                if ev.kind is EventKind.WRITE:
                    ops.append(
                        Write(
                            process=i,
                            index=len(ops),
                            variable=ev.variable,
                            value=ev.value,
                            wid=ev.wid,
                        )
                    )
                elif ev.kind is EventKind.RETURN:
                    ops.append(
                        Read(
                            process=i,
                            index=len(ops),
                            variable=ev.variable,
                            value=ev.value,
                            read_from=ev.read_from,
                        )
                    )
            locals_.append(LocalHistory(process=i, operations=tuple(ops)))
        return History(locals_)

    def __len__(self) -> int:
        self._sync()
        return len(self._events)

    def render(self, *, kinds: Optional[set] = None) -> str:
        """Human-readable dump (used by the paperfigs run renderers)."""
        self._sync()
        lines = []
        for ev in self._events:
            if kinds is None or ev.kind in kinds:
                lines.append(str(ev))
        return "\n".join(lines)


class NullTrace(Trace):
    """A trace that drops every event.

    Satisfies the :class:`~repro.sim.node.Node` contract at zero cost;
    the scheduler and protocol state are unaffected, only the event
    log is absent.  Used by non-recording replica servers and by the
    durability layer's recovery replay (where the pre-crash events are
    already on the authoritative trace and must not be re-recorded).
    """

    def record(self, *args, **kwargs):  # type: ignore[override]
        return None

    def record_compact(self, *args, **kwargs):  # type: ignore[override]
        return None


class FlatTrace(Trace):
    """A :class:`Trace` with a deferred, allocation-light append path.

    The flat backend records most events through
    :meth:`record_compact`, which appends a small plain tuple to a raw
    log instead of constructing a :class:`TraceEvent` and updating four
    indexes per event.  The first *reader* (any view or query) calls
    :meth:`_sync`, which materializes the raw log into the exact
    structures eager recording would have built -- same events, same
    ``seq`` numbers, same index contents -- so every analyzer and the
    JSONL serializer see a byte-identical trace.

    Full :meth:`record` calls (state snapshots, read events with
    ``read_from``, deferred-apply writes) interleave correctly: they
    are logged as pre-built events in the same raw stream, with ``seq``
    assigned from the combined materialized+raw length.
    """

    def __init__(self, n_processes: int):
        super().__init__(n_processes)
        #: deferred entries: ("c", time, process, kind, wid, variable,
        #: value) from record_compact, or ("f", event, registers_apply)
        #: from record.
        self._raw: List[tuple] = []

    # -- recording ----------------------------------------------------------

    def record(
        self,
        time: float,
        process: int,
        kind: EventKind,
        *,
        wid: Optional[WriteId] = None,
        variable: Optional[Hashable] = None,
        value: Any = None,
        read_from: Optional[WriteId] = None,
        state: Optional[Dict[str, Any]] = None,
        registers_apply: Optional[bool] = None,
    ) -> TraceEvent:
        ev = TraceEvent(
            seq=len(self._events) + len(self._raw),
            time=time,
            process=process,
            kind=kind,
            wid=wid,
            variable=variable,
            value=value,
            read_from=read_from,
            state=state,
        )
        self._raw.append(("f", ev, registers_apply))
        return ev

    def record_compact(
        self,
        time: float,
        process: int,
        kind: EventKind,
        wid: Optional[WriteId] = None,
        variable: Optional[Hashable] = None,
        value: Any = None,
    ) -> None:
        self._raw.append(("c", time, process, kind, wid, variable, value))

    # -- materialization -----------------------------------------------------

    def _sync(self) -> None:
        raw = self._raw
        if not raw:
            return
        events = self._events
        per_process = self._per_process
        apply_index = self._apply_index
        receipt_index = self._receipt_index
        for entry in raw:
            if entry[0] == "c":
                _, time, process, kind, wid, variable, value = entry
                ev = TraceEvent(
                    seq=len(events),
                    time=time,
                    process=process,
                    kind=kind,
                    wid=wid,
                    variable=variable,
                    value=value,
                )
                registers = kind in (EventKind.APPLY, EventKind.WRITE)
            else:
                ev = entry[1]
                registers = entry[2]
                if registers is None:
                    registers = ev.kind in (EventKind.APPLY, EventKind.WRITE)
                process = ev.process
                kind = ev.kind
                wid = ev.wid
            events.append(ev)
            per_process[process].append(ev)
            if registers and wid is not None:
                key = (process, wid)
                if key in apply_index:
                    raise AssertionError(
                        f"duplicate apply of {wid} at p{process}"
                    )
                apply_index[key] = ev
            if kind is EventKind.RECEIPT and wid is not None:
                receipt_index.setdefault((process, wid), ev)
        raw.clear()

    # -- fast queries --------------------------------------------------------

    def apply_order(self, process: int) -> List[WriteId]:
        """Fast path: answer from the raw log without materializing.

        Benchmarks call this right after a timed drain; a full
        materialization here would bill TraceEvent construction to the
        caller even though nothing else reads the trace.  Semantics
        match the base implementation: compact WRITE/APPLY entries
        always register their apply, full entries honor their recorded
        ``registers_apply``.
        """
        out = self._apply_order_synced(process)
        for entry in self._raw:
            if entry[0] == "c":
                if entry[2] != process:
                    continue
                kind = entry[3]
                if kind is EventKind.APPLY or kind is EventKind.WRITE:
                    out.append(entry[4])
            else:
                ev = entry[1]
                if ev.process != process:
                    continue
                registers = entry[2]
                if ev.kind is EventKind.APPLY:
                    out.append(ev.wid)
                elif ev.kind is EventKind.WRITE and (
                    registers is None or registers
                ):
                    out.append(ev.wid)
        return out
