"""Orchestration: n simulated processes + network + workload driver.

:class:`SimCluster` wires an :class:`~repro.sim.engine.Engine`, a
:class:`~repro.sim.network.Network` and ``n`` :class:`~repro.sim.node.Node`
instances around a protocol, then drives a workload to quiescence:

- :meth:`SimCluster.run_schedule` -- open-loop workloads
  (:class:`~repro.workloads.ops.Schedule`): every operation fires at
  its pinned time regardless of protocol behaviour;
- :meth:`SimCluster.run_programs` -- closed-loop workloads (one
  :class:`~repro.workloads.ops.Program` per process) with think times
  and value-polling waits.

Quiescence means: all workload operations executed **and** every issued
write is applied at every other process, minus the applies the protocol
legitimately skipped (``missing_applies``, writing-semantics variants).
A run that cannot reach quiescence (a liveness bug) raises
:class:`~repro.sim.engine.EngineLimitError` instead of hanging or
silently returning a short trace.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

from repro.core.base import BROADCAST, Outgoing, Protocol
from repro.core.flatstate import resolve_state_backend
from repro.obs.spans import NULL_OBS, Obs
from repro.sim.engine import Engine
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.result import RunResult
from repro.sim.trace import FlatTrace, Trace
from repro.workloads.ops import (
    Program,
    ReadOp,
    ReadStep,
    Schedule,
    WaitReadStep,
    WriteOp,
    WriteStep,
)

ProtocolFactory = Union[str, Callable[[int, int], Protocol]]


def _resolve_factory(factory: ProtocolFactory) -> Callable[[int, int], Protocol]:
    if callable(factory):
        return factory
    from repro.protocols import PROTOCOLS  # late import avoids cycles

    try:
        return PROTOCOLS[factory]
    except KeyError:
        raise ValueError(
            f"unknown protocol {factory!r}; known: {sorted(PROTOCOLS)}"
        ) from None


class SimCluster:
    """A single-use simulation of ``n`` processes running one protocol."""

    def __init__(
        self,
        protocol: ProtocolFactory,
        n_processes: int,
        *,
        latency: Optional[LatencyModel] = None,
        fifo: bool = False,
        record_state: bool = False,
        max_events: int = 2_000_000,
        max_time: float = float("inf"),
        crashes: Optional[dict] = None,
        deadline: Optional[float] = None,
        congestion_factor: float = 0.0,
        duplicate_prob: float = 0.0,
        dedup: bool = False,
        scheduler: str = "auto",
        state_backend: str = "auto",
        obs: Optional[Obs] = None,
    ):
        """See the class docstring; fault-injection extras:

        crashes:
            ``{process: crash_time}`` -- crash-stop faults (extension;
            the paper's model is failure-free).  With faults, liveness
            in the class-𝒫 sense is unattainable, so provide a
            ``deadline``.
        deadline:
            Stop the run at this simulated time even if not quiescent
            (the run result then shows partial progress; checkers that
            assume quiescence should not be applied wholesale).
        scheduler:
            Delivery scheduling strategy for buffered updates:
            ``"auto"`` (dependency-indexed wakeups where the protocol
            supports :meth:`~repro.core.base.Protocol.missing_deps`,
            legacy re-scan otherwise), ``"indexed"``, or ``"legacy"``
            (force the re-scan; differential tests and benchmarks).
            Forcing a mode pins ``state_backend="auto"`` to scalar so
            the requested scheduler actually runs; an explicit
            ``state_backend="flat"`` overrides it (the flat scheduler
            subsumes the indexed one).
        state_backend:
            Protocol-state bookkeeping (:mod:`repro.core.flatstate`):
            ``"auto"``/``"flat"`` run the struct-of-arrays backend for
            protocols that opt in (OptP, ANBKH, the sequencer, partial
            replication), falling back to scalar transparently for
            those that do not; ``"scalar"`` forces the oracle path.
            Flat and scalar runs are byte-identical by contract
            (``tests/integration/test_flatstate_differential.py``).
        obs:
            Observability handle (:class:`repro.obs.Obs`); default is
            the shared disabled handle -- zero instrumentation beyond
            one branch per hook, and trace-identical output.  Pass
            ``Obs.recording()`` to collect metrics + lifecycle spans
            (surfaced on :class:`~repro.sim.result.RunResult` and
            exportable as a Perfetto trace, see docs/observability.md).
        """
        if n_processes < 1:
            raise ValueError("need at least one process")
        if crashes:
            for proc, t in crashes.items():
                if not 0 <= proc < n_processes:
                    raise ValueError(f"crash process {proc} out of range")
                if t < 0:
                    raise ValueError("crash time must be >= 0")
            if deadline is None:
                raise ValueError(
                    "fault injection requires an explicit deadline "
                    "(liveness cannot be awaited under crashes)"
                )
        factory = _resolve_factory(protocol)
        self.n_processes = n_processes
        self.obs = obs if obs is not None else NULL_OBS
        self.engine = Engine(obs=self.obs)
        self.engine.diag_context = self._diag_context
        # Build the protocol instances first: the backend resolution
        # (and hence the trace flavour) depends on the protocol class.
        protocols = [factory(i, n_processes) for i in range(n_processes)]
        # An explicitly forced scalar scheduler mode pins "auto" to the
        # scalar backend: the caller asked to exercise that scheduler,
        # and the flat backend would silently replace it.
        if state_backend == "auto" and scheduler != "auto":
            flat = False
        else:
            flat = resolve_state_backend(state_backend, protocols[0])
        #: resolved protocol-state backend ("flat" or "scalar").
        self.state_backend = "flat" if flat else "scalar"
        self.trace = FlatTrace(n_processes) if flat else Trace(n_processes)
        model = (latency or ConstantLatency(1.0)).fork()
        self.network = Network(
            self.engine, model, self._deliver, fifo=fifo,
            congestion_factor=congestion_factor,
            duplicate_prob=duplicate_prob,
            obs=self.obs,
        )
        self.max_events = max_events
        self.max_time = max_time
        self.crashes = dict(crashes or {})
        self.deadline = deadline
        self._writes_issued = 0
        self._deferred_local_applies = 0
        self._remote_applies = 0
        self._work_remaining = 0
        self._ran = False
        self.nodes: List[Node] = [
            Node(
                protocols[i],
                self.trace,
                clock=lambda: self.engine.now,
                dispatch=self._dispatch,
                record_state=record_state,
                on_remote_apply=self._count_apply,
                on_write=self._count_write,
                dedup=dedup,
                scheduler=scheduler,
                state_backend=self.state_backend,
                obs=self.obs,
            )
            for i in range(n_processes)
        ]
        self.protocol_name = self.nodes[0].protocol.name

    # -- plumbing ---------------------------------------------------------------

    def _dispatch(self, sender: int, outgoing: Sequence[Outgoing]) -> None:
        for out in outgoing:
            if out.dest == BROADCAST:
                for dest in range(self.n_processes):
                    if dest != sender:
                        self.network.send(sender, dest, out.message)
            else:
                self.network.send(sender, out.dest, out.message)

    def _deliver(self, dest: int, message) -> None:
        self.nodes[dest].receive(message)

    def _diag_context(self) -> dict:
        """Extra state for :class:`~repro.sim.engine.EngineLimitError`:
        where the undeliverable messages are stuck."""
        return {
            "buffered_per_node": [len(n.scheduler) for n in self.nodes],
            "in_flight_updates": self.network.in_flight_updates,
        }

    def _count_apply(self) -> None:
        self._remote_applies += 1

    def _count_write(self, local_apply: bool) -> None:
        self._writes_issued += 1
        if not local_apply:
            # The issuer's own apply will arrive as an APPLY event and
            # is therefore part of the quiescence expectation.
            self._deferred_local_applies += 1

    def _quiescent(self) -> bool:
        if self.deadline is not None and self.engine.now >= self.deadline:
            return True
        if self._work_remaining > 0:
            return False
        if self.network.in_flight_updates > 0:
            # Late messages (possibly headed for a discard) must still
            # arrive, or the trace under-reports.
            return False
        expected = (
            self._writes_issued * (self.n_processes - 1)
            + self._deferred_local_applies
        )
        missing = sum(
            node.protocol.missing_applies() for node in self.nodes
        )
        return self._remote_applies + missing >= expected

    def _start(self) -> None:
        if self._ran:
            raise RuntimeError("SimCluster instances are single-use")
        self._ran = True
        for node in self.nodes:
            node.start()
        for proc, t in self.crashes.items():
            node = self.nodes[proc]
            self.engine.schedule_at(t, node.crash)
        for node in self.nodes:
            interval = node.protocol.timer_interval
            if interval is not None:
                # stagger first firings to avoid synchronized rounds
                first = interval * (1.0 + node.process_id / self.n_processes)
                self._schedule_timer(node, first, interval)
        if self.deadline is not None:
            # sentinel: guarantees the stop predicate gets evaluated at
            # the deadline even if no other event lands near it
            self.engine.schedule_at(self.deadline, lambda: None)

    def _schedule_timer(self, node: Node, at: float, interval: float) -> None:
        def fire() -> None:
            node.fire_timer()
            self._schedule_timer(node, self.engine.now + interval, interval)

        self.engine.schedule_at(at, fire)

    def _finish(self) -> RunResult:
        self.engine.run(
            stop=self._quiescent,
            max_events=self.max_events,
            max_time=self.max_time,
        )
        # Protocol counters live on the metrics registry; the list of
        # per-process dicts survives as the backward-compatible
        # ``RunResult.protocol_stats`` view (with ``stats_total`` as
        # the cluster-wide rollup).
        protocol_stats = [node.protocol.stats() for node in self.nodes]
        metrics = None
        if self.obs.enabled:
            self._publish_final_metrics(protocol_stats)
            metrics = self.obs.registry.collect()
        return RunResult(
            protocol_name=self.protocol_name,
            n_processes=self.n_processes,
            trace=self.trace,
            duration=self.engine.now,
            messages_sent=self.network.messages_sent,
            bytes_estimate=self.network.bytes_estimate,
            stores=[node.protocol.store_snapshot() for node in self.nodes],
            protocol_stats=protocol_stats,
            in_class_p=type(self.nodes[0].protocol).in_class_p,
            metrics=metrics,
            spans=self.obs.spans,
        )

    def _publish_final_metrics(self, protocol_stats) -> None:
        """End-of-run registry publication (not a hot path): protocol
        counters as labeled gauges, and the per-process write-delay
        distributions (Definition 3) as histograms."""
        reg = self.obs.registry
        for pid, stats in enumerate(protocol_stats):
            for key, value in stats.items():
                reg.gauge(f"protocol.{key}", protocol=self.protocol_name,
                          process=pid).set(value)
        for ev in self.trace.delayed():
            applied = self.trace.apply_event(ev.process, ev.wid)
            if applied is not None:
                reg.histogram("node.buffer_wait", process=ev.process).observe(
                    applied.time - ev.time
                )

    # -- open-loop ---------------------------------------------------------------

    def run_schedule(self, schedule: Schedule) -> RunResult:
        """Execute an open-loop workload to quiescence."""
        if schedule.max_process() >= self.n_processes:
            raise ValueError(
                f"schedule references process {schedule.max_process()} "
                f"but the cluster has {self.n_processes}"
            )
        self._start()
        self._work_remaining = schedule.n_ops
        for item in schedule:
            self.engine.schedule_at(
                item.time, self._make_op_runner(item.process, item.op)
            )
        return self._finish()

    def _make_op_runner(self, process: int, op) -> Callable[[], None]:
        node = self.nodes[process]

        def run() -> None:
            if isinstance(op, WriteOp):
                node.do_write(op.variable, op.value)
            elif isinstance(op, ReadOp):
                node.do_read(op.variable)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown op {op!r}")
            self._work_remaining -= 1

        return run

    # -- closed-loop --------------------------------------------------------------

    def run_programs(self, programs: Sequence[Program]) -> RunResult:
        """Execute one program per process to quiescence."""
        if len(programs) != self.n_processes:
            raise ValueError(
                f"need exactly {self.n_processes} programs, got {len(programs)}"
            )
        self._start()
        self._work_remaining = sum(1 for p in programs if len(p) > 0)
        for i, program in enumerate(programs):
            if len(program) > 0:
                self._advance(i, program, 0)
        return self._finish()

    def _advance(self, process: int, program: Program, idx: int) -> None:
        if idx >= len(program):
            self._work_remaining -= 1
            return
        step = program.steps[idx]
        self.engine.schedule_after(
            step.delay, lambda: self._run_step(process, program, idx)
        )

    def _run_step(self, process: int, program: Program, idx: int) -> None:
        node = self.nodes[process]
        step = program.steps[idx]
        if isinstance(step, WriteStep):
            node.do_write(step.variable, step.value)
            self._advance(process, program, idx + 1)
        elif isinstance(step, ReadStep):
            node.do_read(step.variable)
            self._advance(process, program, idx + 1)
        elif isinstance(step, WaitReadStep):
            self._poll(node, program, idx, step, step.max_polls)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step {step!r}")

    def _poll(
        self,
        node: Node,
        program: Program,
        idx: int,
        step: WaitReadStep,
        polls_left: int,
    ) -> None:
        value = node.do_read(step.variable)
        if step.matches(value):
            self._advance(node.process_id, program, idx + 1)
            return
        if polls_left <= 1:
            raise RuntimeError(
                f"p{node.process_id} gave up waiting for "
                f"{step.variable}={step.expect!r} after {step.max_polls} polls "
                f"(last value: {value!r})"
            )
        self.engine.schedule_after(
            step.poll,
            lambda: self._poll(node, program, idx, step, polls_left - 1),
        )


def run_schedule(
    protocol: ProtocolFactory,
    n_processes: int,
    schedule: Schedule,
    **kwargs,
) -> RunResult:
    """One-shot convenience: build a cluster and run an open-loop workload."""
    return SimCluster(protocol, n_processes, **kwargs).run_schedule(schedule)


def run_programs(
    protocol: ProtocolFactory,
    n_processes: int,
    programs: Sequence[Program],
    **kwargs,
) -> RunResult:
    """One-shot convenience: build a cluster and run a closed-loop workload."""
    return SimCluster(protocol, n_processes, **kwargs).run_programs(programs)
