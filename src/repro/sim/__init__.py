"""Discrete-event simulation substrate (the paper's system model, §3.1).

Asynchronous reliable message passing over a deterministic, seeded
event loop: every run is exactly replayable and every event is traced
for the analyzers.

Quick use::

    from repro.sim import SimCluster, run_schedule
    from repro.sim.latency import SeededLatency
    from repro.workloads.ops import Schedule, ScheduledOp, WriteOp

    sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x"))])
    result = run_schedule("optp", 3, sched, latency=SeededLatency(7))
    print(result.summary())
"""

from repro.sim.cluster import SimCluster, run_programs, run_schedule
from repro.sim.engine import Engine, EngineLimitError
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    MatrixLatency,
    ScriptedLatency,
    SeededLatency,
    UniformLatency,
)
from repro.sim.network import Network, estimate_size
from repro.sim.node import Node
from repro.sim.result import RunResult
from repro.sim.scheduler import (
    DeliveryScheduler,
    IndexedScheduler,
    LegacyScanScheduler,
    SCHEDULER_MODES,
    make_scheduler,
    supports_indexing,
)
from repro.sim.serialize import (
    run_metrics_from_dict,
    run_metrics_to_dict,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.sim.trace import EventKind, Trace, TraceEvent

__all__ = [
    "ConstantLatency",
    "DeliveryScheduler",
    "Engine",
    "EngineLimitError",
    "EventKind",
    "IndexedScheduler",
    "LegacyScanScheduler",
    "SCHEDULER_MODES",
    "ExponentialLatency",
    "LatencyModel",
    "MatrixLatency",
    "Network",
    "Node",
    "RunResult",
    "ScriptedLatency",
    "SeededLatency",
    "SimCluster",
    "Trace",
    "TraceEvent",
    "UniformLatency",
    "estimate_size",
    "make_scheduler",
    "run_metrics_from_dict",
    "run_metrics_to_dict",
    "run_programs",
    "run_schedule",
    "supports_indexing",
    "trace_from_jsonl",
    "trace_to_jsonl",
]
