"""Run results: everything the analyzers and benchmarks consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.model.history import History
from repro.model.operations import WriteId
from repro.obs.spans import MessageSpan
from repro.sim.trace import EventKind, Trace


@dataclass
class RunResult:
    """Outcome of one simulated (or asyncio) run.

    Attributes
    ----------
    protocol_name:
        The protocol's registry name.
    n_processes:
        Process count.
    trace:
        The full event trace (see :class:`repro.sim.trace.Trace`).
    duration:
        Final simulation time (or wall-clock seconds for the asyncio
        runtime).
    messages_sent / bytes_estimate:
        Network traffic counters.
    stores:
        Final replica snapshot per process (``variable -> (value, wid)``).
    protocol_stats:
        Per-process protocol counters (``stats()``) -- the
        backward-compatible view; :attr:`stats_total` is the
        cluster-wide rollup and the metrics registry snapshot
        (:attr:`metrics`) carries the same counters as labeled
        ``protocol.*`` gauges when observability is enabled.
    metrics:
        Metrics-registry snapshot (``MetricsRegistry.collect()``) for
        observability-enabled runs, else None.
    spans:
        Message-lifecycle spans (``send -> receipt -> [buffer] ->
        apply``, with blocking-dependency attribution) when the run
        used a span-recording sink, else None.
    """

    protocol_name: str
    n_processes: int
    trace: Trace
    duration: float
    messages_sent: int
    bytes_estimate: int
    stores: List[Dict[Hashable, Tuple[Any, Optional[WriteId]]]]
    protocol_stats: List[Dict[str, int]]
    #: whether the protocol belongs to class 𝒫 (liveness: every write
    #: applied everywhere).  Writing-semantics variants set this False.
    in_class_p: bool = True
    #: observability payloads (None unless the run enabled obs).
    metrics: Optional[Dict[str, Any]] = None
    spans: Optional[List[MessageSpan]] = None

    @cached_property
    def history(self) -> History:
        """The observed global history (each process's own ops)."""
        return self.trace.to_history()

    # -- headline metrics ------------------------------------------------------

    @property
    def write_delays(self) -> int:
        """Total write delays across all processes (Definition 3)."""
        return sum(1 for _ in self.trace.of_kind(EventKind.BUFFER))

    @property
    def writes_issued(self) -> int:
        return sum(1 for _ in self.trace.of_kind(EventKind.WRITE))

    @property
    def remote_applies(self) -> int:
        return sum(1 for _ in self.trace.of_kind(EventKind.APPLY))

    @property
    def discards(self) -> int:
        return sum(1 for _ in self.trace.of_kind(EventKind.DISCARD))

    def delays_per_process(self) -> List[int]:
        return [len(self.trace.delayed(k)) for k in range(self.n_processes)]

    def delay_durations(self) -> List[float]:
        return self.trace.delay_durations()

    @property
    def stats_total(self) -> Dict[str, int]:
        """Cluster-wide protocol-stat rollup: every ``stats()`` key
        summed across processes.  Recomputed per call -- the checker
        tests mutate ``protocol_stats`` in place to simulate liveness
        violations, so this must never cache."""
        total: Dict[str, int] = {}
        for stats in self.protocol_stats:
            for key, value in stats.items():
                total[key] = total.get(key, 0) + value
        return total

    def stat_total(self, key: str) -> int:
        """Sum a protocol stat (e.g. ``"skipped"``) across processes."""
        return sum(s.get(key, 0) for s in self.protocol_stats)

    def converged(self) -> bool:
        """Did all replicas end with identical visible values?

        For class-𝒫 protocols with quiescence this must hold for every
        variable written at least once; writing-semantics protocols
        converge too (skips apply the *final* value).
        """
        if not self.stores:
            return True
        variables = set()
        for store in self.stores:
            variables |= set(store.keys())
        for var in sorted(variables, key=repr):
            values = {store.get(var, (None, None))[1] for store in self.stores}
            if len(values) != 1:
                return False
        return True

    def summary(self) -> str:
        return (
            f"{self.protocol_name}: n={self.n_processes} "
            f"writes={self.writes_issued} delays={self.write_delays} "
            f"discards={self.discards} msgs={self.messages_sent} "
            f"t={self.duration:.3f}"
        )
