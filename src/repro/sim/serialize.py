"""Run (de)serialization: JSON-lines traces and run-summary dicts.

A dumped trace round-trips completely: per-process sequences, the
apply/receipt indexes (including deferred local applies of the
sequencer baseline), protocol state snapshots, and the BOTTOM sentinel.
All the analyzers accept a reloaded trace, so runs can be archived and
re-audited without re-simulating.

:func:`run_metrics_to_dict` / :func:`run_metrics_from_dict` round-trip
a :class:`~repro.analysis.metrics.RunMetrics` summary exactly (Python's
JSON float encoding is ``repr``-based, so every float survives
bit-for-bit) -- the payload format of the sweep runner's result cache
and of worker->parent transfers.  Loading is strict: unknown schema
versions or missing fields raise ``ValueError`` so the cache treats
damaged entries as misses instead of trusting them.

Format: one JSON object per line, first line a header::

    {"header": true, "n_processes": 3, "version": 1}
    {"seq": 0, "time": 0.0, "process": 0, "kind": "write", ...}

Operation *values* must be JSON-representable (the library's generated
values are strings; non-JSON user values fail the dump loudly rather
than corrupting silently).  Protocol *state snapshots* are best-effort:
integer vectors round-trip exactly (that is what the characterization
checker reads); exotic entries (e.g. the token protocol's pending map,
which contains WriteIds) degrade to ``{"__repr__": ...}`` strings.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.model.operations import BOTTOM, Bottom, WriteId
from repro.sim.trace import EventKind, Trace

FORMAT_VERSION = 1
_BOTTOM_MARKER = {"__bottom__": True}

#: Schema version of the RunMetrics summary dict.
METRICS_FORMAT_VERSION = 1

_DELAY_STATS_FIELDS = ("count", "mean", "p50", "p90", "p95", "p99",
                       "p999", "max")
_METRICS_FIELDS = (
    "protocol", "n_processes", "writes", "reads", "delays",
    "unnecessary_delays", "messages", "bytes_estimate", "remote_applies",
    "discards", "skipped", "suppressed", "duration",
)


def run_metrics_to_dict(metrics) -> dict:
    """A JSON-ready dict capturing a ``RunMetrics`` value exactly."""
    doc = {field: getattr(metrics, field) for field in _METRICS_FIELDS}
    doc["delay_stats"] = {
        field: getattr(metrics.delay_stats, field)
        for field in _DELAY_STATS_FIELDS
    }
    doc["metrics_version"] = METRICS_FORMAT_VERSION
    return doc


def run_metrics_from_dict(doc: dict):
    """Rebuild a ``RunMetrics`` from :func:`run_metrics_to_dict` output.

    Strict: a wrong version or a missing/extra field raises
    ``ValueError`` (the sweep cache maps that to a miss).
    """
    from repro.analysis.metrics import DelayStats, RunMetrics

    if not isinstance(doc, dict):
        raise ValueError(f"metrics payload must be a dict, got {type(doc)}")
    if doc.get("metrics_version") != METRICS_FORMAT_VERSION:
        raise ValueError(
            f"unsupported metrics version {doc.get('metrics_version')!r}"
        )
    expected = set(_METRICS_FIELDS) | {"delay_stats", "metrics_version"}
    if set(doc) != expected:
        raise ValueError(
            f"metrics payload fields {sorted(doc)} != {sorted(expected)}"
        )
    stats_doc = doc["delay_stats"]
    if not isinstance(stats_doc, dict) or set(stats_doc) != set(
        _DELAY_STATS_FIELDS
    ):
        raise ValueError(f"malformed delay_stats {stats_doc!r}")
    delay_stats = DelayStats(
        **{field: stats_doc[field] for field in _DELAY_STATS_FIELDS}
    )
    return RunMetrics(
        delay_stats=delay_stats,
        **{field: doc[field] for field in _METRICS_FIELDS},
    )


def _encode_value(value: Any) -> Any:
    if isinstance(value, Bottom):
        return _BOTTOM_MARKER
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and value.get("__bottom__"):
        return BOTTOM
    return value


def _encode_wid(wid: Optional[WriteId]) -> Optional[list]:
    return None if wid is None else [wid.process, wid.seq]


def _decode_wid(data: Optional[list]) -> Optional[WriteId]:
    return None if data is None else WriteId(data[0], data[1])


def _jsonable(val: Any) -> Any:
    """Best-effort JSON conversion for state entries (repr fallback)."""
    if isinstance(val, tuple):
        return [_jsonable(v) for v in val]
    if isinstance(val, dict):
        return {str(k): _jsonable(v) for k, v in val.items()}
    if isinstance(val, (str, int, float, bool)) or val is None:
        return val
    return {"__repr__": repr(val)}


def _encode_state(state: Optional[dict]) -> Optional[dict]:
    if state is None:
        return None
    return {key: _jsonable(val) for key, val in state.items()}


def _decode_state(state: Optional[dict]) -> Optional[dict]:
    if state is None:
        return None
    out = {}
    for key, val in state.items():
        if isinstance(val, list):
            val = tuple(val)
        elif isinstance(val, dict):
            val = {k: tuple(v) if isinstance(v, list) else v
                   for k, v in val.items()}
        out[key] = val
    return out


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize a trace to JSON-lines text."""
    lines = [json.dumps({
        "header": True,
        "version": FORMAT_VERSION,
        "n_processes": trace.n_processes,
    })]
    for ev in trace.events:
        registers = None
        if ev.kind is EventKind.WRITE:
            registers = trace.apply_event(ev.process, ev.wid) is ev
        lines.append(json.dumps({
            "seq": ev.seq,
            "time": ev.time,
            "process": ev.process,
            "kind": ev.kind.value,
            "wid": _encode_wid(ev.wid),
            "variable": ev.variable,
            "value": _encode_value(ev.value),
            "read_from": _encode_wid(ev.read_from),
            "state": _encode_state(ev.state),
            "registers_apply": registers,
        }))
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    """Rebuild a trace from JSON-lines text (strict: bad input raises)."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise ValueError("empty trace dump")
    header = json.loads(lines[0])
    if not header.get("header"):
        raise ValueError("first line must be the header object")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    trace = Trace(header["n_processes"])
    for expected_seq, line in enumerate(lines[1:]):
        data = json.loads(line)
        if data["seq"] != expected_seq:
            raise ValueError(
                f"event seq {data['seq']} out of order (expected "
                f"{expected_seq}) -- truncated or reordered dump?"
            )
        trace.record(
            data["time"],
            data["process"],
            EventKind(data["kind"]),
            wid=_decode_wid(data["wid"]),
            variable=data["variable"],
            value=_decode_value(data["value"]),
            read_from=_decode_wid(data["read_from"]),
            state=_decode_state(data["state"]),
            registers_apply=data["registers_apply"],
        )
    return trace
