"""Trace (de)serialization: JSON-lines export for offline analysis.

A dumped trace round-trips completely: per-process sequences, the
apply/receipt indexes (including deferred local applies of the
sequencer baseline), protocol state snapshots, and the BOTTOM sentinel.
All the analyzers accept a reloaded trace, so runs can be archived and
re-audited without re-simulating.

Format: one JSON object per line, first line a header::

    {"header": true, "n_processes": 3, "version": 1}
    {"seq": 0, "time": 0.0, "process": 0, "kind": "write", ...}

Operation *values* must be JSON-representable (the library's generated
values are strings; non-JSON user values fail the dump loudly rather
than corrupting silently).  Protocol *state snapshots* are best-effort:
integer vectors round-trip exactly (that is what the characterization
checker reads); exotic entries (e.g. the token protocol's pending map,
which contains WriteIds) degrade to ``{"__repr__": ...}`` strings.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.model.operations import BOTTOM, Bottom, WriteId
from repro.sim.trace import EventKind, Trace

FORMAT_VERSION = 1
_BOTTOM_MARKER = {"__bottom__": True}


def _encode_value(value: Any) -> Any:
    if isinstance(value, Bottom):
        return _BOTTOM_MARKER
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and value.get("__bottom__"):
        return BOTTOM
    return value


def _encode_wid(wid: Optional[WriteId]) -> Optional[list]:
    return None if wid is None else [wid.process, wid.seq]


def _decode_wid(data: Optional[list]) -> Optional[WriteId]:
    return None if data is None else WriteId(data[0], data[1])


def _jsonable(val: Any) -> Any:
    """Best-effort JSON conversion for state entries (repr fallback)."""
    if isinstance(val, tuple):
        return [_jsonable(v) for v in val]
    if isinstance(val, dict):
        return {str(k): _jsonable(v) for k, v in val.items()}
    if isinstance(val, (str, int, float, bool)) or val is None:
        return val
    return {"__repr__": repr(val)}


def _encode_state(state: Optional[dict]) -> Optional[dict]:
    if state is None:
        return None
    return {key: _jsonable(val) for key, val in state.items()}


def _decode_state(state: Optional[dict]) -> Optional[dict]:
    if state is None:
        return None
    out = {}
    for key, val in state.items():
        if isinstance(val, list):
            val = tuple(val)
        elif isinstance(val, dict):
            val = {k: tuple(v) if isinstance(v, list) else v
                   for k, v in val.items()}
        out[key] = val
    return out


def trace_to_jsonl(trace: Trace) -> str:
    """Serialize a trace to JSON-lines text."""
    lines = [json.dumps({
        "header": True,
        "version": FORMAT_VERSION,
        "n_processes": trace.n_processes,
    })]
    for ev in trace.events:
        registers = None
        if ev.kind is EventKind.WRITE:
            registers = trace.apply_event(ev.process, ev.wid) is ev
        lines.append(json.dumps({
            "seq": ev.seq,
            "time": ev.time,
            "process": ev.process,
            "kind": ev.kind.value,
            "wid": _encode_wid(ev.wid),
            "variable": ev.variable,
            "value": _encode_value(ev.value),
            "read_from": _encode_wid(ev.read_from),
            "state": _encode_state(ev.state),
            "registers_apply": registers,
        }))
    return "\n".join(lines) + "\n"


def trace_from_jsonl(text: str) -> Trace:
    """Rebuild a trace from JSON-lines text (strict: bad input raises)."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise ValueError("empty trace dump")
    header = json.loads(lines[0])
    if not header.get("header"):
        raise ValueError("first line must be the header object")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {header.get('version')!r}"
        )
    trace = Trace(header["n_processes"])
    for expected_seq, line in enumerate(lines[1:]):
        data = json.loads(line)
        if data["seq"] != expected_seq:
            raise ValueError(
                f"event seq {data['seq']} out of order (expected "
                f"{expected_seq}) -- truncated or reordered dump?"
            )
        trace.record(
            data["time"],
            data["process"],
            EventKind(data["kind"]),
            wid=_decode_wid(data["wid"]),
            variable=data["variable"],
            value=_decode_value(data["value"]),
            read_from=_decode_wid(data["read_from"]),
            state=_decode_state(data["state"]),
            registers_apply=data["registers_apply"],
        )
    return trace
