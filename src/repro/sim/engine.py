"""Deterministic discrete-event engine.

A minimal priority-queue event loop: callbacks are scheduled at
absolute simulation times and executed in ``(time, insertion seq)``
order, so ties break deterministically and every run is exactly
replayable from its seed.

The loop supports three stopping regimes, all used by the cluster:

- natural exhaustion (the queue empties) -- the common case for
  broadcast protocols;
- a ``stop`` predicate checked after every event -- needed for the
  token protocol, whose token would otherwise circulate forever;
- ``max_events`` / ``max_time`` guards that turn liveness bugs into
  loud :class:`EngineLimitError` failures instead of hangs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.spans import NULL_OBS, Obs


class EngineLimitError(RuntimeError):
    """The engine hit ``max_events`` or ``max_time`` before finishing.

    In this codebase that always signals a protocol liveness bug (or a
    stop predicate that can never become true), so it is an error, not
    a normal exit.  The exception carries the engine's state at the
    moment of failure -- ``events_processed``, ``now``, ``queue_depth``
    and any substrate-provided ``detail`` (the cluster contributes
    per-node buffered-message counts) -- so a liveness failure is
    debuggable from the exception alone.

    When the run carried a flight recorder (``Obs.recording(journal=
    True)``), ``journal_tail`` holds its last events -- the protocol
    actions leading *into* the wedge -- and, if the recorder was armed
    with ``autodump_path``, the full journal has already been dumped
    there by the time the exception propagates.
    """

    def __init__(
        self,
        reason: str,
        *,
        events_processed: Optional[int] = None,
        now: Optional[float] = None,
        queue_depth: Optional[int] = None,
        detail: Optional[Dict[str, Any]] = None,
        journal_tail: Optional[list] = None,
    ) -> None:
        self.reason = reason
        self.events_processed = events_processed
        self.now = now
        self.queue_depth = queue_depth
        self.detail = dict(detail or {})
        self.journal_tail = list(journal_tail or [])
        parts = [reason]
        if events_processed is not None:
            parts.append(f"events_processed={events_processed}")
        if now is not None:
            parts.append(f"now={now:.6g}")
        if queue_depth is not None:
            parts.append(f"queue_depth={queue_depth}")
        for key, value in self.detail.items():
            parts.append(f"{key}={value}")
        if self.journal_tail:
            parts.append(f"journal_tail={len(self.journal_tail)} events")
        super().__init__("; ".join(parts))


@dataclass(order=True, slots=True)
class _Scheduled:
    """One heap entry.  ``slots=True`` drops the per-instance
    ``__dict__``: an entry is allocated per scheduled event, so large
    runs hold tens of thousands live in the queue at once
    (``benchmarks/test_bench_micro.py::test_bench_q4_scheduled_alloc``
    records the delta)."""

    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class Engine:
    """The event loop.  ``now`` is the current simulation time."""

    def __init__(self, *, obs: Obs = NULL_OBS) -> None:
        self.now: float = 0.0
        self._queue: List[_Scheduled] = []
        self._seq = itertools.count()
        self.events_processed = 0
        self._alive = 0  # live count behind the ``pending`` property
        self._obs = obs
        #: optional provider of extra diagnostic state for
        #: :class:`EngineLimitError` (the cluster installs one that
        #: reports per-node buffered-message counts).
        self.diag_context: Optional[Callable[[], Dict[str, Any]]] = None

    #: Number of trailing flight-recorder events attached to an
    #: :class:`EngineLimitError` (the full journal goes to the
    #: autodump file; the exception carries just the lead-in).
    JOURNAL_TAIL_EVENTS = 32

    def _limit_error(self, reason: str) -> EngineLimitError:
        journal = self._obs.journal
        tail = None
        if journal is not None:
            journal.note("engine-limit", reason=reason,
                         events_processed=self.events_processed)
            tail = journal.last(self.JOURNAL_TAIL_EVENTS)
            journal.maybe_dump("engine-limit")
        return EngineLimitError(
            reason,
            events_processed=self.events_processed,
            now=self.now,
            queue_depth=self._alive,
            detail=self.diag_context() if self.diag_context else None,
            journal_tail=tail,
        )

    def schedule_at(self, time: float, fn: Callable[[], None]) -> _Scheduled:
        """Schedule ``fn`` at absolute time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        item = _Scheduled(time=time, seq=next(self._seq), fn=fn)
        heapq.heappush(self._queue, item)
        self._alive += 1
        return item

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> _Scheduled:
        """Schedule ``fn`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn)

    def cancel(self, item: _Scheduled) -> None:
        """Cancel a scheduled callback (lazily removed from the heap)."""
        if item.cancelled or item.executed:
            return
        item.cancelled = True
        self._alive -= 1

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks.

        Maintained as a live counter -- the quiescence predicate reads
        this after every event, so a heap scan here would make every
        run O(events * queue depth).
        """
        return self._alive

    def run(
        self,
        *,
        stop: Optional[Callable[[], bool]] = None,
        max_events: int = 1_000_000,
        max_time: float = float("inf"),
    ) -> None:
        """Process events until exhaustion, ``stop()`` truth, or a limit.

        ``stop`` is evaluated before the first event and after each
        one; when provided, hitting ``max_events``/``max_time`` raises
        :class:`EngineLimitError` (the predicate should eventually hold).
        Without ``stop``, exhausting the queue is the normal exit and
        the limits still guard against runaway self-rescheduling.
        """
        if stop is not None and stop():
            return
        obs = self._obs
        obs_on = obs.enabled
        if obs_on:
            m_events = obs.registry.counter("engine.events")
            g_depth = obs.registry.gauge("engine.queue_depth")
        # Hot loop: the queue reference, the heappop binding and the
        # event counter live in locals (the counter is written back
        # before every exit so exception detail and callers stay
        # accurate).  ``self.now`` must stay an attribute -- callbacks
        # read it through their clock closure.
        queue = self._queue
        pop = heapq.heappop
        events = self.events_processed
        try:
            while queue:
                item = pop(queue)
                if item.cancelled:
                    continue
                if item.time > max_time:
                    self.events_processed = events
                    raise self._limit_error(
                        f"exceeded max_time={max_time} "
                        f"(next event at {item.time})"
                    )
                self.now = item.time
                item.executed = True
                self._alive -= 1
                item.fn()
                events += 1
                if obs_on:
                    m_events.inc()
                    g_depth.set(self._alive)
                if events >= max_events and queue:
                    self.events_processed = events
                    raise self._limit_error(
                        f"exceeded max_events={max_events} with "
                        f"{self.pending} events still pending"
                    )
                if stop is not None and stop():
                    return
        finally:
            self.events_processed = events
        if stop is not None and not stop():
            raise self._limit_error(
                "event queue exhausted but the stop condition never "
                "became true (protocol liveness violation?)"
            )
