"""A simulated process: one protocol instance + buffering + tracing.

The node implements the substrate side of the class-𝒫 contract
(Section 3.2): it turns protocol decisions into trace events and owns
the pending buffer -- the paper's "the thread is suspended till the
condition becomes true" is realized by a
:class:`~repro.sim.scheduler.DeliveryScheduler`: dependency-indexed
wakeups for protocols that can enumerate their wait predicate
(:meth:`~repro.core.base.Protocol.missing_deps`), a legacy full
re-scan for those that cannot (see DESIGN.md, "Buffering strategy",
and the ablation in ``benchmarks/test_bench_scheduler.py``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from repro.core.base import (
    ControlMessage,
    Disposition,
    Message,
    Outgoing,
    Protocol,
    UpdateMessage,
)
from repro.core.flatstate import resolve_state_backend
from repro.model.operations import WriteId, fresh_value
from repro.obs.spans import NULL_OBS, Obs
from repro.sim.scheduler import FlatScheduler, make_scheduler
from repro.sim.trace import EventKind, Trace

Dispatch = Callable[[int, Sequence[Outgoing]], None]
Clock = Callable[[], float]


class Node:
    """Hosts one :class:`Protocol` instance inside the simulation."""

    def __init__(
        self,
        protocol: Protocol,
        trace: Trace,
        clock: Clock,
        dispatch: Dispatch,
        *,
        record_state: bool = False,
        on_remote_apply: Optional[Callable[[], None]] = None,
        on_write: Optional[Callable[[], None]] = None,
        dedup: bool = False,
        scheduler: str = "auto",
        state_backend: str = "scalar",
        obs: Obs = NULL_OBS,
    ):
        self.protocol = protocol
        self.process_id = protocol.process_id
        self.trace = trace
        self.clock = clock
        self.dispatch = dispatch
        self.record_state = record_state
        #: flat struct-of-arrays bookkeeping (``core.flatstate``).  The
        #: node-level default is ``"scalar"``: direct Node constructions
        #: (the model checker's controlled substrate, existing tests)
        #: keep the oracle path, and :class:`~repro.sim.cluster.SimCluster`
        #: resolves its own ``state_backend="auto"`` switch before
        #: passing the literal down.
        self._flat = resolve_state_backend(state_backend, protocol)
        #: delivery scheduler owning the pending buffer (see
        #: :mod:`repro.sim.scheduler` for the mode semantics).
        if self._flat:
            protocol.enable_flat_state()
            self.scheduler = FlatScheduler(protocol, obs=obs, clock=clock)
        else:
            self.scheduler = make_scheduler(protocol, scheduler, obs=obs,
                                            clock=clock)
        #: observability handle; hot-path hooks are gated on
        #: ``obs.enabled`` (instrument handles resolved once, here).
        self._obs = obs
        if obs.enabled:
            pid = self.process_id
            reg = obs.registry
            self._m_writes = reg.counter("node.writes", process=pid)
            self._m_reads = reg.counter("node.reads", process=pid)
            self._m_receipts = reg.counter("node.receipts", process=pid)
            self._m_applies = reg.counter("node.applies", process=pid)
            self._m_buffers = reg.counter("node.buffers", process=pid)
            self._m_discards = reg.counter("node.discards", process=pid)
            self._m_dups_dropped = reg.counter(
                "node.duplicates_dropped", process=pid)
        self._on_remote_apply = on_remote_apply
        self._on_write = on_write
        #: crash-stop flag (fault-injection extension; the paper's
        #: model is failure-free).  A crashed node ignores all traffic
        #: and refuses local operations.
        self.crashed = False
        #: at-least-once guard: remember seen update ids and drop
        #: repeats before they reach the protocol.  The paper's model
        #: assumes exactly-once channels; enable this when running over
        #: a Network with duplicate_prob > 0.
        self.dedup = dedup
        self._seen_updates: set = set()
        self.duplicates_dropped = 0
        # Out-of-band applies (token batches) land here:
        protocol.bind_recorder(self._record_oob_apply)

    @property
    def scheduler_mode(self) -> str:
        """The resolved delivery strategy: ``"flat"``, ``"indexed"`` or
        ``"legacy"``."""
        return self.scheduler.mode

    @property
    def state_backend(self) -> str:
        """The resolved protocol-state backend: ``"flat"`` or ``"scalar"``."""
        return "flat" if self._flat else "scalar"

    @property
    def pending(self) -> List[UpdateMessage]:
        """Buffered update messages, oldest first (introspection)."""
        return self.scheduler.buffered()

    def crash(self) -> None:
        """Crash-stop this node: drop its buffer, ignore everything."""
        self.crashed = True
        self.scheduler.clear()

    # -- helpers ---------------------------------------------------------------

    def _state(self) -> Optional[Dict[str, Any]]:
        return self.protocol.debug_state() if self.record_state else None

    def start(self) -> None:
        """Run the protocol's bootstrap traffic (token injection etc.)."""
        outgoing = self.protocol.bootstrap()
        if outgoing:
            self.dispatch(self.process_id, outgoing)

    # -- operations -----------------------------------------------------------

    def do_write(self, variable: Hashable, value: Any = None) -> Optional[WriteId]:
        """Issue a local write; ``value=None`` generates a fresh value.

        Returns None (no-op) on a crashed node.
        """
        if self.crashed:
            return None
        if value is None:
            value = fresh_value(
                WriteId(self.process_id, self.protocol.writes_issued + 1)
            )
        outcome = self.protocol.write(variable, value)
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.WRITE,
            wid=outcome.wid,
            variable=variable,
            value=value,
            state=self._state(),
            registers_apply=outcome.local_apply,
        )
        if outcome.outgoing:
            self.trace.record(
                now,
                self.process_id,
                EventKind.SEND,
                wid=outcome.wid,
                variable=variable,
                value=value,
            )
            self.dispatch(self.process_id, outcome.outgoing)
        if self._obs.enabled:
            self._m_writes.inc()
            self._obs.registry.counter(
                "node.writes_by_variable", variable=str(variable)).inc()
            if outcome.outgoing:
                self._obs.sink.on_send(now, self.process_id, outcome.wid,
                                       variable)
        if self._on_write is not None:
            self._on_write(outcome.local_apply)
        return outcome.wid

    def do_read(self, variable: Hashable) -> Any:
        """Issue a local read; returns the value (None when crashed)."""
        if self.crashed:
            return None
        outcome = self.protocol.read(variable)
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.RETURN,
            variable=variable,
            value=outcome.value,
            read_from=outcome.read_from,
            state=self._state(),
        )
        if self._obs.enabled:
            self._m_reads.inc()
            self._obs.sink.on_read(now, self.process_id, variable,
                                   outcome.value)
        return outcome.value

    # -- message reception --------------------------------------------------------

    def fire_timer(self) -> None:
        """Run the protocol's periodic hook (crash-aware)."""
        if self.crashed:
            return
        outgoing = self.protocol.on_timer()
        if outgoing:
            self.dispatch(self.process_id, outgoing)

    def receive(self, message: Message) -> None:
        """Entry point for the network's delivery callback."""
        if self.crashed:
            return
        if isinstance(message, ControlMessage):
            outgoing = self.protocol.on_control(message)
            if outgoing:
                self.dispatch(self.process_id, outgoing)
            return
        self._receive_update(message)

    def _receive_update(self, msg: UpdateMessage) -> None:
        if self._flat:
            self._receive_update_flat(msg)
            return
        if self.dedup:
            if msg.wid in self._seen_updates:
                self.duplicates_dropped += 1
                if self._obs.enabled:
                    self._m_dups_dropped.inc()
                return
            self._seen_updates.add(msg.wid)
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.RECEIPT,
            wid=msg.wid,
            variable=msg.variable,
            value=msg.value,
        )
        if self._obs.enabled:
            self._m_receipts.inc()
            self._obs.sink.on_receipt(now, self.process_id, msg.wid,
                                      msg.variable, msg.sender)
        disposition = self.protocol.classify(msg)
        if disposition is Disposition.APPLY:
            self._apply(msg)
            self._drain()
        elif disposition is Disposition.BUFFER:
            # Definition 3: this write suffers a write delay here.
            self.trace.record(
                now,
                self.process_id,
                EventKind.BUFFER,
                wid=msg.wid,
                variable=msg.variable,
            )
            if self._obs.enabled:
                self._m_buffers.inc()
            # the scheduler records the span's wait interval (it knows
            # the blocking dependency it parks the message under)
            self.scheduler.park(msg)
        else:
            self._discard(msg)

    def _receive_update_flat(self, msg: UpdateMessage) -> None:
        """Hot-path twin of :meth:`_receive_update`.

        Same events, same order, byte-identical trace -- but the
        receipt/apply records go through the trace's compact path (no
        per-event dataclass construction until a reader looks), and
        classification + parking collapse into one
        :meth:`~repro.sim.scheduler.FlatScheduler.offer` call against
        the precomputed requirement row.
        """
        if self.dedup:
            if msg.wid in self._seen_updates:
                self.duplicates_dropped += 1
                if self._obs.enabled:
                    self._m_dups_dropped.inc()
                return
            self._seen_updates.add(msg.wid)
        now = self.clock()
        trace = self.trace
        obs_on = self._obs.enabled
        trace.record_compact(now, self.process_id, EventKind.RECEIPT,
                             msg.wid, msg.variable, msg.value)
        if obs_on:
            self._m_receipts.inc()
            self._obs.sink.on_receipt(now, self.process_id, msg.wid,
                                      msg.variable, msg.sender)
        if self.scheduler.offer(msg) is Disposition.APPLY:
            self._apply_flat(msg)
            self.scheduler.pump(self._apply_flat, self._discard)
        else:
            # Definition 3: this write suffers a write delay here (the
            # offer already parked it, or dead-parked a duplicate).
            trace.record_compact(now, self.process_id, EventKind.BUFFER,
                                 msg.wid, msg.variable)
            if obs_on:
                self._m_buffers.inc()

    def _apply_flat(self, msg: UpdateMessage) -> None:
        self.protocol.apply_update(msg)
        now = self.clock()
        if self.record_state:
            self.trace.record(
                now,
                self.process_id,
                EventKind.APPLY,
                wid=msg.wid,
                variable=msg.variable,
                value=msg.value,
                state=self._state(),
            )
        else:
            self.trace.record_compact(now, self.process_id, EventKind.APPLY,
                                      msg.wid, msg.variable, msg.value)
        if self._obs.enabled:
            self._m_applies.inc()
            self._obs.sink.on_apply(now, self.process_id, msg.wid)
        self.scheduler.notify_applied(msg)
        if self._on_remote_apply is not None:
            self._on_remote_apply()

    def _apply(self, msg: UpdateMessage) -> None:
        self.protocol.apply_update(msg)
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.APPLY,
            wid=msg.wid,
            variable=msg.variable,
            value=msg.value,
            state=self._state(),
        )
        if self._obs.enabled:
            self._m_applies.inc()
            self._obs.sink.on_apply(now, self.process_id, msg.wid)
        self.scheduler.notify_applied(msg)
        if self._on_remote_apply is not None:
            self._on_remote_apply()

    def _discard(self, msg: UpdateMessage) -> None:
        self.protocol.discard_update(msg)
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.DISCARD,
            wid=msg.wid,
            variable=msg.variable,
        )
        if self._obs.enabled:
            self._m_discards.inc()
            self._obs.sink.on_discard(now, self.process_id, msg.wid)

    def _drain(self) -> None:
        """Perform every now-actionable buffered message (the woken
        synchronization threads of Figure 5), oldest-buffered first."""
        self.scheduler.pump(self._apply, self._discard)

    def _record_oob_apply(self, wid: WriteId, variable: Hashable, value: Any) -> None:
        """Recorder callback for protocols that apply writes outside the
        update-message flow (token batches)."""
        now = self.clock()
        self.trace.record(
            now,
            self.process_id,
            EventKind.APPLY,
            wid=wid,
            variable=variable,
            value=value,
            state=self._state(),
        )
        if self._obs.enabled:
            self._m_applies.inc()
            self._obs.sink.on_apply(now, self.process_id, wid)
        if self._on_remote_apply is not None:
            self._on_remote_apply()

    @property
    def buffered_count(self) -> int:
        return len(self.scheduler)
