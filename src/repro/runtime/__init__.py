"""Real-concurrency runtime: processes as asyncio tasks.

The discrete-event simulator (:mod:`repro.sim`) gives deterministic,
replayable runs; this package runs the *same* protocol and node objects
under genuine asynchrony -- one asyncio task per process, per-message
delivery tasks with real ``asyncio.sleep`` latencies -- as an
end-to-end sanity check that nothing in the protocols depends on the
simulator's determinism.
"""

from repro.runtime.cluster import (
    AsyncCluster,
    ClusterQuiesceError,
    run_programs_async,
)
from repro.runtime.interactive import CausalKV

__all__ = ["AsyncCluster", "CausalKV", "ClusterQuiesceError",
           "run_programs_async"]
