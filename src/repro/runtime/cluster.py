"""asyncio-based cluster: the paper's system model on real concurrency.

Each process is an asyncio task executing its
:class:`~repro.workloads.ops.Program`; each message hop is a task that
sleeps its (scaled) latency and then delivers into the destination
node's synchronous ``receive``.  Because everything runs on one event
loop thread, each protocol procedure executes atomically -- exactly the
paper's atomicity assumption -- while message interleavings are
genuinely nondeterministic.

Simulation-time latencies are scaled by ``time_scale`` wall seconds per
simulated unit (default 5 ms), so tests stay fast.  Trace timestamps
are reported back in simulated units for comparability with
:mod:`repro.sim` runs; exact values differ run to run (that is the
point), so assertions should target *properties* (safety, legality,
liveness), not timings -- which is what
:func:`repro.analysis.checker.check_run` does.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.base import BROADCAST, Message, Outgoing, Protocol
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import estimate_size
from repro.sim.node import Node
from repro.sim.result import RunResult
from repro.sim.trace import Trace
from repro.workloads.ops import (
    Program,
    ReadStep,
    WaitReadStep,
    WriteStep,
)

ProtocolFactory = Union[str, Callable[[int, int], Protocol]]


class ClusterQuiesceError(TimeoutError):
    """The cluster failed to drain within ``quiesce_timeout``.

    Like :class:`repro.sim.engine.EngineLimitError`, the exception
    carries the substrate's state at the moment of failure so a
    liveness bug is debuggable from the exception alone: in-flight
    update count, expected vs. observed remote applies, and per-node
    queue depths (buffered messages + outstanding applies).
    """

    def __init__(
        self,
        reason: str,
        *,
        timeout: Optional[float] = None,
        in_flight_updates: Optional[int] = None,
        expected_applies: Optional[int] = None,
        observed_applies: Optional[int] = None,
        per_node: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        self.reason = reason
        self.timeout = timeout
        self.in_flight_updates = in_flight_updates
        self.expected_applies = expected_applies
        self.observed_applies = observed_applies
        self.per_node = list(per_node or [])
        parts = [reason]
        if timeout is not None:
            parts.append(f"timeout={timeout:.6g}s")
        if in_flight_updates is not None:
            parts.append(f"in_flight_updates={in_flight_updates}")
        if expected_applies is not None:
            parts.append(f"expected_applies={expected_applies}")
        if observed_applies is not None:
            parts.append(f"observed_applies={observed_applies}")
        for entry in self.per_node:
            parts.append(
                "p{node}: buffered={buffered} "
                "missing_applies={missing_applies}".format(**entry)
            )
        super().__init__("; ".join(parts))


class AsyncCluster:
    """A single-use asyncio run of ``n`` processes under one protocol."""

    def __init__(
        self,
        protocol: ProtocolFactory,
        n_processes: int,
        *,
        latency: Optional[LatencyModel] = None,
        time_scale: float = 0.005,
        quiesce_timeout: float = 30.0,
    ):
        from repro.sim.cluster import _resolve_factory

        if n_processes < 1:
            raise ValueError("need at least one process")
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        factory = _resolve_factory(protocol)
        self.n_processes = n_processes
        self.latency_model = (latency or ConstantLatency(1.0)).fork()
        self.time_scale = time_scale
        self.quiesce_timeout = quiesce_timeout
        self.trace = Trace(n_processes)
        self._t0 = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._message_tasks: set = set()
        self._writes_issued = 0
        self._deferred_local_applies = 0
        self._remote_applies = 0
        self._in_flight_updates = 0
        self.messages_sent = 0
        self.bytes_estimate = 0
        self._ran = False
        self.nodes: List[Node] = [
            Node(
                factory(i, n_processes),
                self.trace,
                clock=self._now,
                dispatch=self._dispatch,
                on_remote_apply=self._count_apply,
                on_write=self._count_write,
            )
            for i in range(n_processes)
        ]
        self.protocol_name = self.nodes[0].protocol.name

    # -- clock / counters ---------------------------------------------------------

    def _now(self) -> float:
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._t0) / self.time_scale

    def _count_apply(self) -> None:
        self._remote_applies += 1

    def _count_write(self, local_apply: bool) -> None:
        self._writes_issued += 1
        if not local_apply:
            self._deferred_local_applies += 1

    # -- messaging ----------------------------------------------------------------

    def _dispatch(self, sender: int, outgoing: Sequence[Outgoing]) -> None:
        for out in outgoing:
            if out.dest == BROADCAST:
                for dest in range(self.n_processes):
                    if dest != sender:
                        self._ship(sender, dest, out.message)
            else:
                self._ship(sender, out.dest, out.message)

    def _ship(self, sender: int, dest: int, message: Message) -> None:
        from repro.core.base import UpdateMessage

        delay = self.latency_model.latency(sender, dest, message)
        self.messages_sent += 1
        self.bytes_estimate += estimate_size(message)
        is_update = isinstance(message, UpdateMessage)
        if is_update:
            self._in_flight_updates += 1

        async def hop() -> None:
            await asyncio.sleep(delay * self.time_scale)
            if is_update:
                self._in_flight_updates -= 1
            self.nodes[dest].receive(message)

        task = asyncio.ensure_future(hop())
        self._message_tasks.add(task)
        task.add_done_callback(self._message_tasks.discard)

    # -- program execution -----------------------------------------------------------

    async def _run_program(self, process: int, program: Program) -> None:
        node = self.nodes[process]
        for step in program:
            if step.delay:
                await asyncio.sleep(step.delay * self.time_scale)
            if isinstance(step, WriteStep):
                node.do_write(step.variable, step.value)
            elif isinstance(step, ReadStep):
                node.do_read(step.variable)
            elif isinstance(step, WaitReadStep):
                for _ in range(step.max_polls):
                    if step.matches(node.do_read(step.variable)):
                        break
                    await asyncio.sleep(step.poll * self.time_scale)
                else:
                    raise RuntimeError(
                        f"p{process} gave up waiting for "
                        f"{step.variable}={step.expect!r}"
                    )
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown step {step!r}")

    async def _timer_loop(self, node: Node) -> None:
        """Fire the node's periodic protocol hook (anti-entropy etc.),
        staggered like the simulator does."""
        interval = node.protocol.timer_interval
        assert interval is not None
        await asyncio.sleep(
            interval * (1.0 + node.process_id / self.n_processes)
            * self.time_scale
        )
        while True:
            node.fire_timer()
            await asyncio.sleep(interval * self.time_scale)

    def _quiesce_error(self) -> ClusterQuiesceError:
        expected = (
            self._writes_issued * (self.n_processes - 1)
            + self._deferred_local_applies
        )
        per_node = [
            {
                "node": node.process_id,
                "buffered": node.buffered_count,
                "missing_applies": node.protocol.missing_applies(),
            }
            for node in self.nodes
        ]
        return ClusterQuiesceError(
            "cluster failed to quiesce (liveness bug?)",
            timeout=self.quiesce_timeout,
            in_flight_updates=self._in_flight_updates,
            expected_applies=expected,
            observed_applies=self._remote_applies,
            per_node=per_node,
        )

    def _quiescent(self) -> bool:
        if self._in_flight_updates > 0:
            return False
        expected = (
            self._writes_issued * (self.n_processes - 1)
            + self._deferred_local_applies
        )
        missing = sum(node.protocol.missing_applies() for node in self.nodes)
        return self._remote_applies + missing >= expected

    async def run_programs(self, programs: Sequence[Program]) -> RunResult:
        """Run one program per process; await quiescence; return the result."""
        if len(programs) != self.n_processes:
            raise ValueError(
                f"need exactly {self.n_processes} programs, got {len(programs)}"
            )
        if self._ran:
            raise RuntimeError("AsyncCluster instances are single-use")
        self._ran = True
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        for node in self.nodes:
            node.start()
        timer_tasks = [
            asyncio.ensure_future(self._timer_loop(node))
            for node in self.nodes
            if node.protocol.timer_interval is not None
        ]
        try:
            await asyncio.gather(
                *(self._run_program(i, p) for i, p in enumerate(programs))
            )
            deadline = self._loop.time() + self.quiesce_timeout
            while not self._quiescent():
                if self._loop.time() > deadline:
                    raise self._quiesce_error()
                await asyncio.sleep(self.time_scale)
        finally:
            # Tear down whatever is still flying (token rounds, timers
            # etc.) -- and *await* the cancellations, so no half-dead
            # task outlives the run to fire a "was never retrieved"
            # warning (or deliver into a dismantled node) later.
            for task in timer_tasks:
                task.cancel()
            for task in list(self._message_tasks):
                task.cancel()
            await asyncio.gather(
                *timer_tasks, *self._message_tasks,
                return_exceptions=True,
            )
        return RunResult(
            protocol_name=self.protocol_name,
            n_processes=self.n_processes,
            trace=self.trace,
            duration=self._now(),
            messages_sent=self.messages_sent,
            bytes_estimate=self.bytes_estimate,
            stores=[node.protocol.store_snapshot() for node in self.nodes],
            protocol_stats=[node.protocol.stats() for node in self.nodes],
            in_class_p=type(self.nodes[0].protocol).in_class_p,
        )


def run_programs_async(
    protocol: ProtocolFactory,
    n_processes: int,
    programs: Sequence[Program],
    **kwargs,
) -> RunResult:
    """Synchronous convenience wrapper around :class:`AsyncCluster`."""
    cluster = AsyncCluster(protocol, n_processes, **kwargs)
    return asyncio.run(cluster.run_programs(programs))
