"""An embeddable, interactively driven causal KV store.

The simulator and the batch asyncio cluster replay *pre-declared*
workloads; this module exposes the same protocol stack as a live
object: create a cluster of in-process replicas, ``put``/``get``
against any replica from application code, and close it down with a
verified trace.  This is the "adopt it in an afternoon" API::

    async with CausalKV.open(3, protocol="optp") as kv:
        await kv.put(0, "greeting", "hello")
        await kv.wait_visible(1, "greeting")   # causal convergence
        assert await kv.get(1, "greeting") == "hello"
    report = kv.report()          # full checker verdict over the session

Every operation is recorded in a normal :class:`~repro.sim.trace.Trace`,
so a session can be audited (or archived via
:mod:`repro.sim.serialize`) exactly like a benchmark run.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable, List, Optional, Sequence, Union

from repro.analysis.checker import CheckReport, check_run
from repro.core.base import BROADCAST, Message, Outgoing, Protocol
from repro.model.operations import BOTTOM, WriteId
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import estimate_size
from repro.sim.node import Node
from repro.sim.result import RunResult
from repro.sim.trace import Trace

ProtocolFactory = Union[str, Callable[[int, int], Protocol]]


class CausalKV:
    """A live cluster of causally consistent in-process replicas."""

    def __init__(
        self,
        protocol: ProtocolFactory,
        n_replicas: int,
        *,
        latency: Optional[LatencyModel] = None,
        time_scale: float = 0.002,
        quiesce_timeout: float = 30.0,
    ):
        from repro.sim.cluster import _resolve_factory

        if n_replicas < 1:
            raise ValueError("need at least one replica")
        factory = _resolve_factory(protocol)
        self.n_replicas = n_replicas
        self.latency_model = (latency or ConstantLatency(1.0)).fork()
        self.time_scale = time_scale
        self.quiesce_timeout = quiesce_timeout
        self.trace = Trace(n_replicas)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._tasks: set = set()
        self._writes = 0
        self._deferred = 0
        self._applies = 0
        self._in_flight = 0
        self._open = False
        self._result: Optional[RunResult] = None
        self.messages_sent = 0
        self.bytes_estimate = 0
        self.nodes: List[Node] = [
            Node(
                factory(i, n_replicas),
                self.trace,
                clock=self._now,
                dispatch=self._dispatch,
                on_remote_apply=self._count_apply,
                on_write=self._count_write,
            )
            for i in range(n_replicas)
        ]
        self.protocol_name = self.nodes[0].protocol.name

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def open(cls, n_replicas: int, *, protocol: ProtocolFactory = "optp",
             **kwargs) -> "CausalKV":
        """Construct a cluster ready for ``async with``."""
        return cls(protocol, n_replicas, **kwargs)

    async def __aenter__(self) -> "CausalKV":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def start(self) -> None:
        if self._open:
            raise RuntimeError("cluster already started")
        self._open = True
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        for node in self.nodes:
            node.start()
        for node in self.nodes:
            if node.protocol.timer_interval is not None:
                self._spawn(self._timer_loop(node))

    async def close(self) -> None:
        """Wait for quiescence, tear down, and freeze the session result."""
        if not self._open:
            return
        deadline = self._loop.time() + self.quiesce_timeout
        while not self._quiescent():
            if self._loop.time() > deadline:
                raise TimeoutError("cluster failed to quiesce on close")
            await asyncio.sleep(self.time_scale)
        for task in list(self._tasks):
            task.cancel()
        self._open = False
        self._result = RunResult(
            protocol_name=self.protocol_name,
            n_processes=self.n_replicas,
            trace=self.trace,
            duration=self._now(),
            messages_sent=self.messages_sent,
            bytes_estimate=self.bytes_estimate,
            stores=[n.protocol.store_snapshot() for n in self.nodes],
            protocol_stats=[n.protocol.stats() for n in self.nodes],
            in_class_p=type(self.nodes[0].protocol).in_class_p,
        )

    # -- client API -----------------------------------------------------------

    async def put(self, replica: int, key: Hashable, value: Any) -> WriteId:
        """Write ``key`` at ``replica`` (wait-free; propagation is
        asynchronous)."""
        self._check_live(replica)
        wid = self.nodes[replica].do_write(key, value)
        await asyncio.sleep(0)  # let deliveries interleave
        return wid

    async def get(self, replica: int, key: Hashable) -> Any:
        """Read ``key`` at ``replica`` (wait-free; returns BOTTOM if the
        replica has not seen any write yet)."""
        self._check_live(replica)
        value = self.nodes[replica].do_read(key)
        await asyncio.sleep(0)
        return value

    async def wait_visible(
        self, replica: int, key: Hashable, *, timeout: float = 10.0
    ) -> Any:
        """Block until ``key`` holds a non-BOTTOM value at ``replica``;
        returns it.  Each poll is a real read of the session history."""
        self._check_live(replica)
        deadline = self._loop.time() + timeout
        while True:
            value = self.nodes[replica].do_read(key)
            if not isinstance(value, type(BOTTOM)):
                return value
            if self._loop.time() > deadline:
                raise TimeoutError(
                    f"{key!r} never became visible at replica {replica}"
                )
            await asyncio.sleep(self.time_scale)

    def report(self) -> CheckReport:
        """Full checker verdict over the closed session."""
        if self._result is None:
            raise RuntimeError("close() the cluster before asking for a report")
        return check_run(self._result)

    @property
    def result(self) -> RunResult:
        if self._result is None:
            raise RuntimeError("close() the cluster first")
        return self._result

    # -- plumbing ---------------------------------------------------------------

    def _check_live(self, replica: int) -> None:
        if not self._open:
            raise RuntimeError("cluster is not running")
        if not 0 <= replica < self.n_replicas:
            raise ValueError(f"replica {replica} out of range")

    def _now(self) -> float:
        if self._loop is None:
            return 0.0
        return (self._loop.time() - self._t0) / self.time_scale

    def _count_apply(self) -> None:
        self._applies += 1

    def _count_write(self, local_apply: bool) -> None:
        self._writes += 1
        if not local_apply:
            self._deferred += 1

    def _quiescent(self) -> bool:
        if self._in_flight > 0:
            return False
        expected = self._writes * (self.n_replicas - 1) + self._deferred
        missing = sum(n.protocol.missing_applies() for n in self.nodes)
        return self._applies + missing >= expected

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _timer_loop(self, node: Node) -> None:
        interval = node.protocol.timer_interval
        await asyncio.sleep(interval * self.time_scale)
        while True:
            node.fire_timer()
            await asyncio.sleep(interval * self.time_scale)

    def _dispatch(self, sender: int, outgoing: Sequence[Outgoing]) -> None:
        for out in outgoing:
            dests = (
                [d for d in range(self.n_replicas) if d != sender]
                if out.dest == BROADCAST
                else [out.dest]
            )
            for dest in dests:
                self._ship(sender, dest, out.message)

    def _ship(self, sender: int, dest: int, message: Message) -> None:
        from repro.core.base import UpdateMessage

        delay = self.latency_model.latency(sender, dest, message)
        self.messages_sent += 1
        self.bytes_estimate += estimate_size(message)
        is_update = isinstance(message, UpdateMessage)
        if is_update:
            self._in_flight += 1

        async def hop() -> None:
            await asyncio.sleep(delay * self.time_scale)
            if is_update:
                self._in_flight -= 1
            self.nodes[dest].receive(message)

        self._spawn(hop())
