"""Legal reads and causally consistent histories (Definitions 1-2).

**Definition 1 (Legal Read).**  Given :math:`\\hat H = (H, \\mapsto_{co})`,
a read ``r(x)v`` is *legal* if there exists a write ``w(x)v`` with
``w(x)v ->co r(x)v`` and there is **no** write ``w(x)v'`` with
``w(x)v ->co w(x)v' ->co r(x)v`` (no interposed write to the same
variable on the causal path).

**Definition 2 (Causally Consistent History).**  A history is causally
consistent iff all its reads are legal.

Reads of the initial value ``BOTTOM`` are treated per the model: a read
with no read-from writer is legal iff *no* write to its variable lies
in its causal past (otherwise the read should have returned one of
those values, or at least cannot return :math:`\\bot` "after" a write it
causally saw).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.history import History
from repro.model.operations import Read, Write


@dataclass(frozen=True)
class LegalityViolation:
    """One illegal read, with the reason it is illegal."""

    read: Read
    reason: str
    interposed: Optional[Write] = None

    def __str__(self) -> str:
        extra = f" (interposed: {self.interposed})" if self.interposed else ""
        return f"illegal read {self.read}: {self.reason}{extra}"


@dataclass(frozen=True)
class LegalityReport:
    """Result of checking a full history for causal consistency."""

    consistent: bool
    violations: List[LegalityViolation] = field(default_factory=list)
    cyclic: bool = False

    def __bool__(self) -> bool:
        return self.consistent

    def summary(self) -> str:
        if self.consistent:
            return "causally consistent"
        if self.cyclic:
            return "INCONSISTENT: ->co contains a cycle"
        lines = [f"INCONSISTENT: {len(self.violations)} illegal read(s)"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def is_legal_read(history: History, read: Read) -> Optional[LegalityViolation]:
    """Check Definition 1 for one read; returns a violation or ``None``.

    The check is evaluated against ``history.causal_order``.  The three
    cases are:

    1. the read returned ``BOTTOM`` (``read_from is None``): legal iff
       no write to the same variable is in the read's causal past;
    2. some other write to the same variable sits causally between the
       writer and the read: illegal (second clause of Definition 1
       fails).
    """
    co = history.causal_order
    if read.read_from is None:
        for w in co.write_causal_past(read):
            if w.variable == read.variable:
                return LegalityViolation(
                    read=read,
                    reason=(
                        "returned BOTTOM although a write to the same "
                        "variable is in its causal past"
                    ),
                    interposed=w,
                )
        return None

    # Note: the writer always causally precedes the read, because the
    # ->ro edge itself is part of ->co's base relation; a contradictory
    # read-from (e.g. reading a same-process *later* write) shows up as
    # a ->co cycle, which check_causal_consistency rejects up front.
    writer = history.write_by_id(read.read_from)
    for w in co.write_causal_past(read):
        if w.variable != read.variable or w.wid == writer.wid:
            continue
        if co.precedes(writer, w):
            # writer ->co w ->co read with same variable: overwritten.
            return LegalityViolation(
                read=read,
                reason="a causally newer write to the same variable is "
                "interposed between the writer and the read",
                interposed=w,
            )
    return None


def _check_scalar(history: History) -> List[LegalityViolation]:
    """Reference path: :func:`is_legal_read` per read, in history order."""
    violations = []
    for read in history.reads():
        v = is_legal_read(history, read)
        if v is not None:
            violations.append(v)
    return violations


def _check_vectorized(history: History) -> List[LegalityViolation]:
    """Batch path: every (write, read) precedence decided in one numpy
    broadcast instead of per-pair Python bit tests.

    Builds closure vectors for all writes and reads, takes
    ``batch_precedes_matrix(...)`` over the concatenated batch (its
    transpose is the ``->co`` matrix, see
    :meth:`~repro.model.history.CausalOrder.closure_vectors`), then
    answers Definition 1 per read with boolean masks over the writes
    *grouped by variable*.  Witness parity with the scalar path is
    structural: writes are scanned in ``history.writes()`` order, the
    same order ``write_causal_past`` yields them, so the first matching
    index is the scalar path's witness and the produced violations are
    ``==``-identical (the differential test pins this).

    Only called on acyclic histories -- the closure-domination
    equivalence needs a DAG.
    """
    import numpy as np

    from repro.core.vectorclock import batch_precedes_matrix

    co = history.causal_order
    writes = list(history.writes())
    reads = list(history.reads())
    if not reads:
        return []
    n_writes = len(writes)
    precedes = batch_precedes_matrix(
        co.closure_vectors(writes + reads)
    ).T
    ww = precedes[:n_writes, :n_writes]     # write ->co write
    wr = precedes[:n_writes, n_writes:]     # write ->co read

    grouped: dict = {}
    for i, w in enumerate(writes):
        grouped.setdefault(w.variable, []).append(i)
    by_variable = {v: np.asarray(ix) for v, ix in grouped.items()}
    windex = {w.wid: i for i, w in enumerate(writes)}

    violations = []
    for j, read in enumerate(reads):
        group = by_variable.get(read.variable)
        if group is None:
            continue
        in_past = wr[group, j]
        if read.read_from is None:
            if in_past.any():
                witness = writes[group[int(np.argmax(in_past))]]
                violations.append(LegalityViolation(
                    read=read,
                    reason=(
                        "returned BOTTOM although a write to the same "
                        "variable is in its causal past"
                    ),
                    interposed=witness,
                ))
            continue
        wi = windex[read.read_from]
        interposed = in_past & ww[wi, group] & (group != wi)
        if interposed.any():
            witness = writes[group[int(np.argmax(interposed))]]
            violations.append(LegalityViolation(
                read=read,
                reason="a causally newer write to the same variable is "
                "interposed between the writer and the read",
                interposed=witness,
            ))
    return violations


def check_causal_consistency(
    history: History, *, mode: str = "auto"
) -> LegalityReport:
    """Check Definition 2 on a full history; returns a detailed report.

    A cyclic ``->co`` (only possible for histories no protocol run can
    produce) is reported as inconsistent with ``cyclic=True``.

    ``mode`` selects the engine: ``"vectorized"`` batches every
    precedence query through numpy (see :func:`_check_vectorized`),
    ``"scalar"`` runs the per-read reference loop, and ``"auto"`` (the
    default) uses the vectorized path when numpy is importable and
    falls back to scalar otherwise.  All modes return ``==``-identical
    reports.
    """
    if mode not in ("auto", "vectorized", "scalar"):
        raise ValueError(
            f"mode must be 'auto', 'vectorized' or 'scalar', got {mode!r}"
        )
    co = history.causal_order
    if co.has_cycle:
        return LegalityReport(consistent=False, cyclic=True)
    if mode == "auto":
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - numpy ships with the repo
            mode = "scalar"
        else:
            mode = "vectorized"
    if mode == "vectorized":
        violations = _check_vectorized(history)
    else:
        violations = _check_scalar(history)
    return LegalityReport(consistent=not violations, violations=violations)


def is_causally_consistent(history: History) -> bool:
    """Boolean shortcut for :func:`check_causal_consistency`."""
    return check_causal_consistency(history).consistent
