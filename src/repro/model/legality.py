"""Legal reads and causally consistent histories (Definitions 1-2).

**Definition 1 (Legal Read).**  Given :math:`\\hat H = (H, \\mapsto_{co})`,
a read ``r(x)v`` is *legal* if there exists a write ``w(x)v`` with
``w(x)v ->co r(x)v`` and there is **no** write ``w(x)v'`` with
``w(x)v ->co w(x)v' ->co r(x)v`` (no interposed write to the same
variable on the causal path).

**Definition 2 (Causally Consistent History).**  A history is causally
consistent iff all its reads are legal.

Reads of the initial value ``BOTTOM`` are treated per the model: a read
with no read-from writer is legal iff *no* write to its variable lies
in its causal past (otherwise the read should have returned one of
those values, or at least cannot return :math:`\\bot` "after" a write it
causally saw).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.model.history import History
from repro.model.operations import Read, Write


@dataclass(frozen=True)
class LegalityViolation:
    """One illegal read, with the reason it is illegal."""

    read: Read
    reason: str
    interposed: Optional[Write] = None

    def __str__(self) -> str:
        extra = f" (interposed: {self.interposed})" if self.interposed else ""
        return f"illegal read {self.read}: {self.reason}{extra}"


@dataclass(frozen=True)
class LegalityReport:
    """Result of checking a full history for causal consistency."""

    consistent: bool
    violations: List[LegalityViolation] = field(default_factory=list)
    cyclic: bool = False

    def __bool__(self) -> bool:
        return self.consistent

    def summary(self) -> str:
        if self.consistent:
            return "causally consistent"
        if self.cyclic:
            return "INCONSISTENT: ->co contains a cycle"
        lines = [f"INCONSISTENT: {len(self.violations)} illegal read(s)"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def is_legal_read(history: History, read: Read) -> Optional[LegalityViolation]:
    """Check Definition 1 for one read; returns a violation or ``None``.

    The check is evaluated against ``history.causal_order``.  The three
    cases are:

    1. the read returned ``BOTTOM`` (``read_from is None``): legal iff
       no write to the same variable is in the read's causal past;
    2. some other write to the same variable sits causally between the
       writer and the read: illegal (second clause of Definition 1
       fails).
    """
    co = history.causal_order
    if read.read_from is None:
        for w in co.write_causal_past(read):
            if w.variable == read.variable:
                return LegalityViolation(
                    read=read,
                    reason=(
                        "returned BOTTOM although a write to the same "
                        "variable is in its causal past"
                    ),
                    interposed=w,
                )
        return None

    # Note: the writer always causally precedes the read, because the
    # ->ro edge itself is part of ->co's base relation; a contradictory
    # read-from (e.g. reading a same-process *later* write) shows up as
    # a ->co cycle, which check_causal_consistency rejects up front.
    writer = history.write_by_id(read.read_from)
    for w in co.write_causal_past(read):
        if w.variable != read.variable or w.wid == writer.wid:
            continue
        if co.precedes(writer, w):
            # writer ->co w ->co read with same variable: overwritten.
            return LegalityViolation(
                read=read,
                reason="a causally newer write to the same variable is "
                "interposed between the writer and the read",
                interposed=w,
            )
    return None


def check_causal_consistency(history: History) -> LegalityReport:
    """Check Definition 2 on a full history; returns a detailed report.

    A cyclic ``->co`` (only possible for histories no protocol run can
    produce) is reported as inconsistent with ``cyclic=True``.
    """
    co = history.causal_order
    if co.has_cycle:
        return LegalityReport(consistent=False, cyclic=True)
    violations = []
    for read in history.reads():
        v = is_legal_read(history, read)
        if v is not None:
            violations.append(v)
    return LegalityReport(consistent=not violations, violations=violations)


def is_causally_consistent(history: History) -> bool:
    """Boolean shortcut for :func:`check_causal_consistency`."""
    return check_causal_consistency(history).consistent
