"""Shared-memory theory substrate (Section 2 of the paper).

This subpackage implements the *abstract* shared-memory model the paper
reasons about, independently of any protocol or network:

- :mod:`repro.model.operations` -- read/write operations and write
  identities (``WriteId``), plus the distinguished initial value ``BOTTOM``;
- :mod:`repro.model.history` -- local and global histories, the process
  order ``->po``, the read-from order ``->ro`` and the causal order
  ``->co`` (its transitive closure), concurrency and causal pasts;
- :mod:`repro.model.legality` -- legal reads (Definition 1) and causally
  consistent histories (Definition 2);
- :mod:`repro.model.causality_graph` -- the write causality graph of
  Section 4.3 (immediate ``->co``-predecessors), used in the optimality
  proof and reproduced as Figure 7.
"""

from repro.model.operations import (
    BOTTOM,
    Bottom,
    Operation,
    OpKind,
    Read,
    Write,
    WriteId,
)
from repro.model.history import (
    CausalOrder,
    History,
    HistoryBuilder,
    LocalHistory,
    example_h1,
)
from repro.model.legality import (
    LegalityReport,
    LegalityViolation,
    check_causal_consistency,
    is_causally_consistent,
    is_legal_read,
)
from repro.model.causality_graph import (
    WriteCausalityGraph,
    immediate_predecessors,
)
from repro.model.serialization import (
    find_causal_serialization,
    is_causal_ahamad,
    verify_serialization,
)

__all__ = [
    "BOTTOM",
    "Bottom",
    "CausalOrder",
    "History",
    "HistoryBuilder",
    "LegalityReport",
    "LegalityViolation",
    "LocalHistory",
    "OpKind",
    "Operation",
    "Read",
    "Write",
    "WriteCausalityGraph",
    "WriteId",
    "check_causal_consistency",
    "example_h1",
    "find_causal_serialization",
    "immediate_predecessors",
    "is_causal_ahamad",
    "is_causally_consistent",
    "is_legal_read",
    "verify_serialization",
]
