"""Causal memory via per-process serializations (Ahamad et al. [1]).

The original causal-memory definition of Ahamad, Neiger, Burns, Kohli &
Hutto: a history is causal iff for **each** process ``p_i`` there is a
*serialization* of :math:`A_{i+w} = h_i \\cup \\{`all writes of
``H``:math:`\\}` -- a total order that

1. respects ``->co`` restricted to those operations, and
2. is sequentially legal: every read returns the value of the most
   recent preceding write to its variable (or :data:`BOTTOM` if none).

Relation to the reproduced paper's Definition 1-2 (Misra-style legal
reads): **serializability is strictly stronger.**  Both agree on
protocol-generated histories (a replica's apply order *is* a
serialization witness), but Definition 1 admits histories where a
process's reads oscillate between two ``->co``-concurrent writes --

::

    h1: w1(x)a        h2: w2(x)b        h3: r3(x)a; r3(x)b; r3(x)a

every read is legal by Definition 1 (neither write is causally
interposed past the other), yet no total order can make the third read
see ``a`` again after ``b`` was read.  ``tests/model/test_serialization.py``
pins this gap down; every simulated run in this repository satisfies
*both* definitions.

The search is backtracking over linear extensions with reads constrained
to the running last-write-per-variable state -- exponential in the
worst case, fine at checker scale (the equivalence tests keep histories
small; protocol-run witnesses are found greedily because the apply
order guides the extension).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.model.history import History
from repro.model.operations import Operation, Read, Write

OpKey = Tuple[int, int]


def _ops_for_process(history: History, process: int) -> List[Operation]:
    """:math:`A_{i+w}`: p_i's own operations plus every other write."""
    ops: List[Operation] = list(history.local(process).operations)
    for w in history.writes():
        if w.process != process:
            ops.append(w)
    return ops


def find_causal_serialization(
    history: History,
    process: int,
    *,
    max_steps: int = 200_000,
) -> Optional[List[Operation]]:
    """A serialization of ``A_{i+w}`` respecting ``->co``, or ``None``.

    ``max_steps`` bounds the backtracking (raises ``RuntimeError`` when
    exhausted, so a pathological history cannot hang a test run).
    """
    co = history.causal_order
    if co.has_cycle:
        return None
    ops = _ops_for_process(history, process)
    keys = {op.key for op in ops}
    # restricted predecessor sets
    preds: Dict[OpKey, Set[OpKey]] = {}
    for op in ops:
        preds[op.key] = {
            o.key for o in co.causal_past(op) if o.key in keys
        }

    placed: List[Operation] = []
    placed_keys: Set[OpKey] = set()
    last_write: Dict[Hashable, Optional[Write]] = {}
    steps = 0

    def candidates() -> List[Operation]:
        out = []
        for op in ops:
            if op.key in placed_keys:
                continue
            if preds[op.key] <= placed_keys:
                out.append(op)
        # Heuristic: try reads first (they are the constrained ones and
        # placing them early prunes the search), then writes whose
        # value some enabled read is waiting for.
        out.sort(key=lambda o: 0 if isinstance(o, Read) else 1)
        return out

    def read_ok(op: Read) -> bool:
        lw = last_write.get(op.variable)
        if op.read_from is None:
            return lw is None
        return lw is not None and lw.wid == op.read_from

    def dfs() -> bool:
        nonlocal steps
        steps += 1
        if steps > max_steps:
            raise RuntimeError(
                f"serialization search exceeded {max_steps} steps"
            )
        if len(placed) == len(ops):
            return True
        for op in candidates():
            if isinstance(op, Read):
                if not read_ok(op):
                    continue
                placed.append(op)
                placed_keys.add(op.key)
                if dfs():
                    return True
                placed.pop()
                placed_keys.remove(op.key)
            else:
                prev = last_write.get(op.variable)
                last_write[op.variable] = op
                placed.append(op)
                placed_keys.add(op.key)
                if dfs():
                    return True
                placed.pop()
                placed_keys.remove(op.key)
                last_write[op.variable] = prev
        return False

    if dfs():
        return list(placed)
    return None


def is_causal_ahamad(history: History, **kwargs) -> bool:
    """Ahamad et al.'s causal-memory check: a serialization exists for
    every process."""
    return all(
        find_causal_serialization(history, i, **kwargs) is not None
        for i in range(history.n_processes)
    )


def verify_serialization(
    history: History, process: int, serialization: Sequence[Operation]
) -> List[str]:
    """Independently validate a claimed serialization witness.

    Returns a list of violations (empty = valid): completeness, ``->co``
    order respect, and sequential read legality.
    """
    co = history.causal_order
    expected = {op.key for op in _ops_for_process(history, process)}
    got = [op.key for op in serialization]
    problems = []
    if set(got) != expected or len(got) != len(expected):
        problems.append("serialization is not a permutation of A_{i+w}")
        return problems
    position = {key: idx for idx, key in enumerate(got)}
    for a in serialization:
        for b in serialization:
            if a.key != b.key and co.precedes(a, b):
                if position[a.key] > position[b.key]:
                    problems.append(f"order violates ->co: {a} after {b}")
    last_write: Dict[Hashable, Optional[Write]] = {}
    for op in serialization:
        if isinstance(op, Write):
            last_write[op.variable] = op
        else:
            lw = last_write.get(op.variable)
            if op.read_from is None:
                if lw is not None:
                    problems.append(f"{op} reads BOTTOM after {lw}")
            elif lw is None or lw.wid != op.read_from:
                problems.append(f"{op} does not read the latest write ({lw})")
    return problems
