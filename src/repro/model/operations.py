"""Operations of the shared-memory model (paper, Section 2).

The paper considers a finite set of sequential processes
``p_1 .. p_n`` interacting through a shared memory of ``m`` locations
``x_1 .. x_m`` accessed via *read* and *write* operations:

- a write ``w_i(x_h)v`` executed by process ``p_i`` stores value ``v``
  into location ``x_h``;
- a read ``r_i(x_h)v`` executed by ``p_i`` returns the value ``v``
  currently visible at ``p_i`` for ``x_h``.

Every location initially holds the distinguished value ``BOTTOM``
(written :math:`\\bot` in the paper).

Write identity
--------------

The theory (and the trace checkers built on it) must recover the
*read-from* relation ``->ro`` exactly.  Raw values are ambiguous -- two
different writes may store the same value -- so every write in this
library carries a :class:`WriteId` ``(process, seq)`` where ``seq`` is
the 1-based index of the write in its issuer's local sequence of writes
("the k-th write issued by ``p_i``", the quantity tracked by the
paper's ``Write_co`` vectors, Observation 2).  A read records the
:class:`WriteId` of the write it returned (or ``None`` when it returned
``BOTTOM``), which pins ``->ro`` down unambiguously.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional


class Bottom:
    """The initial value :math:`\\bot` of every memory location.

    A singleton: use the module-level :data:`BOTTOM` instance.  It
    compares equal only to itself and hashes consistently, so it can be
    stored in replicated-variable maps like any other value.
    """

    _instance: Optional["Bottom"] = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "BOTTOM"

    def __reduce__(self):
        # Preserve singleton-ness across pickling (used when shipping
        # scenario descriptions to worker processes).
        return (Bottom, ())


#: The initial value of every memory location (:math:`\bot` in the paper).
BOTTOM = Bottom()


class OpKind(enum.Enum):
    """Kind discriminator for :class:`Operation` values."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True, order=True)
class WriteId:
    """Globally unique identity of a write operation.

    Attributes
    ----------
    process:
        0-based identifier of the issuing process ``p_i``.
    seq:
        1-based sequence number: this is the ``seq``-th write issued by
        ``process``.  The paper's Observation 2 states
        ``w.Write_co[i] = k`` iff ``w`` is the k-th write issued by
        ``p_i`` -- i.e. ``seq`` is exactly the issuer's own component of
        the write's ``Write_co`` vector.
    """

    process: int
    seq: int

    def __post_init__(self) -> None:
        if self.process < 0:
            raise ValueError(f"process must be >= 0, got {self.process}")
        if self.seq < 1:
            raise ValueError(f"seq is 1-based and must be >= 1, got {self.seq}")

    def __str__(self) -> str:
        return f"w[p{self.process}#{self.seq}]"

    # Immutable value object: copying is pure overhead, and write ids
    # are the most-copied objects in clone-based exploration
    # (repro.mck snapshots whole clusters at every branch point).
    def __copy__(self) -> "WriteId":
        return self

    def __deepcopy__(self, memo) -> "WriteId":
        return self


@dataclass(frozen=True, slots=True)
class Operation:
    """Base class for the two operation kinds of the model.

    An operation is identified *within a history* by the pair
    ``(process, index)`` where ``index`` is its 0-based position in the
    issuing process's local history (its rank in ``->po``).

    Subclasses: :class:`Write` and :class:`Read`.
    """

    process: int
    index: int

    @property
    def kind(self) -> OpKind:
        raise NotImplementedError

    @property
    def key(self) -> tuple[int, int]:
        """The ``(process, index)`` identity of this operation."""
        return (self.process, self.index)


@dataclass(frozen=True, slots=True)
class Write(Operation):
    """A write operation ``w_i(x_h)v`` (paper notation).

    Attributes
    ----------
    variable:
        The memory location name ``x_h`` (any hashable; the canonical
        examples use strings like ``"x1"``).
    value:
        The value ``v`` stored.
    wid:
        The write's :class:`WriteId`; ``wid.process`` must equal
        :attr:`Operation.process`.
    """

    variable: Hashable = field(default=None)
    value: Any = field(default=None)
    wid: WriteId = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.wid is None:
            raise ValueError("Write requires a WriteId")
        if self.wid.process != self.process:
            raise ValueError(
                f"WriteId process {self.wid.process} does not match "
                f"operation process {self.process}"
            )

    @property
    def kind(self) -> OpKind:
        return OpKind.WRITE

    def __str__(self) -> str:
        return f"w{self.process}({self.variable}){self.value!r}"


@dataclass(frozen=True, slots=True)
class Read(Operation):
    """A read operation ``r_i(x_h)v`` (paper notation).

    Attributes
    ----------
    variable:
        The memory location read.
    value:
        The value returned.
    read_from:
        The :class:`WriteId` of the write whose value was returned, or
        ``None`` when the read returned the initial value ``BOTTOM``
        (third clause of the ``->ro`` definition in Section 2).
    """

    variable: Hashable = field(default=None)
    value: Any = field(default=None)
    read_from: Optional[WriteId] = None

    def __post_init__(self) -> None:
        if self.read_from is None and not isinstance(self.value, Bottom):
            # A read with no writer must return BOTTOM (Section 2,
            # definition of ->ro, third bullet).  We enforce it eagerly:
            # traces that violate it would silently corrupt ->ro.
            raise ValueError(
                "Read with read_from=None must return BOTTOM; got "
                f"value={self.value!r}"
            )

    @property
    def kind(self) -> OpKind:
        return OpKind.READ

    def __str__(self) -> str:
        return f"r{self.process}({self.variable}){self.value!r}"


def fresh_value(wid: WriteId) -> str:
    """Return a human-readable value unique to ``wid``.

    Convenience for generated workloads: using ``fresh_value`` for every
    write makes histories readable while keeping values distinct, e.g.
    ``"v[p2#5]"`` for the fifth write of process 2.
    """
    return f"v[p{wid.process}#{wid.seq}]"
