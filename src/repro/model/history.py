"""Histories and the causal order ``->co`` (paper, Section 2).

A *local history* ``h_i`` is the sequence of operations executed by the
sequential process ``p_i`` (so ``->po_i`` is just the sequence order).
A *global history* ``H = <h_1 .. h_n>`` together with the causal order
``->co`` forms the partial order :math:`\\hat H = (H, \\mapsto_{co})`,
where ``->co`` is the transitive closure of

- **process order**: ``o1 ->po_i o2`` (same process, o1 earlier), and
- **read-from order**: ``o1 ->ro o2`` (o1 a write, o2 a read returning
  the value o1 wrote).

Two operations are *concurrent* (``o1 ||co o2``) when neither causally
precedes the other, and the *causal past* of an operation ``o`` is
:math:`\\downarrow(o, \\mapsto_{co}) = \\{o' \\mid o' \\mapsto_{co} o\\}`.

Implementation notes
--------------------

The base relation (po + ro edges) is a digraph over operations.  For
histories produced by correct protocols it is acyclic, but *arbitrary*
histories can contain ``->co`` cycles (e.g. two processes each reading a
value the other writes only later); the legality checker must detect
and reject those rather than crash.  :class:`CausalOrder` therefore
condenses strongly connected components first and computes reachability
bitsets (Python big-ints) over the condensation DAG in reverse
topological order -- O(V·E/64)-ish, comfortably fast for the
multi-thousand-operation traces the benchmarks produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from repro.model.operations import (
    BOTTOM,
    Operation,
    Read,
    Write,
    WriteId,
    fresh_value,
)

OpKey = Tuple[int, int]


@dataclass(frozen=True)
class LocalHistory:
    """The sequence of operations executed by one process.

    Operations must carry the owning process id and consecutive 0-based
    indices; :meth:`validate` checks both, plus the monotonicity of
    write sequence numbers (writes by ``p_i`` must carry ``WriteId``
    seq values 1, 2, 3, ... in order).
    """

    process: int
    operations: Tuple[Operation, ...]

    def validate(self) -> None:
        expected_seq = 1
        for idx, op in enumerate(self.operations):
            if op.process != self.process:
                raise ValueError(
                    f"operation {op} at index {idx} belongs to process "
                    f"{op.process}, not {self.process}"
                )
            if op.index != idx:
                raise ValueError(
                    f"operation {op} has index {op.index}, expected {idx}"
                )
            if isinstance(op, Write):
                if op.wid.seq != expected_seq:
                    raise ValueError(
                        f"write {op} has seq {op.wid.seq}, expected "
                        f"{expected_seq} (write seq numbers must be "
                        "consecutive from 1)"
                    )
                expected_seq += 1

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __getitem__(self, idx: int) -> Operation:
        return self.operations[idx]

    @property
    def writes(self) -> Tuple[Write, ...]:
        return tuple(op for op in self.operations if isinstance(op, Write))

    @property
    def reads(self) -> Tuple[Read, ...]:
        return tuple(op for op in self.operations if isinstance(op, Read))


class History:
    """A global history ``H = <h_1 .. h_n>`` with its causal order.

    Construct directly from :class:`LocalHistory` values or use
    :class:`HistoryBuilder` for hand-written examples.  The causal
    order is computed lazily and cached.
    """

    def __init__(self, locals_: Sequence[LocalHistory], *, validate: bool = True):
        locals_ = sorted(locals_, key=lambda lh: lh.process)
        if validate:
            for i, lh in enumerate(locals_):
                if lh.process != i:
                    raise ValueError(
                        f"local histories must cover processes 0..n-1; "
                        f"got process {lh.process} at position {i}"
                    )
                lh.validate()
        self._locals: Tuple[LocalHistory, ...] = tuple(locals_)
        self._writes_by_id: Dict[WriteId, Write] = {}
        for lh in self._locals:
            for op in lh.writes:
                if op.wid in self._writes_by_id:
                    raise ValueError(f"duplicate WriteId {op.wid}")
                self._writes_by_id[op.wid] = op

    # -- basic accessors --------------------------------------------------

    @property
    def n_processes(self) -> int:
        return len(self._locals)

    @property
    def locals(self) -> Tuple[LocalHistory, ...]:
        return self._locals

    def local(self, process: int) -> LocalHistory:
        return self._locals[process]

    def operations(self) -> Iterator[Operation]:
        """All operations, grouped by process, in process order."""
        for lh in self._locals:
            yield from lh

    def writes(self) -> Iterator[Write]:
        for lh in self._locals:
            yield from lh.writes

    def reads(self) -> Iterator[Read]:
        for lh in self._locals:
            yield from lh.reads

    def write_by_id(self, wid: WriteId) -> Write:
        """Look up the write with identity ``wid`` (KeyError if absent)."""
        return self._writes_by_id[wid]

    def has_write(self, wid: WriteId) -> bool:
        return wid in self._writes_by_id

    def op(self, key: OpKey) -> Operation:
        process, index = key
        return self._locals[process][index]

    def variables(self) -> set:
        return {op.variable for op in self.operations()}

    # -- relations ---------------------------------------------------------

    def base_edges(self) -> Iterator[Tuple[Operation, Operation]]:
        """The generating edges of ``->co``: po edges plus ro edges.

        Process order contributes only *consecutive* pairs (transitivity
        is handled by the closure); read-from contributes one edge per
        read that returned a written (non-BOTTOM) value.
        """
        for lh in self._locals:
            for a, b in zip(lh.operations, lh.operations[1:]):
                yield (a, b)
        for lh in self._locals:
            for op in lh.reads:
                if op.read_from is not None:
                    writer = self._writes_by_id.get(op.read_from)
                    if writer is None:
                        raise ValueError(
                            f"read {op} reads-from unknown write {op.read_from}"
                        )
                    yield (writer, op)

    @cached_property
    def causal_order(self) -> "CausalOrder":
        """The (cached) transitive closure structure for ``->co``."""
        return CausalOrder(self)

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(lh) for lh in self._locals)

    def __str__(self) -> str:
        lines = []
        for lh in self._locals:
            ops = "; ".join(str(op) for op in lh)
            lines.append(f"h{lh.process}: {ops}")
        return "\n".join(lines)


class CausalOrder:
    """Reachability structure answering ``->co`` queries on a history.

    Handles cyclic base relations gracefully (possible only in
    *inconsistent* histories): operations inside a nontrivial strongly
    connected component causally precede themselves, which
    :mod:`repro.model.legality` treats as an automatic violation.
    """

    def __init__(self, history: History):
        self._history = history
        g = nx.DiGraph()
        for op in history.operations():
            g.add_node(op.key)
        for a, b in history.base_edges():
            g.add_edge(a.key, b.key)
        self._graph = g

        # Condense SCCs, then propagate descendant bitsets bottom-up.
        condensation = nx.condensation(g)
        order = list(nx.topological_sort(condensation))
        comp_bit: Dict[int, int] = {}
        node_bit: Dict[OpKey, int] = {}
        nodes = list(g.nodes())
        self._node_index: Dict[OpKey, int] = {nk: i for i, nk in enumerate(nodes)}
        self._nodes: List[OpKey] = nodes
        for comp in condensation.nodes():
            mask = 0
            for nk in condensation.nodes[comp]["members"]:
                mask |= 1 << self._node_index[nk]
            comp_bit[comp] = mask
        # descendants[comp] = union of member bits of all reachable comps
        desc: Dict[int, int] = {}
        for comp in reversed(order):
            mask = 0
            for succ in condensation.successors(comp):
                mask |= desc[succ] | comp_bit[succ]
            desc[comp] = mask
        self._trivial_scc: Dict[OpKey, bool] = {}
        self._desc_of_node: Dict[OpKey, int] = {}
        for comp in condensation.nodes():
            members = condensation.nodes[comp]["members"]
            nontrivial = len(members) > 1
            for nk in members:
                # Descendants of a node: everything reachable from its
                # component, plus (for nontrivial SCCs) the rest of the
                # component including the node itself.
                extra = comp_bit[comp] if nontrivial else 0
                self._desc_of_node[nk] = desc[comp] | extra
                self._trivial_scc[nk] = not nontrivial

    # -- queries -----------------------------------------------------------

    @property
    def has_cycle(self) -> bool:
        """True when the base relation contains a cycle.

        A cyclic ``->co`` can only arise from an inconsistent history;
        correct protocol traces always yield a DAG.
        """
        return any(not t for t in self._trivial_scc.values())

    def precedes(self, o1: Operation, o2: Operation) -> bool:
        """``o1 ->co o2``: does o1 causally precede o2?"""
        return bool(self._desc_of_node[o1.key] & (1 << self._node_index[o2.key]))

    def concurrent(self, o1: Operation, o2: Operation) -> bool:
        """``o1 ||co o2``: neither operation causally precedes the other."""
        if o1.key == o2.key:
            return False
        return not self.precedes(o1, o2) and not self.precedes(o2, o1)

    def causal_past(self, o: Operation) -> List[Operation]:
        """:math:`\\downarrow(o, \\mapsto_{co})` -- all ops preceding ``o``."""
        target_bit = 1 << self._node_index[o.key]
        out = []
        for nk in self._nodes:
            if nk != o.key and (self._desc_of_node[nk] & target_bit):
                out.append(self._history.op(nk))
        return out

    def causal_future(self, o: Operation) -> List[Operation]:
        """All operations that ``o`` causally precedes."""
        mask = self._desc_of_node[o.key]
        out = []
        for nk in self._nodes:
            if nk != o.key and (mask & (1 << self._node_index[nk])):
                out.append(self._history.op(nk))
        # A node in a nontrivial SCC reaches itself; exclude it above but
        # report cycles via has_cycle instead.
        return out

    def write_causal_past(self, o: Operation) -> List[Write]:
        """The writes in ``o``'s causal past (what safety quantifies over)."""
        return [op for op in self.causal_past(o) if isinstance(op, Write)]

    def precedes_matrix(self, ops: Sequence[Operation]):
        """Boolean ``(k, k)`` numpy matrix: ``M[i, j]`` iff
        ``ops[i] ->co ops[j]``.

        The batch interface for analyzers that compare many pairs (the
        safety checker sweeps all write pairs x all processes);
        extracted straight from the per-node descendant bitsets.
        """
        import numpy as np

        k = len(ops)
        out = np.zeros((k, k), dtype=bool)
        cols = [(j, 1 << self._node_index[op.key]) for j, op in enumerate(ops)]
        for i, op in enumerate(ops):
            mask = self._desc_of_node[op.key]
            row = out[i]
            for j, bit in cols:
                if mask & bit:
                    row[j] = True
        return out

    def closure_vectors(self, ops: Sequence[Operation]):
        """0/1 ``(k, V)`` numpy matrix of downward-closure indicators.

        Row ``i`` marks, over all ``V`` nodes of the history, the set
        :math:`\\{ops[i]\\} \\cup desc(ops[i])`.  On a DAG, strict
        elementwise domination of these rows characterizes ``->co``::

            ops[i] ->co ops[j]  iff  row(j) < row(i)

        (forward: reachability makes ``closure(j)`` a subset of
        ``closure(i)``, strictly since ``i`` is not its own descendant;
        backward: ``j`` in ``closure(i)`` and ``j != i`` is exactly
        reachability).  So ``batch_precedes_matrix(closure_vectors(
        ops)).T`` is :meth:`precedes_matrix` computed by numpy
        broadcasting instead of per-pair Python -- the vectorized
        legality checker's substrate.  Only meaningful on acyclic
        histories (callers check :attr:`has_cycle` first).
        """
        import numpy as np

        n_nodes = len(self._nodes)
        nbytes = max(1, (n_nodes + 7) // 8)
        out = np.zeros((len(ops), n_nodes), dtype=np.uint8)
        for i, op in enumerate(ops):
            mask = (
                self._desc_of_node[op.key]
                | (1 << self._node_index[op.key])
            )
            packed = np.frombuffer(
                mask.to_bytes(nbytes, "little"), dtype=np.uint8
            )
            out[i] = np.unpackbits(
                packed, bitorder="little", count=n_nodes
            )
        return out

    def writes_precede(self, w1: Write, w2: Write) -> bool:
        """Convenience alias of :meth:`precedes` restricted to writes."""
        return self.precedes(w1, w2)

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying (uncondensated) base-relation digraph."""
        return self._graph


class HistoryBuilder:
    """Fluent construction of hand-written histories.

    Example (the paper's Example 1, history :math:`\\hat H_1`)::

        b = HistoryBuilder(3)
        wa = b.write(0, "x1", "a")
        wc = b.write(0, "x1", "c")
        b.read(1, "x1", wa)          # r2(x1)a
        wb = b.write(1, "x2", "b")
        b.read(2, "x2", wb)          # r3(x2)b
        wd = b.write(2, "x2", "d")
        h1 = b.build()

    ``write`` returns the :class:`WriteId` so later reads can name their
    writer directly, keeping ``->ro`` explicit and unambiguous.
    """

    def __init__(self, n_processes: int):
        if n_processes < 1:
            raise ValueError("need at least one process")
        self._n = n_processes
        self._ops: List[List[Operation]] = [[] for _ in range(n_processes)]
        self._next_seq: List[int] = [1] * n_processes
        self._writes: Dict[WriteId, Write] = {}

    def write(
        self,
        process: int,
        variable: Hashable,
        value: Any = None,
    ) -> WriteId:
        """Append a write by ``process``; returns its :class:`WriteId`.

        When ``value`` is omitted a fresh, human-readable unique value
        is generated.
        """
        self._check_process(process)
        wid = WriteId(process, self._next_seq[process])
        self._next_seq[process] += 1
        if value is None:
            value = fresh_value(wid)
        op = Write(
            process=process,
            index=len(self._ops[process]),
            variable=variable,
            value=value,
            wid=wid,
        )
        self._ops[process].append(op)
        self._writes[wid] = op
        return wid

    def read(
        self,
        process: int,
        variable: Hashable,
        from_: Optional[WriteId],
    ) -> Read:
        """Append a read by ``process`` returning ``from_``'s value.

        ``from_=None`` models a read of the initial value ``BOTTOM``.
        The read's variable must match the writer's variable.
        """
        self._check_process(process)
        if from_ is None:
            value: Any = BOTTOM
        else:
            writer = self._writes.get(from_)
            if writer is None:
                raise ValueError(f"read names unknown write {from_}")
            if writer.variable != variable:
                raise ValueError(
                    f"read of {variable!r} cannot read-from write of "
                    f"{writer.variable!r}"
                )
            value = writer.value
        op = Read(
            process=process,
            index=len(self._ops[process]),
            variable=variable,
            value=value,
            read_from=from_,
        )
        self._ops[process].append(op)
        return op

    def build(self, *, validate: bool = True) -> History:
        locals_ = [
            LocalHistory(process=i, operations=tuple(ops))
            for i, ops in enumerate(self._ops)
        ]
        return History(locals_, validate=validate)

    def _check_process(self, process: int) -> None:
        if not 0 <= process < self._n:
            raise ValueError(
                f"process {process} out of range [0, {self._n})"
            )


def example_h1() -> History:
    """The paper's Example 1 history :math:`\\hat H_1` (three processes).

    ::

        h1: w1(x1)a ; w1(x1)c
        h2: r2(x1)a ; w2(x2)b
        h3: r3(x2)b ; w3(x2)d

    (Paper uses 1-based process names p1..p3; this library is 0-based,
    so paper ``p1`` is process 0, etc.)
    """
    b = HistoryBuilder(3)
    wa = b.write(0, "x1", "a")
    b.write(0, "x1", "c")
    b.read(1, "x1", wa)
    wb = b.write(1, "x2", "b")
    b.read(2, "x2", wb)
    b.write(2, "x2", "d")
    return b.build()
