"""Workloads: operation vocabulary, random generators, paper scenarios."""

from repro.workloads.generators import (
    WorkloadConfig,
    chain_programs,
    random_programs,
    random_schedule,
    write_burst_schedule,
)
from repro.workloads.ops import (
    Op,
    Program,
    ReadOp,
    ReadStep,
    Schedule,
    ScheduledOp,
    Step,
    WaitReadStep,
    WriteOp,
    WriteStep,
)
from repro.workloads.patterns import (
    ALL_SCENARIOS,
    H1Scenario,
    example1_programs,
    fig1_run1,
    fig1_run2,
    fig3,
    fig6,
    h1_schedule,
)

__all__ = [
    "ALL_SCENARIOS",
    "H1Scenario",
    "Op",
    "Program",
    "ReadOp",
    "ReadStep",
    "Schedule",
    "ScheduledOp",
    "Step",
    "WaitReadStep",
    "WorkloadConfig",
    "WriteOp",
    "WriteStep",
    "chain_programs",
    "example1_programs",
    "fig1_run1",
    "fig1_run2",
    "fig3",
    "fig6",
    "h1_schedule",
    "random_programs",
    "random_schedule",
    "write_burst_schedule",
]
