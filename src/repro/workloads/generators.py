"""Seeded random workload generators for the benchmark sweeps.

All generators are pure functions of their :class:`WorkloadConfig`:
the same config (same seed) always yields the same workload, and the
open-loop schedules they produce pin every operation to an absolute
time -- so replaying one schedule under different protocols compares
*protocols*, not workload noise (DESIGN.md, "Open-loop vs closed-loop").

Variable popularity follows a (truncated) Zipf law: ``zipf_s = 0``
gives uniform access, larger values concentrate traffic on hot
variables -- which raises same-variable write chains and hence
writing-semantics overwrite opportunities, one of the Q3 sweep axes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.workloads.ops import (
    Program,
    ReadOp,
    ReadStep,
    Schedule,
    ScheduledOp,
    WriteOp,
    WriteStep,
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a random workload.

    Attributes
    ----------
    n_processes:
        Process count ``n``.
    ops_per_process:
        Operations each process issues.
    n_variables:
        Size ``m`` of the shared memory.
    write_fraction:
        Probability an operation is a write (the rest are reads).
    mean_gap:
        Mean spacing between one process's consecutive operations
        (exponential think times), in simulated time units.
    zipf_s:
        Zipf exponent for variable choice (0 = uniform).
    seed:
        RNG seed; every derived quantity is deterministic in it.
    """

    n_processes: int = 3
    ops_per_process: int = 20
    n_variables: int = 4
    write_fraction: float = 0.5
    mean_gap: float = 1.0
    zipf_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")
        if self.ops_per_process < 0:
            raise ValueError("ops_per_process must be >= 0")
        if self.n_variables < 1:
            raise ValueError("n_variables must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")


def _zipf_weights(m: int, s: float) -> List[float]:
    return [1.0 / (k + 1) ** s for k in range(m)]


def _pick_variable(rng: random.Random, config: WorkloadConfig) -> str:
    weights = _zipf_weights(config.n_variables, config.zipf_s)
    (idx,) = rng.choices(range(config.n_variables), weights=weights)
    return f"x{idx}"


def random_schedule(config: WorkloadConfig) -> Schedule:
    """An open-loop schedule: per-process Poisson-ish op streams.

    Writes carry ``value=None`` so the substrate generates fresh unique
    values (exact read-from extraction).
    """
    rng = random.Random(f"schedule-{config.seed}")
    items: List[ScheduledOp] = []
    for p in range(config.n_processes):
        t = 0.0
        for _ in range(config.ops_per_process):
            t += rng.expovariate(1.0 / config.mean_gap)
            var = _pick_variable(rng, config)
            if rng.random() < config.write_fraction:
                items.append(ScheduledOp(t, p, WriteOp(var)))
            else:
                items.append(ScheduledOp(t, p, ReadOp(var)))
    return Schedule.of(items)


def random_programs(config: WorkloadConfig) -> List[Program]:
    """Closed-loop equivalent: one program per process with exponential
    think times.  Histories become protocol-dependent (reads observe
    protocol-visible values), so use these for realism, not comparison.
    """
    rng = random.Random(f"programs-{config.seed}")
    programs: List[Program] = []
    for p in range(config.n_processes):
        steps = []
        for _ in range(config.ops_per_process):
            delay = rng.expovariate(1.0 / config.mean_gap)
            var = _pick_variable(rng, config)
            if rng.random() < config.write_fraction:
                steps.append(WriteStep(var, None, delay=delay))
            else:
                steps.append(ReadStep(var, delay=delay))
        programs.append(Program(steps=tuple(steps)))
    return programs


def write_burst_schedule(
    n_processes: int,
    bursts: int,
    burst_size: int,
    *,
    variable_per_process: bool = True,
    gap: float = 5.0,
    spacing: float = 0.05,
) -> Schedule:
    """Bursty writers: each process emits ``bursts`` bursts of
    ``burst_size`` back-to-back writes.

    With ``variable_per_process=True`` each process hammers its own
    variable (maximal same-variable chains -- the writing-semantics
    sweet spot); otherwise everyone writes the same variable.
    """
    if bursts < 1 or burst_size < 1:
        raise ValueError("bursts and burst_size must be >= 1")
    items: List[ScheduledOp] = []
    for p in range(n_processes):
        for b in range(bursts):
            t0 = b * gap + p * spacing
            var = f"x{p}" if variable_per_process else "x"
            for k in range(burst_size):
                items.append(ScheduledOp(t0 + k * spacing, p, WriteOp(var)))
    return Schedule.of(items)


def random_partial_schedule(config: WorkloadConfig, replication) -> Schedule:
    """Like :func:`random_schedule`, but every operation targets a
    variable its issuing process actually replicates.

    ``replication`` is a :class:`repro.protocols.partial.ReplicationMap`
    whose variables must be named ``x0..x{m-1}`` (what the config's
    generator produces).  Processes holding nothing are skipped.
    """
    rng = random.Random(f"partial-schedule-{config.seed}")
    items: List[ScheduledOp] = []
    for p in range(config.n_processes):
        held = sorted(map(str, replication.held_by(p)))
        if not held:
            continue
        t = 0.0
        for _ in range(config.ops_per_process):
            t += rng.expovariate(1.0 / config.mean_gap)
            var = rng.choice(held)
            if rng.random() < config.write_fraction:
                items.append(ScheduledOp(t, p, WriteOp(var)))
            else:
                items.append(ScheduledOp(t, p, ReadOp(var)))
    return Schedule.of(items)


def chain_programs(n_processes: int, *, rounds: int = 1, poll: float = 0.2) -> List[Program]:
    """A causal chain: p0 writes, p1 waits-for-and-relays, p2 relays, ...

    Produces maximally deep write causality graphs (longest ``->co``
    chains), stressing the activation predicates.
    """
    from repro.workloads.ops import WaitReadStep

    if n_processes < 2:
        raise ValueError("chain needs >= 2 processes")
    programs: List[Program] = []
    for p in range(n_processes):
        steps = []
        for r in range(rounds):
            token_val = f"r{r}"
            if p == 0:
                if r > 0:
                    # wait for the previous round to wrap around
                    steps.append(
                        WaitReadStep(f"c{n_processes - 1}", f"r{r - 1}", poll=poll)
                    )
                steps.append(WriteStep("c0", token_val))
            else:
                steps.append(WaitReadStep(f"c{p - 1}", token_val, poll=poll))
                steps.append(WriteStep(f"c{p}", token_val))
        programs.append(Program(steps=tuple(steps)))
    return programs
