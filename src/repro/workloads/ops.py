"""Workload vocabulary shared by the simulator and the asyncio runtime.

Two workload styles (DESIGN.md, "Open-loop vs closed-loop"):

- **open-loop**: a :class:`Schedule` of :class:`ScheduledOp` items,
  each pinned to an absolute issue time.  Because issue times do not
  depend on protocol behaviour, two protocols replaying the same
  schedule generate *identical* send events -- the fair-comparison mode
  used by the delay benchmarks.
- **closed-loop**: one :class:`Program` (list of :class:`Step`) per
  process, executed sequentially with think times; a
  :class:`WaitReadStep` polls a variable until an expected value
  appears, which is how read-from-dependent histories like the paper's
  Example 1 arise naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Open-loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WriteOp:
    """Write ``value`` to ``variable``; ``value=None`` means "generate a
    fresh unique value" (recommended: keeps read-from extraction exact
    even without inspecting WriteIds)."""

    variable: Hashable
    value: Any = None


@dataclass(frozen=True)
class ReadOp:
    """Read ``variable`` (wait-free, returns whatever is visible)."""

    variable: Hashable


Op = Union[WriteOp, ReadOp]


@dataclass(frozen=True)
class ScheduledOp:
    """An operation pinned to an absolute simulation time."""

    time: float
    process: int
    op: Op

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("issue time must be >= 0")


@dataclass(frozen=True)
class Schedule:
    """An open-loop workload: time-pinned operations for all processes."""

    ops: Tuple[ScheduledOp, ...]

    @classmethod
    def of(cls, items: Sequence[ScheduledOp]) -> "Schedule":
        return cls(ops=tuple(sorted(items, key=lambda s: (s.time, s.process))))

    def for_process(self, process: int) -> List[ScheduledOp]:
        return [s for s in self.ops if s.process == process]

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    @property
    def n_writes(self) -> int:
        return sum(1 for s in self.ops if isinstance(s.op, WriteOp))

    def max_process(self) -> int:
        return max((s.process for s in self.ops), default=-1)

    def __iter__(self):
        return iter(self.ops)


# ---------------------------------------------------------------------------
# Closed-loop
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WriteStep:
    """Write after ``delay`` think time."""

    variable: Hashable
    value: Any = None
    delay: float = 0.0


@dataclass(frozen=True)
class ReadStep:
    """Read after ``delay`` think time (single read, any value)."""

    variable: Hashable
    delay: float = 0.0


@dataclass(frozen=True)
class WaitReadStep:
    """Poll ``variable`` (a read every ``poll``) until it returns
    ``expect``; every poll is a real read operation of the history.

    ``accept`` optionally widens the wait to *any* of a set of values
    -- needed under randomized latencies, where a newer write to the
    same variable can land before a poll ever observes the older one
    (e.g. waiting for H1's ``a`` when ``c`` may overwrite it first).

    ``max_polls`` turns a would-be infinite wait (e.g. waiting for a
    value a writing-semantics protocol overwrote) into a loud failure.
    """

    variable: Hashable
    expect: Any
    poll: float = 0.5
    delay: float = 0.0
    max_polls: int = 10_000
    accept: Optional[Tuple[Any, ...]] = None

    def matches(self, value: Any) -> bool:
        if self.accept is not None:
            return value in self.accept
        return value == self.expect


Step = Union[WriteStep, ReadStep, WaitReadStep]


@dataclass(frozen=True)
class Program:
    """The step list one process executes sequentially."""

    steps: Tuple[Step, ...]

    @classmethod
    def of(cls, *steps: Step) -> "Program":
        return cls(steps=tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)
