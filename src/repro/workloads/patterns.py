"""Canonical scenarios: the paper's Example 1 and its figure runs.

The paper works one history throughout -- :math:`\\hat H_1` (Example 1):

::

    h1: w1(x1)a ; w1(x1)c
    h2: r2(x1)a ; w2(x2)b
    h3: r3(x2)b ; w3(x2)d

(paper processes p1..p3 are our 0-based 0..2).  Figures 1, 2, 3 and 6
are *runs* compliant with that history, distinguished only by message
arrival orders at p3 (our process 2).  Each :class:`H1Scenario` pins
the same open-loop schedule and forces one of those arrival orders via
scripted latencies:

========  =============================================  ======================
scenario  arrival order at process 2                     paper artifact
========  =============================================  ======================
fig1_run1 a, b, c (fully causal order)                   Figure 1, run (1)
fig1_run2 b, a, c (b must wait for a: necessary delay)   Figure 1, run (2)
fig3      a, b, c-late (ANBKH delays b until c:          Figures 2-3, Table 2
          FALSE causality; OptP applies b on arrival)
fig6      b, a, then c much later (OptP's run shown       Figure 6
          with its Write_co evolution)
========  =============================================  ======================

Schedule timing (shared by all scenarios)::

    t=0.0  p0 writes x1=a          t=3.5  p1 writes x2=b
    t=0.5  p0 writes x1=c          t=6.0  p2 reads x2  (returns b)
    t=3.0  p1 reads x1 (returns a) t=6.5  p2 writes x2=d

and c's message reaches p1 at t=3.3 -- *after* p1's read (so the read
returns a) but *before* p1 writes b (so ANBKH's apply-counting vector
for b picks c up: the root of the false causality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.model.operations import WriteId
from repro.sim.latency import ScriptedLatency
from repro.workloads.ops import (
    Program,
    ReadOp,
    Schedule,
    ScheduledOp,
    WaitReadStep,
    WriteOp,
    WriteStep,
)

#: WriteIds of the four writes of H1 (0-based processes).
WID_A = WriteId(0, 1)
WID_C = WriteId(0, 2)
WID_B = WriteId(1, 1)
WID_D = WriteId(2, 1)


def h1_schedule() -> Schedule:
    """The open-loop operation schedule shared by every H1 scenario."""
    return Schedule.of(
        [
            ScheduledOp(0.0, 0, WriteOp("x1", "a")),
            ScheduledOp(0.5, 0, WriteOp("x1", "c")),
            ScheduledOp(3.0, 1, ReadOp("x1")),
            ScheduledOp(3.5, 1, WriteOp("x2", "b")),
            ScheduledOp(6.0, 2, ReadOp("x2")),
            ScheduledOp(6.5, 2, WriteOp("x2", "d")),
        ]
    )


def example1_programs() -> List[Program]:
    """Closed-loop H1: read-from edges arise from value waits instead of
    scripted latencies (works under any latency model)."""
    return [
        Program.of(WriteStep("x1", "a"), WriteStep("x1", "c", delay=0.5)),
        Program.of(WaitReadStep("x1", "a", poll=0.3), WriteStep("x2", "b")),
        Program.of(WaitReadStep("x2", "b", poll=0.3), WriteStep("x2", "d")),
    ]


def _script(arrivals: Dict[Tuple[WriteId, int], float]) -> ScriptedLatency:
    """Build a ScriptedLatency from absolute *arrival* times.

    Send times are fixed by :func:`h1_schedule` (a at 0.0, c at 0.5,
    b at 3.5, d at 6.5), so arrival - send = latency.
    """
    send_time = {WID_A: 0.0, WID_C: 0.5, WID_B: 3.5, WID_D: 6.5}
    script = {}
    for (wid, dest), arrival in arrivals.items():
        latency = arrival - send_time[wid]
        if latency <= 0:
            raise ValueError(f"arrival {arrival} precedes send of {wid}")
        script[(("update", wid), dest)] = latency
    return ScriptedLatency(script, default=1.0)


@dataclass(frozen=True)
class H1Scenario:
    """One figure's run: schedule + forced arrival order + expectations."""

    name: str
    description: str
    schedule: Schedule
    latency: ScriptedLatency
    #: write delays an OptP run of this scenario must exhibit, total
    expected_optp_delays: int
    #: write delays an ANBKH run must exhibit, total
    expected_anbkh_delays: int


def fig1_run1() -> H1Scenario:
    """Figure 1, run (1): everything reaches p2 in causal order; OptP
    executes zero write delays."""
    return H1Scenario(
        name="fig1-run1",
        description="a, b, c arrive at p2 in causal order: no delays",
        schedule=h1_schedule(),
        latency=_script(
            {
                (WID_A, 1): 1.0,   # a -> p1 before the read at 3.0
                (WID_C, 1): 3.3,   # c -> p1 between read (3.0) and b (3.5)
                (WID_A, 2): 1.0,
                (WID_B, 2): 4.5,
                (WID_C, 2): 5.0,
            }
        ),
        expected_optp_delays=0,
        expected_anbkh_delays=1,  # ANBKH still waits for c before b
    )


def fig1_run2() -> H1Scenario:
    """Figure 1, run (2): b overtakes a on the way to p2, so applying b
    must wait for a -- one *necessary* delay (X_co-safe demands it)."""
    return H1Scenario(
        name="fig1-run2",
        description="b arrives at p2 before a: one necessary delay",
        schedule=h1_schedule(),
        latency=_script(
            {
                (WID_A, 1): 1.0,
                (WID_C, 1): 3.3,
                (WID_A, 2): 4.4,   # a late...
                (WID_B, 2): 4.0,   # ...b first
                (WID_C, 2): 5.0,
            }
        ),
        expected_optp_delays=1,
        # still 1: the buffered b counts one delay, even though ANBKH
        # waits for both a and c before releasing it
        expected_anbkh_delays=1,
    )


def fig3() -> H1Scenario:
    """Figures 2-3 / Table 2: c reaches p2 late; ANBKH delays b until c
    (false causality -- b ||co c), OptP applies b on arrival."""
    return H1Scenario(
        name="fig3",
        description="c late at p2: ANBKH false-causality delay on b",
        schedule=h1_schedule(),
        latency=_script(
            {
                (WID_A, 1): 1.0,
                (WID_C, 1): 3.3,
                (WID_A, 2): 1.0,
                (WID_B, 2): 4.5,
                (WID_C, 2): 5.5,   # after b, before p2's read at 6.0
            }
        ),
        expected_optp_delays=0,
        expected_anbkh_delays=1,
    )


def fig6() -> H1Scenario:
    """Figure 6: OptP's run -- b arrives at p2 before a (one necessary
    delay), and p2 applies b without ever waiting for the much-later c.

    Note: under ANBKH this scenario produces a *different* observed
    history -- b stays buffered until c lands at t=9.0, so p2's read at
    t=6.0 returns the initial value, not b.  Only OptP realizes H1 here,
    which is the point of Figure 6.
    """
    return H1Scenario(
        name="fig6",
        description="b before a at p2, c very late: OptP's Figure 6 run",
        schedule=h1_schedule(),
        latency=_script(
            {
                (WID_A, 1): 1.0,
                (WID_C, 1): 3.3,
                (WID_A, 2): 4.8,
                (WID_B, 2): 4.0,
                (WID_C, 2): 9.0,   # long after p2 read b and wrote d
            }
        ),
        expected_optp_delays=1,
        expected_anbkh_delays=1,
    )


ALL_SCENARIOS = {
    s().name: s for s in (fig1_run1, fig1_run2, fig3, fig6)
}
