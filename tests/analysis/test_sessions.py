"""Tests for the session-guarantee checker."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.sessions import check_sessions
from repro.model.history import HistoryBuilder, example_h1
from repro.protocols import PROTOCOLS
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


class TestOnKnownHistories:
    def test_h1_satisfies_all(self):
        rep = check_sessions(example_h1())
        assert rep.ok
        assert "all session guarantees hold" in rep.summary()

    def test_ryw_violation_detected(self):
        """Reading a value causally OLDER than one's own write."""
        b = HistoryBuilder(2)
        w_old = b.write(1, "x", "old")
        b.read(0, "x", w_old)      # old enters p0's causal past
        b.write(0, "x", "mine")    # old ->co mine
        b.read(0, "x", w_old)      # stale read after own newer write
        rep = check_sessions(b.build())
        assert rep.ryw and not rep.ok
        assert "RYW" in rep.summary()

    def test_concurrent_overwrite_of_own_write_is_ryw_legal(self):
        b = HistoryBuilder(2)
        w_other = b.write(1, "x", "other")   # concurrent with p0's write
        b.write(0, "x", "mine")
        b.read(0, "x", w_other)
        rep = check_sessions(b.build())
        assert not rep.ryw

    def test_ryw_bottom_violation(self):
        b = HistoryBuilder(1)
        b.write(0, "x", 1)
        b.read(0, "x", None)
        rep = check_sessions(b.build())
        assert rep.ryw

    def test_monotonic_reads_violation(self):
        b = HistoryBuilder(3)
        w_old = b.write(0, "x", "old")
        b.read(1, "x", w_old)
        w_new = b.write(1, "x", "new")   # old ->co new
        b.read(2, "x", w_new)
        b.read(2, "x", w_old)            # regress
        rep = check_sessions(b.build())
        assert rep.monotonic_reads

    def test_monotonic_reads_bottom_regression(self):
        b = HistoryBuilder(2)
        w = b.write(0, "x", 1)
        b.read(1, "x", w)
        b.read(1, "x", None)
        rep = check_sessions(b.build())
        assert rep.monotonic_reads

    def test_oscillation_between_concurrent_writes_is_mr_legal(self):
        """MR only forbids going causally *backwards*; flipping between
        concurrent writes does not violate it (that's the Def-1 vs
        serialization gap, see test_serialization.py)."""
        b = HistoryBuilder(3)
        wa = b.write(0, "x", "a")
        wb = b.write(1, "x", "b")
        b.read(2, "x", wa)
        b.read(2, "x", wb)
        b.read(2, "x", wa)
        rep = check_sessions(b.build())
        assert rep.ok

    def test_wfr_violation_needs_manual_history(self):
        """->po + ->ro make WFR structural for builder histories; a
        violation can only appear in corrupted traces, which we model
        by bypassing validation."""
        from repro.model.history import History, LocalHistory
        from repro.model.operations import Read, Write, WriteId

        # p1 "reads" p0's write... which p0 issues later (no such edge
        # in any run; ->co here would be cyclic, and sessions are not
        # even evaluated before legality in practice).  Instead check
        # the positive direction: WFR holds on all valid histories.
        rep = check_sessions(example_h1())
        assert not rep.wfr


class TestAllProtocolsSatisfySessions:
    @pytest.mark.parametrize("proto", sorted(PROTOCOLS))
    def test_protocol_runs(self, proto):
        for seed in range(2):
            cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                                 write_fraction=0.5, seed=seed)
            r = run_schedule(proto, 4, random_schedule(cfg),
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=1.0))
            rep = check_sessions(r.history)
            assert rep.ok, (proto, seed, rep.summary())

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500),
           proto=st.sampled_from(["optp", "ws-receiver", "sequencer"]))
    def test_property(self, seed, proto):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=8,
                             n_variables=2, write_fraction=0.5, seed=seed)
        r = run_schedule(proto, 3, random_schedule(cfg),
                         latency=SeededLatency(seed))
        assert check_sessions(r.history).ok
