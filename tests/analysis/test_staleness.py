"""Tests for visibility-latency metrics."""

import pytest

from repro.analysis.staleness import visibility_report
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import (
    Schedule,
    ScheduledOp,
    WorkloadConfig,
    WriteOp,
    fig3,
    random_schedule,
)


class TestDecomposition:
    def test_constant_latency_single_write(self):
        sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", 1))])
        r = run_schedule("optp", 3, sched, latency=ConstantLatency(2.0))
        rep = visibility_report(r)
        assert rep.visibility.count == 2          # two remote replicas
        assert rep.visibility.mean == pytest.approx(2.0)
        assert rep.transit.mean == pytest.approx(2.0)
        assert rep.buffering.mean == pytest.approx(0.0)
        assert rep.never_applied == 0

    def test_buffered_write_shows_in_buffering(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        rep = visibility_report(r)
        # b is buffered at p2 from 4.5 to 5.5: one second of buffering
        assert rep.buffering.max == pytest.approx(1.0)
        assert rep.visibility.max >= rep.transit.max

    def test_optp_buffering_leq_anbkh(self):
        """The optimality theorem, read as a staleness statement."""
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=5, ops_per_process=12,
                                 write_fraction=0.7, seed=seed)
            sched = random_schedule(cfg)
            lat = SeededLatency(seed, dist="exponential", mean=2.0)
            b_optp = visibility_report(
                run_schedule("optp", 5, sched, latency=lat)).buffering
            b_anbkh = visibility_report(
                run_schedule("anbkh", 5, sched, latency=lat)).buffering
            total_optp = b_optp.mean * b_optp.count
            total_anbkh = b_anbkh.mean * b_anbkh.count
            assert total_optp <= total_anbkh + 1e-9

    def test_identical_transit_across_protocols(self):
        """Same schedule + SeededLatency: the transit term is protocol
        independent, only buffering differs."""
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                             write_fraction=0.8, seed=2)
        sched = random_schedule(cfg)
        lat = SeededLatency(2, dist="exponential", mean=2.0)
        t_optp = visibility_report(
            run_schedule("optp", 4, sched, latency=lat)).transit
        t_anbkh = visibility_report(
            run_schedule("anbkh", 4, sched, latency=lat)).transit
        assert t_optp.mean == pytest.approx(t_anbkh.mean)
        assert t_optp.count == t_anbkh.count

    def test_never_applied_counts_ws_skips(self):
        from repro.sim import ScriptedLatency
        from repro.model.operations import WriteId

        script = ScriptedLatency(
            {
                (("update", WriteId(0, 1)), 1): 30.0,
                (("update", WriteId(0, 2)), 1): 1.0,
            },
            default=1.0,
        )
        sched = Schedule.of([
            ScheduledOp(0.0, 0, WriteOp("x", 1)),
            ScheduledOp(0.5, 0, WriteOp("x", 2)),
        ])
        r = run_schedule("ws-receiver", 2, sched, latency=script)
        rep = visibility_report(r)
        assert rep.never_applied == 1  # the overwritten first write

    def test_token_protocol_visibility_without_receipts(self):
        """Token batches have no RECEIPT events; visibility still
        computed, split unavailable for those pairs."""
        sched = Schedule.of([ScheduledOp(0.0, 1, WriteOp("x", 1))])
        r = run_schedule("jimenez-token", 3, sched,
                         latency=ConstantLatency(1.0))
        rep = visibility_report(r)
        assert rep.visibility.count == 2
        assert rep.transit.count == 0
        assert "visibility mean" in rep.summary()

    def test_empty_run(self):
        r = run_schedule("optp", 2, Schedule.of([]))
        rep = visibility_report(r)
        assert rep.visibility.count == 0 and rep.never_applied == 0
