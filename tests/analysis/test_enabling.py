"""Tests for enabling-set computation: Tables 1 and 2 of the paper."""

import pytest

from repro.analysis.enabling import (
    enabling_table,
    render_table,
    superset_rows,
    x_anbkh,
    x_co_safe,
)
from repro.model.history import example_h1
from repro.model.operations import WriteId
from repro.sim import run_schedule
from repro.workloads import fig3
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D


@pytest.fixture
def h1():
    return example_h1()


@pytest.fixture(scope="module")
def fig3_run():
    scen = fig3()
    return run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)


class TestTable1:
    """X_co-safe for H1 -- must equal the paper's Table 1 rows."""

    def test_root_writes_have_empty_sets(self, h1):
        for k in range(3):
            assert x_co_safe(h1, k, WID_A) == frozenset()

    def test_c_waits_only_for_a(self, h1):
        for k in range(3):
            assert x_co_safe(h1, k, WID_C) == {WID_A}

    def test_b_waits_only_for_a(self, h1):
        for k in range(3):
            assert x_co_safe(h1, k, WID_B) == {WID_A}

    def test_d_waits_for_a_and_b(self, h1):
        for k in range(3):
            assert x_co_safe(h1, k, WID_D) == {WID_A, WID_B}

    def test_full_table_has_12_rows(self, h1):
        rows = enabling_table(h1, family="co-safe")
        assert len(rows) == 12  # 4 writes x 3 processes

    def test_process_out_of_range(self, h1):
        with pytest.raises(ValueError):
            x_co_safe(h1, 7, WID_A)

    def test_render_matches_paper_layout(self, h1):
        text = render_table(enabling_table(h1, family="co-safe"), h1)
        assert "apply_1(w1(x1)a): ∅" in text
        assert "apply_3(w3(x2)d): {apply_3(w1(x1)a), apply_3(w2(x2)b)}" in text


class TestTable2:
    """X_ANBKH for the Figure 3 run -- must equal the paper's Table 2."""

    def test_b_additionally_waits_for_c(self, fig3_run):
        h = fig3_run.history
        for k in range(3):
            assert x_anbkh(fig3_run.trace, h, k, WID_B) == {WID_A, WID_C}

    def test_d_waits_for_a_c_b(self, fig3_run):
        h = fig3_run.history
        for k in range(3):
            assert x_anbkh(fig3_run.trace, h, k, WID_D) == {WID_A, WID_C, WID_B}

    def test_a_and_c_rows_match_table1(self, fig3_run):
        h = fig3_run.history
        for k in range(3):
            assert x_anbkh(fig3_run.trace, h, k, WID_A) == frozenset()
            assert x_anbkh(fig3_run.trace, h, k, WID_C) == {WID_A}

    def test_superset_rows_are_b_and_d(self, fig3_run):
        """The paper's non-optimality witnesses: the 6 rows (b and d at
        each process) where X_ANBKH strictly contains X_co-safe, each
        exceeding by exactly {c}."""
        h = fig3_run.history
        rows = superset_rows(h, fig3_run.trace)
        assert len(rows) == 6
        assert {r.wid for r, _ in rows} == {WID_B, WID_D}
        for _, excess in rows:
            assert excess == {WID_C}

    def test_anbkh_table_requires_trace(self, fig3_run):
        with pytest.raises(ValueError, match="requires the run trace"):
            enabling_table(fig3_run.history, family="anbkh")

    def test_unknown_family(self, h1):
        with pytest.raises(ValueError, match="unknown family"):
            enabling_table(h1, family="bogus")


class TestXAnbkhVsXCoSafe:
    def test_anbkh_always_superset(self, fig3_run):
        """X_co-safe ⊆ X_ANBKH for every event (ANBKH is safe)."""
        h = fig3_run.history
        for w in h.writes():
            for k in range(3):
                safe = x_co_safe(h, k, w.wid)
                anbkh = x_anbkh(fig3_run.trace, h, k, w.wid)
                assert safe <= anbkh, (w.wid, k)
