"""Tests for false-causality opportunity analysis."""

import pytest

from repro.analysis import analyze_false_causality, check_run
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, fig3, random_schedule
from repro.workloads.patterns import WID_B, WID_C, WID_D


class TestFig3:
    @pytest.fixture(scope="class")
    def report(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        return analyze_false_causality(r)

    def test_opportunities_are_c_before_b_and_d(self, report):
        """send(c) precedes send(b) and send(d) in the run, but c is
        concurrent with both -- the exact pairs footnote 7 points at."""
        assert set(report.opportunities) == {(WID_C, WID_B), (WID_C, WID_D)}

    def test_counts(self, report):
        # hb pairs among the 4 writes: a<c, a<b, a<d, c<b, c<d, b<d = 6
        assert report.hb_pairs == 6
        assert report.genuine_pairs == 4
        assert report.n_opportunities == 2
        assert report.false_share == pytest.approx(2 / 6)


class TestRelationToDelays:
    def test_no_opportunities_no_unnecessary_delays(self):
        """A workload whose sends are never hb-related across concurrent
        writes gives ANBKH nothing to get wrong."""
        from repro.workloads import Schedule, ScheduledOp, WriteOp

        # fully independent writers, one write each
        sched = Schedule.of(
            [ScheduledOp(0.0, p, WriteOp(f"x{p}", p)) for p in range(3)]
        )
        r = run_schedule("anbkh", 3, sched, latency=SeededLatency(1))
        rep = analyze_false_causality(r)
        assert rep.n_opportunities == 0
        assert not check_run(r).unnecessary_delays

    def test_opportunities_bound_direct_unnecessary_delays(self):
        """Each unnecessary ANBKH delay needs a false pair behind it:
        per process, unnecessary delays <= opportunities."""
        for seed in range(3):
            cfg = WorkloadConfig(n_processes=4, ops_per_process=12,
                                 write_fraction=0.7, seed=seed)
            r = run_schedule("anbkh", 4, random_schedule(cfg),
                             latency=SeededLatency(seed, dist="exponential",
                                                   mean=2.0))
            rep = analyze_false_causality(r)
            report = check_run(r)
            # n-1 receivers can each realize an opportunity at most once
            assert len(report.unnecessary_delays) <= rep.n_opportunities * 3

    def test_share_in_unit_interval(self):
        cfg = WorkloadConfig(n_processes=3, ops_per_process=10, seed=4)
        r = run_schedule("optp", 3, random_schedule(cfg),
                         latency=SeededLatency(4))
        rep = analyze_false_causality(r)
        assert 0.0 <= rep.false_share <= 1.0
        assert rep.genuine_pairs + rep.n_opportunities == rep.hb_pairs

    def test_empty_run(self):
        from repro.workloads import Schedule

        r = run_schedule("optp", 2, Schedule.of([]))
        rep = analyze_false_causality(r)
        assert rep.hb_pairs == 0 and rep.false_share == 0.0
