"""Tests for consistent cuts and the causal-closure corollary."""

import random

import pytest

from repro.analysis.cuts import (
    Cut,
    applied_writes_at,
    closure_violations,
    cut_at_times,
    full_cut,
    is_consistent,
    make_consistent,
    random_consistent_cut,
)
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import (
    Schedule,
    ScheduledOp,
    WorkloadConfig,
    WriteOp,
    fig3,
    random_schedule,
)

CLASS_P = ["optp", "anbkh", "sequencer", "gossip-optp"]


@pytest.fixture(scope="module")
def fig3_run():
    scen = fig3()
    return run_schedule("optp", 3, scen.schedule, latency=scen.latency)


class TestCutBasics:
    def test_full_cut_is_consistent(self, fig3_run):
        assert is_consistent(fig3_run.trace, full_cut(fig3_run.trace))

    def test_empty_cut_is_consistent(self, fig3_run):
        cut = Cut((0, 0, 0))
        assert is_consistent(fig3_run.trace, cut)
        assert cut.events(fig3_run.trace) == []

    def test_receipt_without_send_is_inconsistent(self, fig3_run):
        """Include p2's receipt of a but exclude p0's send of a."""
        trace = fig3_run.trace
        # p0's send of a is its 2nd event (WRITE then SEND)
        # find index of p2's first receipt
        p2_events = trace.process_events(2)
        first_receipt_idx = next(
            i for i, ev in enumerate(p2_events) if ev.kind.value == "receipt"
        )
        cut = Cut((0, 0, first_receipt_idx + 1))
        assert not is_consistent(trace, cut)

    def test_make_consistent_repairs(self, fig3_run):
        trace = fig3_run.trace
        p2_events = trace.process_events(2)
        bad = Cut((0, 0, len(p2_events)))
        fixed = make_consistent(trace, bad)
        assert is_consistent(trace, fixed)
        assert fixed.frontier[2] < len(p2_events)

    def test_cut_at_times(self, fig3_run):
        trace = fig3_run.trace
        cut = cut_at_times(trace, [2.0, 2.0, 2.0])
        # simulated message delays are positive, so wall-clock cuts are
        # automatically consistent
        assert is_consistent(trace, cut)
        with pytest.raises(ValueError):
            cut_at_times(trace, [1.0])

    def test_includes(self, fig3_run):
        trace = fig3_run.trace
        first = trace.process_events(0)[0]
        assert Cut((1, 0, 0)).includes(trace, first)
        assert not Cut((0, 0, 0)).includes(trace, first)


class TestAppliedWrites:
    def test_grows_with_frontier(self, fig3_run):
        trace = fig3_run.trace
        small = applied_writes_at(trace, cut_at_times(trace, [1.0] * 3), 1)
        large = applied_writes_at(trace, full_cut(trace), 1)
        assert small <= large
        assert len(large) == 4  # all of H1's writes

    def test_local_write_counts(self):
        sched = Schedule.of([ScheduledOp(0.0, 0, WriteOp("x", 1))])
        r = run_schedule("optp", 2, sched, latency=ConstantLatency(1.0))
        cut = cut_at_times(r.trace, [0.5, 0.5])
        applied = applied_writes_at(r.trace, cut, 0)
        assert len(applied) == 1


class TestCausalClosure:
    @pytest.mark.parametrize("proto", CLASS_P)
    def test_closure_at_random_cuts(self, proto):
        """The causal-closure corollary of Theorem 3, at 20 random
        consistent cuts of each verified run."""
        cfg = WorkloadConfig(n_processes=4, ops_per_process=10,
                             write_fraction=0.7, seed=3)
        r = run_schedule(proto, 4, random_schedule(cfg),
                         latency=SeededLatency(3, dist="exponential",
                                               mean=1.0))
        rng = random.Random(99)
        for _ in range(20):
            cut = random_consistent_cut(r.trace, rng)
            assert closure_violations(r.trace, r.history, cut) == [], proto

    def test_closure_detects_doctored_trace(self):
        """A trace applying a write before its causal predecessor fails
        closure at the full cut."""
        from repro.model.operations import WriteId
        from repro.sim.trace import EventKind, Trace

        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        t.record(0.0, 0, EventKind.SEND, wid=WriteId(0, 1))
        t.record(1.0, 0, EventKind.WRITE, wid=WriteId(0, 2), variable="y", value=2)
        t.record(1.0, 0, EventKind.SEND, wid=WriteId(0, 2))
        # p1 applies ONLY the second write: not causally closed
        t.record(2.0, 1, EventKind.RECEIPT, wid=WriteId(0, 2))
        t.record(2.0, 1, EventKind.APPLY, wid=WriteId(0, 2), variable="y", value=2)
        history = t.to_history()
        violations = closure_violations(t, history, full_cut(t))
        assert violations and "causal predecessor" in violations[0]
