"""Tests for the happened-before relation over traces."""

import pytest

from repro.analysis.hb import HappenedBefore
from repro.model.operations import WriteId
from repro.sim import run_schedule
from repro.sim.trace import EventKind, Trace
from repro.workloads import fig3
from repro.workloads.patterns import WID_A, WID_B, WID_C, WID_D


@pytest.fixture(scope="module")
def fig3_run():
    scen = fig3()
    return run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)


class TestHappenedBefore:
    def test_process_order(self, fig3_run):
        hb = HappenedBefore(fig3_run.trace)
        evs = fig3_run.trace.process_events(0)
        assert hb.hb(evs[0], evs[-1])
        assert not hb.hb(evs[-1], evs[0])

    def test_message_edge(self, fig3_run):
        hb = HappenedBefore(fig3_run.trace)
        send_a = hb.send_event(WID_A)
        receipt = fig3_run.trace.receipt_event(1, WID_A)
        assert hb.hb(send_a, receipt)

    def test_transitivity_across_processes(self, fig3_run):
        """send(a) -> receipt_1(a) -> ... -> send(b)."""
        hb = HappenedBefore(fig3_run.trace)
        assert hb.sends_hb(WID_A, WID_B)

    def test_false_causality_pair(self, fig3_run):
        """send(c) -> send(b) holds in the run even though b ||co c --
        the definitional gap the paper exploits."""
        hb = HappenedBefore(fig3_run.trace)
        assert hb.sends_hb(WID_C, WID_B)
        co = fig3_run.history.causal_order
        b = fig3_run.history.write_by_id(WID_B)
        c = fig3_run.history.write_by_id(WID_C)
        assert co.concurrent(b, c)

    def test_concurrent_events(self, fig3_run):
        hb = HappenedBefore(fig3_run.trace)
        send_a = hb.send_event(WID_A)
        assert not hb.concurrent(send_a, send_a)
        # d's send is causally after everything a started
        assert hb.sends_hb(WID_A, WID_D)
        assert not hb.sends_hb(WID_D, WID_A)

    def test_missing_send_raises(self, fig3_run):
        hb = HappenedBefore(fig3_run.trace)
        with pytest.raises(KeyError):
            hb.sends_hb(WID_A, WriteId(2, 9))

    def test_write_event_fallback_for_sendless_protocols(self):
        """Token-protocol writes never emit SEND events; the WRITE event
        stands in."""
        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        t.record(1.0, 0, EventKind.WRITE, wid=WriteId(0, 2), variable="y", value=2)
        hb = HappenedBefore(t)
        assert hb.sends_hb(WriteId(0, 1), WriteId(0, 2))
