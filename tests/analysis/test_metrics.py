"""Tests for run metrics and comparison tables."""

import pytest

from repro.analysis.metrics import (
    DelayStats,
    RunMetrics,
    aggregate_delays,
    comparison_table,
    percentile,
)
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def quick_metrics(proto, seed=0):
    cfg = WorkloadConfig(n_processes=3, ops_per_process=12, seed=seed)
    r = run_schedule(proto, 3, random_schedule(cfg), latency=SeededLatency(seed))
    return RunMetrics.of(r)


class TestPercentile:
    def test_basic(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 0) == 1.0

    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestDelayStats:
    def test_empty(self):
        s = DelayStats.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_values(self):
        s = DelayStats.of([1.0, 3.0, 2.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.max == 3.0
        assert s.p50 == 2.0


class TestRunMetrics:
    def test_fields_populated(self):
        m = quick_metrics("optp")
        assert m.protocol == "optp"
        assert m.writes > 0
        assert m.messages == m.writes * 2  # broadcast to n-1 = 2
        assert m.unnecessary_delays == 0

    def test_counts_reads(self):
        m = quick_metrics("optp")
        assert m.reads >= 0
        assert m.writes + m.reads == 36  # 3 procs x 12 ops

    def test_ws_counters_flow_through(self):
        m = quick_metrics("ws-receiver", seed=3)
        assert m.skipped == m.discards or m.skipped >= 0  # accounting visible


class TestComparisonTable:
    def test_renders_all_protocols(self):
        ms = [quick_metrics(p) for p in ["optp", "anbkh"]]
        table = comparison_table(ms, title="Q1")
        assert "Q1" in table
        assert "optp" in table and "anbkh" in table
        assert "delays" in table

    def test_aggregate(self):
        ms = [quick_metrics("optp", seed=s) for s in range(3)]
        agg = aggregate_delays(ms)
        assert "optp" in agg and "optp/unnecessary" in agg
        assert agg["optp/unnecessary"] == 0.0
