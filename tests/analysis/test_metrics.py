"""Tests for run metrics and comparison tables."""

import pytest

from repro.analysis.metrics import (
    DelayStats,
    RunMetrics,
    aggregate_delays,
    comparison_table,
    percentile,
)
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


def quick_metrics(proto, seed=0):
    cfg = WorkloadConfig(n_processes=3, ops_per_process=12, seed=seed)
    r = run_schedule(proto, 3, random_schedule(cfg), latency=SeededLatency(seed))
    return RunMetrics.of(r)


class TestPercentile:
    def test_basic(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 100) == 4.0
        assert percentile(vals, 0) == 1.0

    def test_empty(self):
        assert percentile([], 95) == 0.0

    def test_range_checked(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestDelayStats:
    def test_empty(self):
        s = DelayStats.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_values(self):
        s = DelayStats.of([1.0, 3.0, 2.0])
        assert s.count == 3
        assert s.mean == 2.0
        assert s.max == 3.0
        assert s.p50 == 2.0


class TestRunMetrics:
    def test_fields_populated(self):
        m = quick_metrics("optp")
        assert m.protocol == "optp"
        assert m.writes > 0
        assert m.messages == m.writes * 2  # broadcast to n-1 = 2
        assert m.unnecessary_delays == 0

    def test_counts_reads(self):
        m = quick_metrics("optp")
        assert m.reads >= 0
        assert m.writes + m.reads == 36  # 3 procs x 12 ops

    def test_ws_counters_flow_through(self):
        m = quick_metrics("ws-receiver", seed=3)
        assert m.skipped == m.discards or m.skipped >= 0  # accounting visible


class TestComparisonTable:
    def test_renders_all_protocols(self):
        ms = [quick_metrics(p) for p in ["optp", "anbkh"]]
        table = comparison_table(ms, title="Q1")
        assert "Q1" in table
        assert "optp" in table and "anbkh" in table
        assert "delays" in table

    def test_aggregate(self):
        ms = [quick_metrics("optp", seed=s) for s in range(3)]
        agg = aggregate_delays(ms)
        assert "optp" in agg and "optp/unnecessary" in agg
        assert agg["optp/unnecessary"] == 0.0


class TestPercentileProperties:
    """Property tests pinning the nearest-rank definition against the
    stdlib and numpy reference implementations."""

    hypothesis = pytest.importorskip("hypothesis")

    from hypothesis import given, settings
    from hypothesis import strategies as st

    values = st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=60,
    )
    quantile = st.integers(min_value=0, max_value=100)

    @given(values=values, q=quantile)
    def test_result_is_a_data_point(self, values, q):
        assert percentile(sorted(values), q) in values

    @given(values=values, q1=quantile, q2=quantile)
    def test_monotone_in_q(self, values, q1, q2):
        vals = sorted(values)
        lo, hi = sorted((q1, q2))
        assert percentile(vals, lo) <= percentile(vals, hi)

    @given(values=values)
    def test_extremes_hit_min_and_max(self, values):
        vals = sorted(values)
        assert percentile(vals, 0) == vals[0]
        assert percentile(vals, 100) == vals[-1]

    @given(v=st.floats(allow_nan=False, allow_infinity=False), q=quantile)
    def test_single_element(self, v, q):
        assert percentile([v], q) == v

    @given(v=st.floats(allow_nan=False, allow_infinity=False),
           n=st.integers(min_value=1, max_value=40), q=quantile)
    def test_all_equal(self, v, n, q):
        assert percentile([v] * n, q) == v

    @given(values=values, q=quantile)
    def test_nearest_rank_characterization(self, values, q):
        """The defining property: the result is the smallest data point
        with at least ceil(q/100 * n) values <= it (q > 0)."""
        import math

        vals = sorted(values)
        result = percentile(vals, q)
        rank = max(1, math.ceil(q / 100 * len(vals)))
        assert sum(1 for v in vals if v <= result) >= rank
        assert sum(1 for v in vals if v < result) < rank

    @given(values=values, q=quantile)
    def test_matches_numpy_inverted_cdf(self, values, q):
        np = pytest.importorskip("numpy")
        vals = sorted(values)
        expected = float(np.percentile(vals, q, method="inverted_cdf"))
        assert percentile(vals, q) == expected

    @given(values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=61).filter(lambda v: len(v) % 2 == 1))
    def test_median_matches_statistics(self, values):
        import statistics

        vals = sorted(values)
        assert percentile(vals, 50) == statistics.median(vals)

    @given(values=st.lists(
        st.floats(min_value=-1e9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=60), q=st.integers(min_value=1, max_value=99))
    def test_brackets_statistics_quantiles(self, values, q):
        """Nearest-rank and the stdlib's inclusive-interpolation
        quantile always land in the same order-statistic bracket."""
        import math
        import statistics

        vals = sorted(values)
        pos = (len(vals) - 1) * q / 100
        lo, hi = vals[math.floor(pos)], vals[math.ceil(pos)]
        cut = statistics.quantiles(vals, n=100, method="inclusive")[q - 1]
        assert lo <= percentile(vals, q) <= hi
        assert lo <= cut <= hi or math.isclose(cut, lo) or math.isclose(cut, hi)


class TestDelayStatsP99:
    def test_p99_populated(self):
        vals = [float(v) for v in range(1, 101)]
        s = DelayStats.of(vals)
        assert s.p99 == 99.0
        assert s.p95 == 95.0
        assert s.p50 == 50.0

    def test_p99_empty(self):
        assert DelayStats.of([]).p99 == 0.0

    def test_p99_single(self):
        s = DelayStats.of([4.2])
        assert s.p99 == 4.2 and s.max == 4.2
