"""Tests for the run checkers (Theorems 1-5 as machine checks)."""

import pytest

from repro.analysis import (
    assert_run_ok,
    check_run,
)
from repro.analysis.checker import (
    audit_delays,
    check_characterization,
    check_liveness,
    check_safety,
)
from repro.sim import ConstantLatency, SeededLatency, run_schedule
from repro.workloads import (
    WorkloadConfig,
    fig1_run2,
    fig3,
    random_schedule,
)

ALL_PROTOCOLS = ["optp", "anbkh", "ws-receiver", "jimenez-token"]


def quick_run(proto, seed=0, **kw):
    cfg = WorkloadConfig(n_processes=3, ops_per_process=10, seed=seed)
    return run_schedule(proto, 3, random_schedule(cfg),
                        latency=SeededLatency(seed), **kw)


class TestCheckRun:
    @pytest.mark.parametrize("proto", ALL_PROTOCOLS)
    def test_all_protocols_pass(self, proto):
        report = check_run(quick_run(proto))
        assert report.ok, report.summary()

    def test_optp_never_unnecessary(self):
        for seed in range(4):
            r = quick_run("optp", seed=seed)
            report = check_run(r)
            assert not report.unnecessary_delays, report.summary()

    def test_anbkh_unnecessary_on_fig3(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        report = check_run(r)
        assert report.ok  # safe, legal, live...
        assert len(report.unnecessary_delays) == 1  # ...but not optimal

    def test_summary_strings(self):
        report = check_run(quick_run("optp", **{"record_state": True}))
        s = report.summary()
        assert "legal" in s and "safe" in s and "live" in s
        assert "characterized" in s

    def test_assert_run_ok_passes(self):
        assert_run_ok(quick_run("optp"), expect_optimal=True)

    def test_assert_run_ok_optimality_failure(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        with pytest.raises(AssertionError, match="unnecessary delay"):
            assert_run_ok(r, expect_optimal=True)


class TestSafetyChecker:
    def test_detects_violation_in_doctored_trace(self):
        """Manually build a trace where a process applies writes in the
        wrong order: the checker must flag it."""
        from repro.model.operations import WriteId
        from repro.sim.result import RunResult
        from repro.sim.trace import EventKind, Trace

        t = Trace(2)
        # p0 issues two causally ordered writes (same process => ->po)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        t.record(0.0, 0, EventKind.SEND, wid=WriteId(0, 1))
        t.record(1.0, 0, EventKind.WRITE, wid=WriteId(0, 2), variable="y", value=2)
        t.record(1.0, 0, EventKind.SEND, wid=WriteId(0, 2))
        # p1 applies them REVERSED: unsafe
        t.record(2.0, 1, EventKind.APPLY, wid=WriteId(0, 2), variable="y", value=2)
        t.record(3.0, 1, EventKind.APPLY, wid=WriteId(0, 1), variable="x", value=1)
        result = RunResult(
            protocol_name="doctored", n_processes=2, trace=t, duration=3.0,
            messages_sent=2, bytes_estimate=0, stores=[{}, {}],
            protocol_stats=[{}, {}],
        )
        violations = check_safety(result)
        assert len(violations) == 1
        assert "before its causal predecessor" in violations[0]

    def test_clean_run_no_violations(self):
        assert check_safety(quick_run("optp")) == []


class TestLivenessChecker:
    def test_class_p_missing_apply_detected(self):
        from repro.model.operations import WriteId
        from repro.sim.result import RunResult
        from repro.sim.trace import EventKind, Trace

        t = Trace(2)
        t.record(0.0, 0, EventKind.WRITE, wid=WriteId(0, 1), variable="x", value=1)
        result = RunResult(
            protocol_name="doctored", n_processes=2, trace=t, duration=1.0,
            messages_sent=0, bytes_estimate=0, stores=[{}, {}],
            protocol_stats=[{}, {}], in_class_p=True,
        )
        violations = check_liveness(result)
        assert violations == ["w[p0#1] never applied at p1"]

    def test_ws_accounting_balances(self):
        r = quick_run("ws-receiver")
        assert check_liveness(r) == []

    def test_ws_accounting_detects_imbalance(self):
        r = quick_run("ws-receiver")
        # doctor the stats: claim one fewer skip than actually happened
        skipped = r.stat_total("skipped")
        if skipped == 0:
            pytest.skip("this seed produced no skips")
        r.protocol_stats[0] = dict(r.protocol_stats[0])
        r.protocol_stats[0]["skipped"] = r.protocol_stats[0].get("skipped", 0) + 1
        assert check_liveness(r)

    def test_jimenez_accounting(self):
        r = quick_run("jimenez-token")
        assert check_liveness(r) == []


class TestDelayAudits:
    def test_necessary_delay_has_witness(self):
        scen = fig1_run2()
        r = run_schedule("optp", 3, scen.schedule, latency=scen.latency)
        audits = audit_delays(r)
        assert len(audits) == 1
        assert audits[0].necessary and audits[0].witness is not None

    def test_unnecessary_delay_has_no_witness(self):
        scen = fig3()
        r = run_schedule("anbkh", 3, scen.schedule, latency=scen.latency)
        audits = audit_delays(r)
        unnecessary = [a for a in audits if not a.necessary]
        assert len(unnecessary) == 1
        assert unnecessary[0].witness is None


class TestCharacterization:
    def test_optp_vectors_characterize_co(self):
        r = quick_run("optp", record_state=True)
        ok, errors = check_characterization(r)
        assert ok is True and errors == []

    def test_skipped_without_state(self):
        r = quick_run("optp")  # record_state defaults False
        ok, errors = check_characterization(r)
        assert ok is None

    def test_anbkh_has_no_write_co(self):
        r = quick_run("anbkh", record_state=True)
        ok, _ = check_characterization(r)
        assert ok is None  # FM vectors are not Write_co; not checked

    def test_ws_receiver_vectors_also_characterize(self):
        r = quick_run("ws-receiver", record_state=True)
        ok, errors = check_characterization(r)
        assert ok is True, errors
