"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    metrics_to_csv,
    metrics_to_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.analysis.metrics import RunMetrics
from repro.paperfigs.comparison import sweep_zipf
from repro.sim import SeededLatency, run_schedule
from repro.workloads import WorkloadConfig, random_schedule


@pytest.fixture(scope="module")
def rows():
    return sweep_zipf(skews=(0.0,), ops_per_process=6, seeds=(0,),
                      protocols=("optp", "anbkh"))


@pytest.fixture(scope="module")
def metrics():
    cfg = WorkloadConfig(n_processes=3, ops_per_process=8, seed=1)
    r = run_schedule("optp", 3, random_schedule(cfg), latency=SeededLatency(1))
    return [RunMetrics.of(r)]


class TestSweepExport:
    def test_csv_roundtrip(self, rows):
        text = sweep_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        assert parsed[0]["protocol"] in ("optp", "anbkh")
        assert float(parsed[0]["mean_delays"]) >= 0

    def test_json_roundtrip(self, rows):
        data = json.loads(sweep_to_json(rows))
        assert len(data) == len(rows)
        assert data[0]["axis"] == "zipf_s"
        assert set(data[0]) >= {"protocol", "mean_delays", "seeds"}

    def test_empty(self):
        assert json.loads(sweep_to_json([])) == []
        assert list(csv.DictReader(io.StringIO(sweep_to_csv([])))) == []


class TestMetricsExport:
    def test_csv_includes_delay_stats(self, metrics):
        text = metrics_to_csv(metrics)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 1
        row = parsed[0]
        assert row["protocol"] == "optp"
        assert "delay_p95" in row

    def test_json_nests_delay_stats(self, metrics):
        data = json.loads(metrics_to_json(metrics))
        assert data[0]["delay_stats"]["count"] == metrics[0].delay_stats.count


class TestCLISweepFormats:
    def test_csv_format(self, capsys):
        from repro.cli import main

        assert main(["sweep", "zipf", "--seeds", "0", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("axis,value,protocol")

    def test_json_format(self, capsys):
        from repro.cli import main

        assert main(["sweep", "zipf", "--seeds", "0", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and data
