"""Tests for the write-poset concurrency measures."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.concurrency import (
    chain_decomposition_depth,
    concurrency_profile,
    concurrent_write_pairs,
    max_concurrent_writes,
)
from repro.model.history import HistoryBuilder, example_h1


class TestOnH1:
    def test_profile(self):
        h = example_h1()
        # pairs: {c,b} and {c,d} are concurrent -> 2
        assert concurrent_write_pairs(h) == 2
        # width: {c, b} (or {c, d}) -> 2
        assert max_concurrent_writes(h) == 2
        # height: a -> b -> d -> 3 writes
        assert chain_decomposition_depth(h) == 3
        assert concurrency_profile(h) == (2, 2, 3)


class TestExtremes:
    def test_total_chain(self):
        b = HistoryBuilder(1)
        for k in range(5):
            b.write(0, "x", k)
        h = b.build()
        assert concurrent_write_pairs(h) == 0
        assert max_concurrent_writes(h) == 1
        assert chain_decomposition_depth(h) == 5

    def test_full_antichain(self):
        b = HistoryBuilder(4)
        for p in range(4):
            b.write(p, f"x{p}", p)
        h = b.build()
        assert concurrent_write_pairs(h) == 6   # C(4,2)
        assert max_concurrent_writes(h) == 4
        assert chain_decomposition_depth(h) == 1

    def test_empty_and_single(self):
        assert max_concurrent_writes(HistoryBuilder(2).build()) == 0
        b = HistoryBuilder(1)
        b.write(0, "x", 1)
        h = b.build()
        assert max_concurrent_writes(h) == 1
        assert concurrent_write_pairs(h) == 0
        assert chain_decomposition_depth(h) == 1

    def test_diamond(self):
        """root -> {left, right} -> sink: width 2, height 3."""
        b = HistoryBuilder(4)
        root = b.write(0, "r", 0)
        b.read(1, "r", root)
        left = b.write(1, "l", 1)
        b.read(2, "r", root)
        right = b.write(2, "m", 2)
        b.read(3, "l", left)
        b.read(3, "m", right)
        b.write(3, "s", 3)
        h = b.build()
        assert max_concurrent_writes(h) == 2
        assert chain_decomposition_depth(h) == 3
        assert concurrent_write_pairs(h) == 1  # only {left, right}


class TestDilworthConsistency:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_width_bounds(self, seed):
        """Width and height sandwich: width*height >= W (Mirsky/Dilworth
        corollary), and width <= W, and width >= 1 for nonempty."""
        from repro.sim import SeededLatency, run_schedule
        from repro.workloads import WorkloadConfig, random_schedule

        cfg = WorkloadConfig(n_processes=4, ops_per_process=6,
                             write_fraction=0.7, seed=seed)
        r = run_schedule("optp", 4, random_schedule(cfg),
                         latency=SeededLatency(seed))
        h = r.history
        writes = len(list(h.writes()))
        if writes == 0:
            return
        width = max_concurrent_writes(h)
        height = chain_decomposition_depth(h)
        assert 1 <= width <= writes
        assert 1 <= height <= writes
        assert width * height >= writes

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_width_is_a_real_antichain_bound(self, seed):
        """No antichain found greedily can exceed the computed width."""
        from repro.sim import SeededLatency, run_schedule
        from repro.workloads import WorkloadConfig, random_schedule

        cfg = WorkloadConfig(n_processes=3, ops_per_process=6,
                             write_fraction=0.8, seed=seed)
        r = run_schedule("optp", 3, random_schedule(cfg),
                         latency=SeededLatency(seed))
        h = r.history
        co = h.causal_order
        width = max_concurrent_writes(h)
        # greedy antichain
        antichain = []
        for w in h.writes():
            if all(co.concurrent(w, o) for o in antichain):
                antichain.append(w)
        assert len(antichain) <= width
