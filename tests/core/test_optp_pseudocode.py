"""Line-for-line checks of OptP against Figures 4-6 of the paper.

These tests drive three OptPProtocol instances *by hand* (no network
substrate), delivering messages in chosen orders, and assert the exact
vector evolutions the paper shows in Figure 6.
"""

import pytest

from repro.core.optp import OptPProtocol, write_co_of
from repro.model.operations import BOTTOM, WriteId
from repro.protocols.base import BROADCAST, Disposition


def make_three():
    return [OptPProtocol(i, 3) for i in range(3)]


def the_message(outcome):
    """Unpack the single broadcast message of a WriteOutcome."""
    assert len(outcome.outgoing) == 1
    out = outcome.outgoing[0]
    assert out.dest == BROADCAST
    return out.message


class TestWriteProcedure:
    """Figure 4."""

    def test_line1_increments_own_component(self):
        p = OptPProtocol(1, 3)
        p.write("x", "v")
        assert p.write_co == [0, 1, 0]

    def test_line2_message_piggybacks_vector(self):
        p = OptPProtocol(0, 3)
        msg = the_message(p.write("x1", "a"))
        assert write_co_of(msg) == (1, 0, 0)
        assert msg.variable == "x1" and msg.value == "a"
        assert msg.sender == 0 and msg.wid == WriteId(0, 1)

    def test_line3_applies_locally(self):
        p = OptPProtocol(0, 3)
        p.write("x1", "a")
        assert p.store_get("x1") == ("a", WriteId(0, 1))

    def test_line4_apply_counter(self):
        p = OptPProtocol(0, 3)
        p.write("x1", "a")
        p.write("x1", "c")
        assert p.apply_vec == [2, 0, 0]

    def test_line5_last_write_on(self):
        p = OptPProtocol(0, 3)
        p.write("x1", "a")
        assert p.last_write_on["x1"] == (1, 0, 0)
        p.write("x1", "c")
        assert p.last_write_on["x1"] == (2, 0, 0)

    def test_observation_2(self):
        """w is the k-th write of p_i  <=>  w.Write_co[i] = k."""
        p = OptPProtocol(2, 3)
        for k in range(1, 6):
            msg = the_message(p.write("x", k))
            assert write_co_of(msg)[2] == k == msg.wid.seq


class TestReadProcedure:
    """Figure 5, read side."""

    def test_read_of_unwritten_returns_bottom(self):
        p = OptPProtocol(0, 3)
        out = p.read("x")
        assert out.value is BOTTOM and out.read_from is None

    def test_line1_merges_last_write_on(self):
        """Reading incorporates the writer's causal relations: the next
        local write's Write_co must dominate the read write's vector."""
        p0, p1, _ = make_three()
        msg_a = the_message(p0.write("x1", "a"))
        assert p1.classify(msg_a) is Disposition.APPLY
        p1.apply_update(msg_a)
        # Before reading, p1's Write_co is untouched by the apply:
        assert p1.write_co == [0, 0, 0]
        out = p1.read("x1")
        assert out.value == "a"
        assert p1.write_co == [1, 0, 0]  # merged at read time (line 1)

    def test_no_merge_without_read(self):
        """Figure 6's key subtlety: p2 applies w1(x1)c but never reads
        it, so w2(x2)b.Write_co does NOT track c."""
        p0, p1, _ = make_three()
        msg_a = the_message(p0.write("x1", "a"))
        msg_c = the_message(p0.write("x1", "c"))
        p1.apply_update(msg_a)
        p1.read("x1")                      # reads a -> merges [1,0,0]
        p1.apply_update(msg_c)             # applies c, but no read of c
        msg_b = the_message(p1.write("x2", "b"))
        assert write_co_of(msg_b) == (1, 1, 0)  # not (2,1,0)!

    def test_read_returns_latest_applied(self):
        p0, p1, _ = make_three()
        msg_a = the_message(p0.write("x1", "a"))
        msg_c = the_message(p0.write("x1", "c"))
        p1.apply_update(msg_a)
        p1.apply_update(msg_c)
        out = p1.read("x1")
        assert out.value == "c" and out.read_from == WriteId(0, 2)


class TestSynchronizationThread:
    """Figure 5, message side: the wait predicate of line 2."""

    def test_in_order_same_sender(self):
        p0, p1, _ = make_three()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        assert p1.classify(m2) is Disposition.BUFFER  # m1 missing
        assert p1.classify(m1) is Disposition.APPLY
        p1.apply_update(m1)
        assert p1.classify(m2) is Disposition.APPLY

    def test_causal_dependency_across_processes(self):
        """p2's write after reading p0's write must wait for p0's."""
        p0, p1, p2 = make_three()
        m_a = the_message(p0.write("x1", "a"))
        p1.apply_update(m_a)
        p1.read("x1")
        m_b = the_message(p1.write("x2", "b"))
        # p2 receives b before a: must buffer (a in b's causal past).
        assert p2.classify(m_b) is Disposition.BUFFER
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.APPLY

    def test_concurrent_write_not_waited_for(self):
        """The optimality scenario (Figure 6): p2 can apply b without
        having applied the concurrent c."""
        p0, p1, p2 = make_three()
        m_a = the_message(p0.write("x1", "a"))
        m_c = the_message(p0.write("x1", "c"))
        p1.apply_update(m_a)
        p1.read("x1")
        m_b = the_message(p1.write("x2", "b"))
        # p2 applies a but NOT c, then receives b:
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.APPLY  # no false causality
        p2.apply_update(m_b)
        # c arrives last and applies fine.
        assert p2.classify(m_c) is Disposition.APPLY
        p2.apply_update(m_c)
        assert p2.read("x2").value == "b" or True  # store reflects both
        assert p2.store_get("x1") == ("c", WriteId(0, 2))

    def test_lemma_structure_same_sender_gap(self):
        """Apply[u] must be exactly W_co[u]-1 (no gaps, no repeats)."""
        p0, p1, _ = make_three()
        m1 = the_message(p0.write("x", 1))
        m2 = the_message(p0.write("x", 2))
        m3 = the_message(p0.write("x", 3))
        p1.apply_update(m1)
        p1.apply_update(m2)
        # m2 again would be stale: classify sees Apply[0]=2, W[0]=2 -> 2 != 2-1
        assert p1.classify(m2) is Disposition.BUFFER
        assert p1.classify(m3) is Disposition.APPLY


class TestFigure6VectorEvolution:
    """The exact Write_co values shown in Figure 6."""

    def test_full_h1_run(self):
        p0, p1, p2 = make_three()
        # p0: w(x1)a ; w(x1)c
        m_a = the_message(p0.write("x1", "a"))
        assert write_co_of(m_a) == (1, 0, 0)
        m_c = the_message(p0.write("x1", "c"))
        assert write_co_of(m_c) == (2, 0, 0)
        # p1 applies a, reads it, writes b
        p1.apply_update(m_a)
        assert p1.read("x1").value == "a"
        m_b = the_message(p1.write("x2", "b"))
        assert write_co_of(m_b) == (1, 1, 0)
        # p2 applies a then b (c still in flight), reads b, writes d
        p2.apply_update(m_a)
        assert p2.classify(m_b) is Disposition.APPLY
        p2.apply_update(m_b)
        assert p2.read("x2").value == "b"
        m_d = the_message(p2.write("x2", "d"))
        assert write_co_of(m_d) == (1, 1, 1)

    def test_debug_state_snapshots(self):
        p0 = OptPProtocol(0, 3)
        p0.write("x1", "a")
        st = p0.debug_state()
        assert st["write_co"] == (1, 0, 0)
        assert st["apply"] == (1, 0, 0)
        assert st["last_write_on"] == {"x1": (1, 0, 0)}
        # snapshots are decoupled from live state
        p0.write("x1", "c")
        assert st["write_co"] == (1, 0, 0)


class TestProtocolBasics:
    def test_bad_process_id(self):
        with pytest.raises(ValueError):
            OptPProtocol(3, 3)
        with pytest.raises(ValueError):
            OptPProtocol(-1, 3)

    def test_store_snapshot(self):
        p = OptPProtocol(0, 2)
        p.write("x", 1)
        snap = p.store_snapshot()
        p.write("x", 2)
        assert snap["x"] == (1, WriteId(0, 1))

    def test_stats_default_empty(self):
        assert OptPProtocol(0, 2).stats() == {}
        assert OptPProtocol(0, 2).missing_applies() == 0

    def test_writes_issued(self):
        p = OptPProtocol(0, 2)
        assert p.writes_issued == 0
        p.write("x", 1)
        p.write("y", 2)
        assert p.writes_issued == 2
