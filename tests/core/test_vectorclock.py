"""Unit + property tests for vector clocks (Section 4.3 relations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vectorclock import (
    VectorClock,
    batch_concurrent_matrix,
    batch_precedes_matrix,
    vc_concurrent,
    vc_join,
    vc_join_inplace,
    vc_le,
    vc_lt,
)

vectors = st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=8)


def pair_of_vectors(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    elems = st.integers(min_value=0, max_value=50)
    a = draw(st.lists(elems, min_size=n, max_size=n))
    b = draw(st.lists(elems, min_size=n, max_size=n))
    return a, b


vector_pairs = st.composite(pair_of_vectors)()


class TestPlainHelpers:
    def test_le_basic(self):
        assert vc_le([0, 0], [0, 0])
        assert vc_le([1, 2], [1, 3])
        assert not vc_le([2, 0], [1, 3])

    def test_lt_requires_strict(self):
        assert not vc_lt([1, 1], [1, 1])
        assert vc_lt([1, 1], [1, 2])
        assert not vc_lt([0, 2], [1, 1])

    def test_concurrent(self):
        assert vc_concurrent([1, 0], [0, 1])
        assert not vc_concurrent([0, 0], [0, 1])
        # equal vectors are NOT concurrent (neither < the other, but the
        # paper defines || via <, and equal vectors satisfy neither <):
        # equality only happens for the same write, handled upstream.
        assert vc_concurrent([1, 1], [1, 1])

    def test_join(self):
        assert vc_join([1, 5, 0], [3, 2, 0]) == [3, 5, 0]

    def test_join_inplace(self):
        a = [1, 5, 0]
        vc_join_inplace(a, [3, 2, 0])
        assert a == [3, 5, 0]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vc_le([1], [1, 2])
        with pytest.raises(ValueError):
            vc_lt([1], [1, 2])
        with pytest.raises(ValueError):
            vc_join([1], [1, 2])
        with pytest.raises(ValueError):
            vc_join_inplace([1], [1, 2])


class TestVectorClockClass:
    def test_zero(self):
        z = VectorClock.zero(3)
        assert z.components == (0, 0, 0)
        assert z.n == 3 and len(z) == 3

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.of(1, -1)

    def test_operators(self):
        a = VectorClock.of(1, 0, 0)
        b = VectorClock.of(1, 1, 0)
        assert a < b and a <= b
        assert b > a and b >= a
        assert not (b < a)

    def test_concurrent(self):
        a = VectorClock.of(1, 0)
        b = VectorClock.of(0, 1)
        assert a.concurrent(b) and b.concurrent(a)
        assert not a.concurrent(a.increment(0))

    def test_increment(self):
        a = VectorClock.zero(3).increment(1)
        assert a.components == (0, 1, 0)
        with pytest.raises(IndexError):
            a.increment(5)

    def test_join(self):
        a = VectorClock.of(1, 5)
        b = VectorClock.of(3, 2)
        assert a.join(b) == VectorClock.of(3, 5)

    def test_str_and_iter(self):
        a = VectorClock.of(1, 2, 3)
        assert str(a) == "[1,2,3]"
        assert list(a) == [1, 2, 3]
        assert a[1] == 2


class TestPropertyBased:
    @given(vector_pairs)
    def test_lt_is_le_and_not_equal(self, pair):
        a, b = pair
        assert vc_lt(a, b) == (vc_le(a, b) and a != b)

    @given(vector_pairs)
    def test_antisymmetry(self, pair):
        a, b = pair
        assert not (vc_lt(a, b) and vc_lt(b, a))

    @given(vector_pairs)
    def test_trichotomy_with_concurrency(self, pair):
        """Exactly one of: a<b, b<a, a||b (for a != b); a==b is its own case."""
        a, b = pair
        cases = [vc_lt(a, b), vc_lt(b, a), vc_concurrent(a, b) and a != b, a == b]
        assert sum(cases) == 1

    @given(vector_pairs)
    def test_join_is_upper_bound(self, pair):
        a, b = pair
        j = vc_join(a, b)
        assert vc_le(a, j) and vc_le(b, j)

    @given(vector_pairs)
    def test_join_commutative(self, pair):
        a, b = pair
        assert vc_join(a, b) == vc_join(b, a)

    @given(st.lists(st.lists(st.integers(min_value=0, max_value=9),
                             min_size=3, max_size=3),
                    min_size=1, max_size=12))
    def test_batch_matches_scalar(self, vecs):
        p = batch_precedes_matrix(vecs)
        c = batch_concurrent_matrix(vecs)
        k = len(vecs)
        for i in range(k):
            for j in range(k):
                assert p[i, j] == vc_lt(vecs[i], vecs[j])
                if i == j:
                    assert not c[i, j]
                else:
                    expected = not vc_lt(vecs[i], vecs[j]) and not vc_lt(vecs[j], vecs[i])
                    assert c[i, j] == expected


class TestBatchEdgeCases:
    def test_empty_batch(self):
        p = batch_precedes_matrix([])
        assert p.shape == (0, 0)
        c = batch_concurrent_matrix([])
        assert c.shape == (0, 0)

    def test_single_vector(self):
        p = batch_precedes_matrix([[1, 2]])
        assert p.shape == (1, 1) and not p[0, 0]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            batch_precedes_matrix([[[1]]])

    def test_known_matrix(self):
        # Write_co vectors of H1: a=[1,0,0], c=[2,0,0], b=[1,1,0], d=[1,1,1]
        vecs = [[1, 0, 0], [2, 0, 0], [1, 1, 0], [1, 1, 1]]
        p = batch_precedes_matrix(vecs)
        expected = np.array(
            [
                [0, 1, 1, 1],  # a < c, a < b, a < d
                [0, 0, 0, 0],  # c concurrent with b, d
                [0, 0, 0, 1],  # b < d
                [0, 0, 0, 0],
            ],
            dtype=bool,
        )
        assert (p == expected).all()


class TestChunkedBatch:
    """The chunked row-block path of :func:`batch_precedes_matrix` must
    be bit-identical to the one-shot broadcast -- it only bounds
    scratch memory, never changes the result."""

    def _vectors(self, k, n, seed):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 6, size=(k, n)).tolist()

    @pytest.mark.parametrize("chunk", [1, 3, 7, 64, 1000])
    def test_chunked_equals_unchunked(self, chunk):
        vecs = self._vectors(41, 5, seed=chunk)
        full = batch_precedes_matrix(vecs)
        blocked = batch_precedes_matrix(vecs, chunk=chunk)
        assert np.array_equal(full, blocked)

    def test_chunk_larger_than_batch_is_the_one_shot_path(self):
        vecs = self._vectors(8, 3, seed=0)
        assert np.array_equal(
            batch_precedes_matrix(vecs, chunk=100),
            batch_precedes_matrix(vecs),
        )

    def test_invalid_chunk_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="chunk"):
                batch_precedes_matrix([[1, 2]], chunk=bad)

    def test_auto_chunk_threshold_result_identical(self):
        from repro.core.vectorclock import _AUTO_CHUNK_THRESHOLD

        # shrink the threshold locally would need monkeypatching a
        # module constant; instead exercise the explicit chunk at a
        # size where both paths are cheap and compare
        vecs = self._vectors(129, 4, seed=42)
        assert np.array_equal(
            batch_precedes_matrix(vecs, chunk=32),
            batch_precedes_matrix(vecs, chunk=None),
        )
        assert _AUTO_CHUNK_THRESHOLD > 129  # auto path untouched above
